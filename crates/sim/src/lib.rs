//! Event-driven gate-level simulation with delay models and glitch
//! monitors (§3.3's hazard discussion, and the latency/throughput side of
//! §2.1's performance analysis).
//!
//! The simulator runs a [`synth::Netlist`] against the environment defined
//! by an STG specification: enabled input transitions fire after a random
//! environment delay; each gate switches a random delay after becoming
//! excited (inertial model — a gate de-excited before its scheduled switch
//! cancels the event and the monitor records a **glitch**, §3.3's hazard).
//!
//! # Example
//!
//! ```
//! use stg::{examples, StateGraph};
//! use synth::complex_gate::synthesize_complex_gates;
//! use sim::{SimConfig, Simulator};
//!
//! let spec = examples::vme_read_csc();
//! let sg = StateGraph::build(&spec)?;
//! let circuit = synthesize_complex_gates(&spec, &sg)?;
//! let nets: Vec<_> = spec.signals().map(|s| circuit.signal_net(s)).collect();
//! let mut sim = Simulator::new(&spec, &sg, circuit.netlist().clone(), nets, SimConfig::default());
//! let stats = sim.run(10_000.0);
//! assert_eq!(stats.glitches, 0, "speed-independent circuits never glitch");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stg::{SignalKind, StateSpace, Stg};
use synth::{NetId, Netlist};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Gate delay range `[min, max)` sampled uniformly per switching event.
    pub gate_delay: (f64, f64),
    /// Environment delay range for input transitions.
    pub env_delay: (f64, f64),
    /// RNG seed (simulations are reproducible).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            gate_delay: (1.0, 2.0),
            env_delay: (3.0, 8.0),
            seed: 0xD1_CE,
        }
    }
}

/// Aggregate results of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Simulated time at the end of the run.
    pub time: f64,
    /// Total gate output switches.
    pub gate_switches: u64,
    /// Total environment (input) transitions fired.
    pub input_firings: u64,
    /// Glitches: scheduled gate switches cancelled by de-excitation.
    pub glitches: u64,
    /// Completed specification cycles (returns to the initial spec state).
    pub cycles: u64,
    /// Average cycle time (time / cycles), if any cycle completed.
    pub avg_cycle_time: Option<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PendingKind {
    Gate { gate: usize, value: bool },
    Input { transition: petri::TransitionId },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Pending {
    time: f64,
    serial: u64,
    kind: PendingKind,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time (BinaryHeap is a max-heap; reverse), tie-broken
        // by insertion order for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.serial.cmp(&self.serial))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event-driven simulator.
#[derive(Debug)]
pub struct Simulator<'a> {
    stg: &'a Stg,
    sg: &'a dyn StateSpace,
    netlist: Netlist,
    signal_nets: Vec<NetId>,
    config: SimConfig,
    values: Vec<bool>,
    spec_state: usize,
    queue: BinaryHeap<Pending>,
    /// Per-gate pending switch (serial number), for inertial cancellation.
    gate_pending: Vec<Option<u64>>,
    /// Pending input event serials keyed by transition index.
    input_pending: Vec<Option<u64>>,
    serial: u64,
    time: f64,
    rng: StdRng,
    stats: SimStats,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with the circuit initialised to the state
    /// graph's initial code (internal nets settled).
    ///
    /// # Panics
    ///
    /// Panics if `signal_nets` is shorter than the STG's signal count or
    /// internal nets oscillate at time 0.
    #[must_use]
    pub fn new(
        stg: &'a Stg,
        sg: &'a dyn StateSpace,
        netlist: Netlist,
        signal_nets: Vec<NetId>,
        config: SimConfig,
    ) -> Self {
        assert!(signal_nets.len() >= stg.num_signals());
        let mut values = vec![false; netlist.num_nets()];
        for s in stg.signals() {
            values[signal_nets[s.index()].index()] = sg.value(0, s);
        }
        // Settle internal (non-signal) nets.
        let signal_net_set: Vec<NetId> = signal_nets.clone();
        for round in 0..=netlist.num_gates() {
            let mut changed = false;
            for g in 0..netlist.num_gates() {
                let out = netlist.gates()[g].output;
                if !signal_net_set.contains(&out) {
                    let nv = netlist.next_value(&values, g);
                    if values[out.index()] != nv {
                        values[out.index()] = nv;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            assert!(
                round < netlist.num_gates(),
                "internal nets oscillate at time 0"
            );
        }
        let num_gates = netlist.num_gates();
        let num_transitions = stg.net().num_transitions();
        let rng = StdRng::seed_from_u64(config.seed);
        let mut sim = Simulator {
            stg,
            sg,
            netlist,
            signal_nets,
            config,
            values,
            spec_state: 0,
            queue: BinaryHeap::new(),
            gate_pending: vec![None; num_gates],
            input_pending: vec![None; num_transitions],
            serial: 0,
            time: 0.0,
            rng,
            stats: SimStats::default(),
        };
        sim.reschedule();
        sim
    }

    fn sample(&mut self, range: (f64, f64)) -> f64 {
        if range.1 <= range.0 {
            range.0
        } else {
            self.rng.random_range(range.0..range.1)
        }
    }

    /// Aligns the pending-event sets with the current state: schedules
    /// newly excited gates and newly enabled inputs, cancels de-excited
    /// gates (counting glitches) and disabled inputs.
    fn reschedule(&mut self) {
        // Gates.
        for g in 0..self.netlist.num_gates() {
            let excited = self.netlist.gate_excited(&self.values, g);
            match (excited, self.gate_pending[g]) {
                (true, None) => {
                    let delay = self.sample(self.config.gate_delay);
                    self.serial += 1;
                    self.gate_pending[g] = Some(self.serial);
                    let value = self.netlist.next_value(&self.values, g);
                    self.queue.push(Pending {
                        time: self.time + delay,
                        serial: self.serial,
                        kind: PendingKind::Gate { gate: g, value },
                    });
                }
                (false, Some(_)) => {
                    // Inertial cancellation: the pulse was shorter than the
                    // gate delay — a glitch.
                    self.gate_pending[g] = None;
                    self.stats.glitches += 1;
                }
                _ => {}
            }
        }
        // Inputs.
        let enabled: Vec<petri::TransitionId> = self
            .sg
            .ts()
            .enabled_labels(self.spec_state)
            .into_iter()
            .filter(|&t| {
                self.stg
                    .label(t)
                    .is_some_and(|l| self.stg.signal_kind(l.signal) == SignalKind::Input)
            })
            .collect();
        for t in 0..self.input_pending.len() {
            let tid = petri::TransitionId::from_index(t);
            let is_enabled = enabled.contains(&tid);
            match (is_enabled, self.input_pending[t]) {
                (true, None) => {
                    let delay = self.sample(self.config.env_delay);
                    self.serial += 1;
                    self.input_pending[t] = Some(self.serial);
                    self.queue.push(Pending {
                        time: self.time + delay,
                        serial: self.serial,
                        kind: PendingKind::Input { transition: tid },
                    });
                }
                (false, Some(_)) => {
                    self.input_pending[t] = None;
                }
                _ => {}
            }
        }
    }

    /// Runs until simulated time `horizon` (or the event queue drains).
    pub fn run(&mut self, horizon: f64) -> SimStats {
        while let Some(ev) = self.queue.pop() {
            if ev.time > horizon {
                break;
            }
            match ev.kind {
                PendingKind::Gate { gate, value } => {
                    if self.gate_pending[gate] != Some(ev.serial) {
                        continue; // cancelled or superseded
                    }
                    self.gate_pending[gate] = None;
                    self.time = ev.time;
                    let out = self.netlist.gates()[gate].output;
                    self.values[out.index()] = value;
                    self.stats.gate_switches += 1;
                    // Track the spec if this is a specification signal.
                    if let Some(sig) = self.signal_of(out) {
                        self.advance_spec(sig, value);
                    }
                    self.reschedule();
                }
                PendingKind::Input { transition } => {
                    let idx = transition.index();
                    if self.input_pending[idx] != Some(ev.serial) {
                        continue;
                    }
                    self.input_pending[idx] = None;
                    self.time = ev.time;
                    let label = self.stg.label(transition).expect("inputs are labelled");
                    let net = self.signal_nets[label.signal.index()];
                    self.values[net.index()] = label.edge.value_after();
                    self.stats.input_firings += 1;
                    let next = self
                        .sg
                        .successor(self.spec_state, transition)
                        .expect("scheduled inputs are enabled");
                    self.set_spec_state(next);
                    self.reschedule();
                }
            }
        }
        self.stats.time = self.time;
        self.stats.avg_cycle_time = if self.stats.cycles > 0 {
            Some(self.time / self.stats.cycles as f64)
        } else {
            None
        };
        self.stats.clone()
    }

    fn signal_of(&self, net: NetId) -> Option<stg::SignalId> {
        self.stg
            .signals()
            .find(|&s| self.signal_nets[s.index()] == net)
    }

    fn advance_spec(&mut self, sig: stg::SignalId, new_value: bool) {
        let arc = self
            .sg
            .ts()
            .enabled_labels(self.spec_state)
            .into_iter()
            .find(|&t| {
                self.stg
                    .label(t)
                    .is_some_and(|l| l.signal == sig && l.edge.value_after() == new_value)
            });
        if let Some(t) = arc {
            let next = self.sg.successor(self.spec_state, t).expect("enabled");
            self.set_spec_state(next);
        }
        // An output the spec does not allow is a conformance bug; the
        // verifier reports those — the simulator just keeps running with
        // the spec state frozen, which shows up as missing cycles.
    }

    fn set_spec_state(&mut self, next: usize) {
        if next == 0 && self.spec_state != 0 {
            self.stats.cycles += 1;
        }
        self.spec_state = next;
    }

    /// Current simulated time.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current net values.
    #[must_use]
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::examples::{toggle, vme_read_csc};
    use stg::StateGraph;
    use synth::complex_gate::synthesize_complex_gates;
    use synth::decompose::{decompose, resubstitute};

    fn run_circuit(stg: &Stg, horizon: f64) -> SimStats {
        let sg = StateGraph::build(stg).unwrap();
        let circuit = synthesize_complex_gates(stg, &sg).unwrap();
        let nets: Vec<NetId> = stg.signals().map(|s| circuit.signal_net(s)).collect();
        let mut sim = Simulator::new(
            stg,
            &sg,
            circuit.netlist().clone(),
            nets,
            SimConfig::default(),
        );
        sim.run(horizon)
    }

    #[test]
    fn toggle_cycles_without_glitches() {
        let stats = run_circuit(&toggle(), 1_000.0);
        assert_eq!(stats.glitches, 0);
        assert!(stats.cycles > 10, "cycles: {}", stats.cycles);
        assert!(stats.avg_cycle_time.is_some());
    }

    #[test]
    fn vme_complex_gate_runs_clean() {
        let stats = run_circuit(&vme_read_csc(), 5_000.0);
        assert_eq!(stats.glitches, 0, "speed-independent circuit glitched");
        assert!(stats.cycles > 10);
    }

    #[test]
    fn hazardous_decomposition_glitches_under_adverse_delays() {
        // The naive (Fig. 9b-shaped) decomposition has an unacknowledged
        // map transition; with a slow map gate the pulse gets swallowed —
        // the monitor must record glitches.
        let stg = vme_read_csc();
        let sg = StateGraph::build(&stg).unwrap();
        let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
        let dec = decompose(&stg, &circuit, 2);
        let nets: Vec<NetId> = stg.signals().map(|s| dec.signal_net(s)).collect();
        let config = SimConfig {
            gate_delay: (1.0, 8.0),
            env_delay: (1.0, 2.0),
            seed: 7,
        };
        let mut sim = Simulator::new(&stg, &sg, dec.netlist().clone(), nets, config);
        let stats = sim.run(20_000.0);
        assert!(stats.glitches > 0, "expected glitches: {stats:?}");
    }

    #[test]
    fn resubstituted_decomposition_is_clean_in_simulation() {
        let stg = vme_read_csc();
        let sg = StateGraph::build(&stg).unwrap();
        let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
        let dec = decompose(&stg, &circuit, 2);
        let resub = resubstitute(&stg, &sg, &dec);
        let nets: Vec<NetId> = stg.signals().map(|s| resub.signal_net(s)).collect();
        let config = SimConfig {
            gate_delay: (1.0, 8.0),
            env_delay: (1.0, 2.0),
            seed: 7,
        };
        let mut sim = Simulator::new(&stg, &sg, resub.netlist().clone(), nets, config);
        let stats = sim.run(20_000.0);
        assert_eq!(stats.glitches, 0, "{stats:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let stg = toggle();
        let sg = StateGraph::build(&stg).unwrap();
        let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
        let nets: Vec<NetId> = stg.signals().map(|s| circuit.signal_net(s)).collect();
        let run = || {
            let mut sim = Simulator::new(
                &stg,
                &sg,
                circuit.netlist().clone(),
                nets.clone(),
                SimConfig {
                    seed: 42,
                    ..SimConfig::default()
                },
            );
            sim.run(500.0)
        };
        assert_eq!(run(), run());
    }
}
