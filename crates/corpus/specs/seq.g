# Classic sequencer handshake component: on request r the controller
# pulses x then y in order, then acknowledges.
.model seq
.inputs r
.outputs a x y
.graph
r+ x+
x+ x-
x- y+
y+ y-
y- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
