# Classic parallel (fork/join) handshake component: on request r the
# controller runs the x and y handshakes concurrently, then acknowledges.
.model par
.inputs r
.outputs a x y
.dummy fork join
.graph
r+ fork
fork x+ y+
x+ x-
y+ y-
x- join
y- join
join a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
