# Four-phase buffer stage, started mid-cycle: the marking sits after
# ro+ has fired, so ri and ro are initially high — pinned by the
# .initial directive (and cross-checked against the marking by the
# state-graph builder).
.model buf4
.inputs ri ao
.outputs ro ai
.initial ri=1 ao=0 ro=1 ai=0
.graph
ri+ ro+
ro+ ao+
ao+ ai+
ai+ ri-
ri- ro-
ro- ao-
ao- ai-
ai- ri+
.marking { <ro+,ao+> }
.end
