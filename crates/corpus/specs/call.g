# Classic call element: two clients share one server handshake s; the
# environment picks the caller (input choice on the free place). The s
# transitions carry explicit /1 and /2 instance suffixes.
.model call
.inputs r1 r2
.outputs a1 a2 s
.graph
free r1+ r2+
r1+ s+/1
s+/1 s-/1
s-/1 a1+
a1+ r1-
r1- a1-
a1- free
r2+ s+/2
s+/2 s-/2
s-/2 a2+
a2+ r2-
r2- a2-
a2- free
.marking { free }
.end
