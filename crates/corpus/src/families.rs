//! The corpus itself: named families, each expanding a deterministic
//! parameter grid into concrete, uniquely-named specifications.
//!
//! A [`Family`] is a pure function of its (fixed) grid: calling
//! [`Family::specs`] twice yields byte-identical canonical texts, which
//! is what lets the validation ledger pin one record per spec. Model
//! names double as ledger file names, so every generator bakes its
//! parameters into the name.

use stg::Stg;

use crate::generators;
use crate::gimport;

/// A named, parameterised family of specifications.
#[derive(Clone, Copy)]
pub struct Family {
    /// Stable family name (ledger directory name).
    pub name: &'static str,
    /// One-line description for listings and the README.
    pub description: &'static str,
    build: fn() -> Vec<Stg>,
}

impl Family {
    /// Expands the parameter grid into concrete specifications, in a
    /// fixed order with unique model names.
    #[must_use]
    pub fn specs(&self) -> Vec<Stg> {
        (self.build)()
    }
}

impl std::fmt::Debug for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Family")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Every family, in ledger order.
#[must_use]
pub fn families() -> Vec<Family> {
    vec![
        Family {
            name: "vme",
            description: "the paper's VME bus controllers and the toggle element (stg::examples)",
            build: || {
                vec![
                    stg::examples::vme_read(),
                    stg::examples::vme_read_csc(),
                    stg::examples::vme_read_write(),
                    stg::examples::toggle(),
                ]
            },
        },
        Family {
            name: "micropipeline",
            description: "Sutherland micropipeline control of 1..=3 stages",
            build: || (1..=3).map(stg::examples::micropipeline).collect(),
        },
        Family {
            name: "token-ring",
            description: "C(2h,k)-state token rings over a (half, tokens) grid",
            build: || {
                [(2, 1), (2, 2), (3, 2), (3, 3), (4, 2), (4, 4)]
                    .into_iter()
                    .map(|(half, k)| stg::examples::token_ring(half, k))
                    .collect()
            },
        },
        Family {
            name: "handshake-chain",
            description: "k-signal handshake cycles, all-output and alternating input/output roles",
            build: || {
                let mut specs = Vec::new();
                for k in 2..=5 {
                    specs.push(generators::handshake_chain(k, &[false]));
                    specs.push(generators::handshake_chain(k, &[true, false]));
                }
                specs
            },
        },
        Family {
            name: "arbiter",
            description: "N-way mutex arbiters — deliberately non-persistent (output choice)",
            build: || (2..=4).map(generators::arbiter).collect(),
        },
        Family {
            name: "selector-tree",
            description: "binary input-choice selector trees of depth 1..=3",
            build: || (1..=3).map(generators::selector_tree).collect(),
        },
        Family {
            name: "counter",
            description: "modulo-2^m ripple counters as single marked-graph cycles",
            build: || (2..=4).map(generators::ripple_counter).collect(),
        },
        Family {
            name: "dispatcher",
            description: "free-choice request dispatchers, input- and output-driven branches",
            build: || {
                let mut specs: Vec<Stg> =
                    (1..=4).map(|n| generators::dispatcher(n, true)).collect();
                specs.extend((2..=3).map(|n| generators::dispatcher(n, false)));
                specs
            },
        },
        Family {
            name: "paralleliser",
            description: "fork/join parallelisers, free-running and resource-shared",
            build: || {
                let mut specs: Vec<Stg> = (2..=4)
                    .map(|n| generators::paralleliser(n, false))
                    .collect();
                specs.extend((2..=3).map(|n| generators::paralleliser(n, true)));
                specs
            },
        },
        Family {
            name: "gimport",
            description: "classic handshake components imported from .g text (stg::parse)",
            build: gimport::classics,
        },
    ]
}

/// Flattens the corpus: `(family name, spec)` pairs in ledger order.
#[must_use]
pub fn all_specs() -> Vec<(&'static str, Stg)> {
    families()
        .into_iter()
        .flat_map(|f| f.specs().into_iter().map(move |s| (f.name, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use super::{all_specs, families};

    /// The ISSUE's floor: ≥ 8 families, ≥ 40 concrete specs.
    #[test]
    fn corpus_meets_size_floor() {
        assert!(families().len() >= 8, "need ≥ 8 families");
        assert!(all_specs().len() >= 40, "need ≥ 40 specs");
    }

    /// Model names are unique corpus-wide (they double as ledger file
    /// names) and every spec's canonical digest is stable across two
    /// independent expansions.
    #[test]
    fn specs_are_unique_and_deterministic() {
        let first = all_specs();
        let second = all_specs();
        assert_eq!(first.len(), second.len());
        let mut names = HashSet::new();
        for ((fam_a, a), (_, b)) in first.iter().zip(&second) {
            assert!(
                names.insert(a.name().to_owned()),
                "duplicate model name {} in family {fam_a}",
                a.name()
            );
            assert_eq!(
                stg::canon::stg_digest(a).to_hex(),
                stg::canon::stg_digest(b).to_hex(),
                "{} not deterministic",
                a.name()
            );
        }
    }

    /// Every spec builds a state space on the explicit backend or fails
    /// for a *documented* reason (the non-persistent families still
    /// explore fine — persistency is a report verdict, not a build
    /// error).
    #[test]
    fn every_spec_explores() {
        for (family, spec) in all_specs() {
            let space = stg::Backend::Explicit
                .build(&spec)
                .unwrap_or_else(|e| panic!("{family}/{} failed to explore: {e}", spec.name()));
            assert!(space.num_states() > 0);
        }
    }
}
