//! The scenario corpus: a generator-backed benchmark subsystem with a
//! pinned, self-verifying validation ledger.
//!
//! Three layers:
//!
//! * [`generators`] — parameterised, signal-labelled STG families
//!   beyond the `stg::examples` zoo (arbiters, selector trees, ripple
//!   counters, dispatchers, parallelisers);
//! * [`families`] — the corpus itself: each [`families::Family`]
//!   expands a deterministic parameter grid into uniquely-named specs,
//!   including classic `.g` imports through [`gimport`];
//! * [`ledger`] — one content-addressed
//!   [`ledger::LedgerRecord`] per spec, pinned under `corpus/ledger/`
//!   and self-verifying on read, with wall-clock-tolerant,
//!   verdict-exact drift detection.
//!
//! The `corpus` bench binary (`crates/bench/benches/corpus.rs`) replays
//! the whole corpus through the pipeline, diffs live records against
//! the pinned ledger and emits `BENCH_corpus.json` — the perf
//! trajectory every later speed claim is measured against.

pub mod families;
pub mod generators;
pub mod gimport;
pub mod ledger;

pub use families::{all_specs, families, Family};
pub use ledger::LedgerRecord;

use std::path::PathBuf;

/// The pinned ledger's location relative to a repo checkout, resolved
/// from this crate's manifest directory (stable under `cargo test`,
/// `cargo bench` and CI alike).
#[must_use]
pub fn ledger_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("corpus/ledger")
}
