//! The validation ledger: one content-addressed, self-verifying record
//! per corpus spec, pinned under `corpus/ledger/<family>/<model>.json`.
//!
//! A record captures everything the flow's determinism guarantees —
//! canonical-STG digest, implementability verdicts, the CSC
//! transformation, equation/netlist digests, the verification verdict,
//! composed-state count and the deterministic operation counters of
//! [`asyncsynth::flow_metrics`] (captured for failed flows too, from
//! the error's event log) — plus an *informational* wall time that is
//! excluded from drift comparison. The on-disk wrapper mirrors
//! [`asyncsynth::ResultCache`] entries: a version tag, a key echo and a
//! payload checksum, so a corrupt or hand-edited record is detected on
//! read instead of silently re-pinning the trajectory.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use asyncsynth::summary::{counters_from_json, counters_to_json, report_to_json};
use asyncsynth::telemetry::Counters;
use asyncsynth::{
    flow_metrics, Json, PipelineError, Synthesis, SynthesisOptions, SynthesisSummary,
};
use stg::canon::{digest_bytes, stg_digest};
use stg::Stg;

/// Bump when the record's meaning changes; old ledgers then fail
/// verification loudly instead of drifting quietly.
/// (v2: records pin the deterministic operation counters — the flow's
/// [`asyncsynth::flow_metrics`] set — so counter regressions gate CI
/// like digests do; failed flows keep their exploration counters.)
pub const LEDGER_VERSION: &str = "corpus-ledger-v2";

/// The pinned CSC transformation, reduced to its deterministic core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscPin {
    /// `signal insertion`, `concurrency reduction` or `mixed`.
    pub kind: String,
    /// State count of the transformed specification.
    pub num_states: usize,
}

/// One spec's pinned validation record.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Family (ledger directory) name.
    pub family: String,
    /// Model name (ledger file name).
    pub model: String,
    /// Canonical-STG digest from [`stg::canon::stg_digest`].
    pub stg_digest: String,
    /// Signal count of the original specification.
    pub num_signals: usize,
    /// The §2.1 implementability report, as rendered by
    /// [`asyncsynth::summary::report_to_json`].
    pub check: Json,
    /// Flow outcome: `synthesized`, `not_implementable`,
    /// `csc_unresolved`, `candidates_exhausted`, `verification_failed`
    /// or `synthesis_error`.
    pub outcome: String,
    /// The applied CSC transformation, when the flow synthesised.
    pub csc: Option<CscPin>,
    /// SHA-256 of the pretty-printed equations, when synthesised.
    pub equations_digest: Option<String>,
    /// SHA-256 of the netlist's `describe()` text, when synthesised.
    pub netlist_digest: Option<String>,
    /// Gate count, when synthesised.
    pub num_gates: Option<usize>,
    /// Verification verdict (`passed`, `skipped`, `not_run`), when the
    /// flow reached it.
    pub verification: Option<String>,
    /// Composed states the verifier explored, when it ran.
    pub states_explored: Option<usize>,
    /// Deterministic operation counters ([`asyncsynth::flow_metrics`]),
    /// captured for every outcome — failed flows keep the counters of
    /// the work done up to the failure. Drift-gated like the digests;
    /// advisory counters (BDD nodes, memo hits) never appear here.
    pub metrics: Counters,
    /// Wall-clock milliseconds of the evaluating run — informational
    /// only, excluded from [`LedgerRecord::diff`].
    pub wall_ms: u64,
}

impl LedgerRecord {
    /// Runs the staged flow on `spec` and captures the record.
    ///
    /// The §2.1 report is captured whether or not the spec is
    /// implementable (a pinned `not_implementable` verdict is as much a
    /// regression anchor as a pinned equation digest).
    #[must_use]
    pub fn evaluate(family: &str, spec: &Stg, options: &SynthesisOptions) -> LedgerRecord {
        let start = Instant::now();
        let mut record = LedgerRecord {
            family: family.to_owned(),
            model: spec.name().to_owned(),
            stg_digest: stg_digest(spec).to_hex(),
            num_signals: spec.num_signals(),
            check: Json::Null,
            outcome: String::new(),
            csc: None,
            equations_digest: None,
            netlist_digest: None,
            num_gates: None,
            verification: None,
            states_explored: None,
            metrics: Counters::new(),
            wall_ms: 0,
        };
        match Synthesis::with_options(spec.clone(), options.clone()).check() {
            Err(PipelineError::NotImplementable(report)) => {
                record.check = report_to_json(&report);
                record.outcome = "not_implementable".to_owned();
                // The check stage's error drops its event log, but the
                // report still carries the exploration the flow did —
                // keep it so failed families never pin all-zero work.
                record.metrics.set("states", report.num_states as u64);
                record
                    .metrics
                    .set("csc_conflicts", report.csc_conflict_pairs as u64);
            }
            Err(e) => {
                record.outcome = outcome_name(&e).to_owned();
                record.metrics = flow_metrics(e.events());
            }
            Ok(checked) => {
                record.check = report_to_json(checked.report());
                match checked
                    .resolve_csc()
                    .and_then(asyncsynth::CscResolved::synthesize)
                    .and_then(asyncsynth::Synthesized::verify)
                {
                    Ok(verified) => {
                        let summary = SynthesisSummary::from_verified(&verified, options);
                        record.outcome = "synthesized".to_owned();
                        record.csc = summary.transformation.as_ref().map(|t| CscPin {
                            kind: t.kind.clone(),
                            num_states: t.num_states,
                        });
                        record.equations_digest =
                            Some(digest_bytes(summary.equations.as_bytes()).to_hex());
                        record.netlist_digest =
                            Some(digest_bytes(summary.netlist.as_bytes()).to_hex());
                        record.num_gates = Some(summary.num_gates);
                        record.verification = Some(summary.verification.clone());
                        record.states_explored = summary.composed_states;
                        record.metrics = summary.metrics.clone();
                    }
                    Err(e) => {
                        record.outcome = outcome_name(&e).to_owned();
                        record.metrics = flow_metrics(e.events());
                    }
                }
            }
        }
        record.wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
        record
    }

    /// Encodes the record payload as JSON (deterministic field order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let opt_str = |s: &Option<String>| s.as_ref().map_or(Json::Null, Json::str);
        let opt_num = |n: Option<usize>| n.map_or(Json::Null, Json::num);
        Json::obj(vec![
            ("family", Json::str(&self.family)),
            ("model", Json::str(&self.model)),
            ("stg_digest", Json::str(&self.stg_digest)),
            ("signals", Json::num(self.num_signals)),
            ("check", self.check.clone()),
            ("outcome", Json::str(&self.outcome)),
            (
                "csc",
                self.csc.as_ref().map_or(Json::Null, |c| {
                    Json::obj(vec![
                        ("kind", Json::str(&c.kind)),
                        ("states", Json::num(c.num_states)),
                    ])
                }),
            ),
            ("equations_digest", opt_str(&self.equations_digest)),
            ("netlist_digest", opt_str(&self.netlist_digest)),
            ("gates", opt_num(self.num_gates)),
            ("verification", opt_str(&self.verification)),
            ("states_explored", opt_num(self.states_explored)),
            ("metrics", counters_to_json(&self.metrics)),
            #[allow(clippy::cast_precision_loss)]
            ("wall_ms", Json::Num(self.wall_ms as f64)),
        ])
    }

    /// Decodes a record from [`Self::to_json`] output.
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<LedgerRecord, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(ToOwned::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let opt_str = |key: &str| v.get(key).and_then(Json::as_str).map(ToOwned::to_owned);
        let opt_num = |key: &str| v.get(key).and_then(Json::as_usize);
        let csc = match v.get("csc") {
            None | Some(Json::Null) => None,
            Some(c) => Some(CscPin {
                kind: c
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("missing csc.kind")?
                    .to_owned(),
                num_states: c
                    .get("states")
                    .and_then(Json::as_usize)
                    .ok_or("missing csc.states")?,
            }),
        };
        Ok(LedgerRecord {
            family: str_field("family")?,
            model: str_field("model")?,
            stg_digest: str_field("stg_digest")?,
            num_signals: opt_num("signals").ok_or("missing numeric field \"signals\"")?,
            check: v.get("check").cloned().unwrap_or(Json::Null),
            outcome: str_field("outcome")?,
            csc,
            equations_digest: opt_str("equations_digest"),
            netlist_digest: opt_str("netlist_digest"),
            num_gates: opt_num("gates"),
            verification: opt_str("verification"),
            states_explored: opt_num("states_explored"),
            metrics: counters_from_json(v.get("metrics").ok_or("missing metrics object")?)?,
            wall_ms: v.get("wall_ms").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// Field-level drift against another record, ignoring `wall_ms`
    /// (wall-clock-tolerant, everything else exact). Empty = no drift.
    #[must_use]
    pub fn diff(&self, other: &LedgerRecord) -> Vec<String> {
        let mut drift = Vec::new();
        let mut field = |name: &str, a: String, b: String| {
            if a != b {
                drift.push(format!("{name}: {a} != {b}"));
            }
        };
        field("family", self.family.clone(), other.family.clone());
        field("model", self.model.clone(), other.model.clone());
        field(
            "stg_digest",
            self.stg_digest.clone(),
            other.stg_digest.clone(),
        );
        field(
            "signals",
            self.num_signals.to_string(),
            other.num_signals.to_string(),
        );
        field("check", self.check.render(), other.check.render());
        field("outcome", self.outcome.clone(), other.outcome.clone());
        field("csc", format!("{:?}", self.csc), format!("{:?}", other.csc));
        field(
            "equations_digest",
            format!("{:?}", self.equations_digest),
            format!("{:?}", other.equations_digest),
        );
        field(
            "netlist_digest",
            format!("{:?}", self.netlist_digest),
            format!("{:?}", other.netlist_digest),
        );
        field(
            "gates",
            format!("{:?}", self.num_gates),
            format!("{:?}", other.num_gates),
        );
        field(
            "verification",
            format!("{:?}", self.verification),
            format!("{:?}", other.verification),
        );
        field(
            "states_explored",
            format!("{:?}", self.states_explored),
            format!("{:?}", other.states_explored),
        );
        field("metrics", self.metrics.render(), other.metrics.render());
        drift
    }
}

/// The canonical outcome name of a pipeline error.
#[must_use]
pub fn outcome_name(e: &PipelineError) -> &'static str {
    match e {
        PipelineError::NotImplementable(_) => "not_implementable",
        PipelineError::CscUnresolved { .. } => "csc_unresolved",
        PipelineError::CandidatesExhausted { .. } => "candidates_exhausted",
        PipelineError::VerificationFailed(_) => "verification_failed",
        PipelineError::Synthesis(_) => "synthesis_error",
        PipelineError::Cancelled => "cancelled",
    }
}

// ---------------------------------------------------------------------
// On-disk format (self-verifying, ResultCache-style)
// ---------------------------------------------------------------------

/// The ledger file of one record: `<root>/<family>/<model>.json`.
#[must_use]
pub fn record_path(root: &Path, family: &str, model: &str) -> PathBuf {
    root.join(family).join(format!("{model}.json"))
}

/// Writes a record atomically (tmp + rename), wrapped in the
/// self-verifying envelope.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn store(root: &Path, record: &LedgerRecord) -> io::Result<()> {
    let payload = record.to_json();
    let rendered = payload.render();
    let entry = Json::obj(vec![
        ("version", Json::str(LEDGER_VERSION)),
        ("key", Json::str(&record.stg_digest)),
        (
            "checksum",
            Json::str(digest_bytes(rendered.as_bytes()).to_hex()),
        ),
        ("payload", payload),
    ]);
    let path = record_path(root, &record.family, &record.model);
    let dir = path.parent().expect("record path has a parent");
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".{}.tmp-{}", record.model, std::process::id()));
    fs::write(&tmp, entry.render() + "\n")?;
    fs::rename(&tmp, &path)
}

/// Reads and verifies one record file.
///
/// # Errors
///
/// Unreadable file, malformed JSON, version mismatch, checksum or key
/// mismatch — each with the offending path in the message.
pub fn load(path: &Path) -> Result<LedgerRecord, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("{}: unreadable: {e}", path.display()))?;
    let entry =
        Json::parse(text.trim()).map_err(|e| format!("{}: malformed: {e}", path.display()))?;
    let version = entry.get("version").and_then(Json::as_str).unwrap_or("");
    if version != LEDGER_VERSION {
        return Err(format!(
            "{}: version {version:?}, expected {LEDGER_VERSION:?}",
            path.display()
        ));
    }
    let payload = entry
        .get("payload")
        .ok_or_else(|| format!("{}: missing payload", path.display()))?;
    let rendered = payload.render();
    let checksum = digest_bytes(rendered.as_bytes()).to_hex();
    if entry.get("checksum").and_then(Json::as_str) != Some(&checksum) {
        return Err(format!("{}: checksum mismatch", path.display()));
    }
    let record = LedgerRecord::from_json(payload)
        .map_err(|e| format!("{}: bad payload: {e}", path.display()))?;
    if entry.get("key").and_then(Json::as_str) != Some(&record.stg_digest) {
        return Err(format!("{}: key echo mismatch", path.display()));
    }
    Ok(record)
}

/// Loads the whole ledger under `root`, sorted by (family, model).
///
/// # Errors
///
/// The first unreadable directory or failing record.
pub fn load_all(root: &Path) -> Result<Vec<LedgerRecord>, String> {
    let mut records = Vec::new();
    let mut dirs: Vec<PathBuf> = fs::read_dir(root)
        .map_err(|e| format!("{}: unreadable ledger root: {e}", root.display()))?
        .filter_map(Result::ok)
        .map(|d| d.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let mut files: Vec<PathBuf> = fs::read_dir(&dir)
            .map_err(|e| format!("{}: unreadable: {e}", dir.display()))?
            .filter_map(Result::ok)
            .map(|d| d.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        files.sort();
        for file in files {
            records.push(load(&file)?);
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    use asyncsynth::SynthesisOptions;

    use super::{load, load_all, record_path, store, LedgerRecord};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("corpus-ledger-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp ledger root");
        dir
    }

    #[test]
    fn record_round_trips_and_self_verifies() {
        let spec = stg::examples::vme_read_csc();
        let record = LedgerRecord::evaluate("vme", &spec, &SynthesisOptions::default());
        assert_eq!(record.outcome, "synthesized");
        assert_eq!(record.verification.as_deref(), Some("passed"));
        assert!(record.equations_digest.is_some());

        let root = tmp_root("roundtrip");
        store(&root, &record).expect("store");
        let back = load(&record_path(&root, "vme", &record.model)).expect("load");
        assert!(record.diff(&back).is_empty(), "no drift after round trip");
        assert_eq!(back.wall_ms, record.wall_ms, "wall time preserved on disk");
        let all = load_all(&root).expect("load_all");
        assert_eq!(all.len(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tampered_records_are_rejected() {
        let spec = stg::examples::toggle();
        let record = LedgerRecord::evaluate("vme", &spec, &SynthesisOptions::default());
        let root = tmp_root("tamper");
        let path = record_path(&root, "vme", &record.model);
        store(&root, &record).expect("store");

        // Flip a digit inside the payload: the checksum must catch it.
        let text = std::fs::read_to_string(&path).expect("read back");
        let tampered = text.replacen("\"signals\":", "\"signals_x\":", 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).expect("tamper");
        let err = load(&path).expect_err("tampered record must fail");
        assert!(err.contains("checksum"), "got: {err}");

        // A wrong version tag fails before the checksum.
        std::fs::write(
            &path,
            text.replacen("corpus-ledger-v2", "corpus-ledger-v0", 1),
        )
        .expect("rewrite");
        let err = load(&path).expect_err("old version must fail");
        assert!(err.contains("version"), "got: {err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn diff_ignores_wall_time_but_not_verdicts() {
        let spec = stg::examples::toggle();
        let a = LedgerRecord::evaluate("vme", &spec, &SynthesisOptions::default());
        let mut b = a.clone();
        b.wall_ms = a.wall_ms + 12_345;
        assert!(a.diff(&b).is_empty(), "wall time is informational");
        b.outcome = "csc_unresolved".to_owned();
        let drift = a.diff(&b);
        assert_eq!(drift.len(), 1);
        assert!(drift[0].starts_with("outcome:"), "got: {drift:?}");
    }

    #[test]
    fn counter_drift_is_gated() {
        let spec = stg::examples::toggle();
        let a = LedgerRecord::evaluate("vme", &spec, &SynthesisOptions::default());
        assert!(
            a.metrics.get("states").unwrap_or(0) > 0,
            "synthesized records pin counters"
        );
        let mut b = a.clone();
        b.metrics.add("states_explored", 1);
        let drift = a.diff(&b);
        assert_eq!(drift.len(), 1, "got: {drift:?}");
        assert!(drift[0].starts_with("metrics:"), "got: {drift:?}");
    }

    #[test]
    fn failed_flows_keep_their_operation_counters() {
        let options = SynthesisOptions {
            csc: asyncsynth::CscStrategy::Fail,
            ..Default::default()
        };
        let record = LedgerRecord::evaluate("vme", &stg::examples::vme_read(), &options);
        assert_eq!(record.outcome, "csc_unresolved");
        assert!(
            record.metrics.get("states").unwrap_or(0) > 0,
            "exploration counters survive the failure: {:?}",
            record.metrics
        );
        // And they survive the on-disk round trip.
        let root = tmp_root("failed-metrics");
        store(&root, &record).expect("store");
        let back = load(&record_path(&root, "vme", &record.model)).expect("load");
        assert!(record.diff(&back).is_empty());
        assert_eq!(back.metrics, record.metrics);
        let _ = std::fs::remove_dir_all(&root);
    }
}
