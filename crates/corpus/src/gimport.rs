//! Classic async-benchmark specifications imported from `.g` text, so
//! external specs join the corpus through exactly the reader every
//! user-supplied file goes through (`stg::parse::parse_g`).
//!
//! The texts live under `crates/corpus/specs/` and are embedded at
//! compile time; [`classics`] parses them on every call, which keeps
//! the parser itself inside the corpus test surface.

use stg::parse::parse_g;
use stg::Stg;

/// The embedded `.g` sources, in ledger order.
pub const SOURCES: [(&str, &str); 4] = [
    ("seq", include_str!("../specs/seq.g")),
    ("par", include_str!("../specs/par.g")),
    ("call", include_str!("../specs/call.g")),
    ("buf4", include_str!("../specs/buf4.g")),
];

/// Parses every embedded classic.
///
/// # Panics
///
/// Panics if an embedded file fails to parse — a compile-time artifact
/// being malformed is a bug, not an input error.
#[must_use]
pub fn classics() -> Vec<Stg> {
    SOURCES
        .iter()
        .map(|(name, text)| {
            parse_g(text).unwrap_or_else(|e| panic!("embedded spec {name}.g is malformed: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::classics;

    #[test]
    fn classics_parse_and_carry_their_names() {
        let specs = classics();
        let names: Vec<&str> = specs.iter().map(stg::Stg::name).collect();
        assert_eq!(names, ["seq", "par", "call", "buf4"]);
        // buf4 exercises the .initial directive end to end.
        let buf4 = &specs[3];
        let values = buf4.initial_values().expect("buf4 pins initial values");
        let ri = buf4.signal_by_name("ri").expect("ri exists");
        assert!(values[ri.index()], "ri starts high");
    }
}
