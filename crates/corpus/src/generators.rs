//! Parameterised, signal-labelled STG generators beyond the
//! `stg::examples` zoo: arbiters, selector trees, modulo counters,
//! choice/merge dispatchers and fork/join parallelisers.
//!
//! Every generator is deterministic in its parameters and names its
//! model after them, so the same call always yields the same canonical
//! digest — the property the validation ledger keys on. Families that
//! are *deliberately* outside the implementable class (the N-way
//! arbiter's output choice, the resource-shared paralleliser) are kept:
//! their pinned ledger records document the `persistent: false` verdict
//! the §2.1 check must keep producing.

use stg::{SignalEdge, SignalKind, Stg, StgBuilder};

/// A handshake chain: `k` signals closed into one consistent cycle;
/// `roles[i % roles.len()]` selects input (`true`) or output (`false`)
/// for signal `i`. The shape of `tests/properties.rs`, promoted here so
/// the differential harness and the corpus draw from one source.
///
/// # Panics
///
/// Panics if `k < 2` or `roles` is empty.
#[must_use]
pub fn handshake_chain(k: usize, roles: &[bool]) -> Stg {
    assert!(k >= 2 && !roles.is_empty());
    let tag: String = (0..k)
        .map(|i| if roles[i % roles.len()] { 'i' } else { 'o' })
        .collect();
    let mut b = StgBuilder::new(format!("chain-{k}-{tag}"));
    let sigs: Vec<_> = (0..k)
        .map(|i| {
            let kind = if roles[i % roles.len()] {
                SignalKind::Input
            } else {
                SignalKind::Output
            };
            b.add_signal(format!("s{i}"), kind)
        })
        .collect();
    let rises: Vec<_> = sigs
        .iter()
        .map(|&s| b.add_edge(s, SignalEdge::Rise))
        .collect();
    let falls: Vec<_> = sigs
        .iter()
        .map(|&s| b.add_edge(s, SignalEdge::Fall))
        .collect();
    for i in 0..k - 1 {
        b.connect(rises[i], rises[i + 1]);
        b.connect(falls[i], falls[i + 1]);
    }
    b.connect(rises[k - 1], falls[0]);
    let p = b.connect(falls[k - 1], rises[0]);
    b.mark_place(p, 1);
    b.build()
}

/// A free-choice dispatcher: `branches` alternative request/ack
/// handshakes around one choice place, merging back through a dummy
/// reset (the Fig. 5 choice/merge shape, scaled). With
/// `input_requests`, the environment picks the branch — an input
/// choice, which is implementable; without, the choice sits on output
/// transitions and the §2.1 persistency check must reject it.
///
/// # Panics
///
/// Panics if `branches == 0`.
#[must_use]
pub fn dispatcher(branches: usize, input_requests: bool) -> Stg {
    assert!(branches > 0);
    let tag = if input_requests { "in" } else { "out" };
    let mut b = StgBuilder::new(format!("dispatch-{branches}-{tag}"));
    let choice = b.add_place("choice", 1);
    let merge = b.add_place("merge", 0);
    for i in 0..branches {
        let req_kind = if input_requests {
            SignalKind::Input
        } else {
            SignalKind::Output
        };
        let r = b.add_signal(format!("r{i}"), req_kind);
        let a = b.add_signal(format!("a{i}"), SignalKind::Output);
        let rp = b.add_edge(r, SignalEdge::Rise);
        let ap = b.add_edge(a, SignalEdge::Rise);
        let rm = b.add_edge(r, SignalEdge::Fall);
        let am = b.add_edge(a, SignalEdge::Fall);
        b.arc_pt(choice, rp);
        b.connect(rp, ap);
        b.connect(ap, rm);
        b.connect(rm, am);
        b.arc_tp(am, merge);
    }
    let reset = b.add_dummy("reset");
    b.arc_pt(merge, reset);
    b.arc_tp(reset, choice);
    b.build()
}

/// An `n`-way arbiter: input requests `r0..`, output grants `g0..`, one
/// mutex place. Grants compete for the mutex token, so two pending
/// requests enable two output transitions in structural conflict — the
/// classic non-persistent specification that needs a mutex element
/// rather than speed-independent logic. Its ledger record pins exactly
/// that verdict.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn arbiter(n: usize) -> Stg {
    assert!(n >= 2);
    let mut b = StgBuilder::new(format!("arbiter-{n}"));
    let mutex = b.add_place("mutex", 1);
    for i in 0..n {
        let r = b.add_signal(format!("r{i}"), SignalKind::Input);
        let g = b.add_signal(format!("g{i}"), SignalKind::Output);
        let rp = b.add_edge(r, SignalEdge::Rise);
        let gp = b.add_edge(g, SignalEdge::Rise);
        let rm = b.add_edge(r, SignalEdge::Fall);
        let gm = b.add_edge(g, SignalEdge::Fall);
        let idle = b.add_place(format!("idle{i}"), 1);
        b.arc_pt(idle, rp);
        b.connect(rp, gp);
        b.arc_pt(mutex, gp);
        b.connect(gp, rm);
        b.connect(rm, gm);
        b.arc_tp(gm, idle);
        b.arc_tp(gm, mutex);
    }
    b.build()
}

/// A binary selector tree of `depth` levels: at each internal node the
/// environment raises one of two select inputs to descend; the reached
/// leaf performs an output-ack handshake; the selects fall back in
/// reverse order on the way up. Exactly the signals along the chosen
/// root-to-leaf path cycle per round, so the STG is consistent for any
/// depth, and every choice is an input choice.
///
/// # Panics
///
/// Panics if `depth == 0` or `depth > 4`.
#[must_use]
pub fn selector_tree(depth: usize) -> Stg {
    assert!((1..=4).contains(&depth));
    let mut b = StgBuilder::new(format!("selector-{depth}"));
    let root = b.add_place("root", 1);
    // Recursive descent, iteratively: each frame is (place to choose
    // from, place to return to, node path label).
    let mut stack = vec![(root, root, String::from("n"))];
    while let Some((enter, back, path)) = stack.pop() {
        if path.len() - 1 == depth {
            // Leaf: output-ack handshake, then return.
            let a = b.add_signal(format!("a{}", &path[1..]), SignalKind::Output);
            let ap = b.add_edge(a, SignalEdge::Rise);
            let am = b.add_edge(a, SignalEdge::Fall);
            b.arc_pt(enter, ap);
            b.connect(ap, am);
            b.arc_tp(am, back);
            continue;
        }
        for side in 0..2 {
            let s = b.add_signal(format!("s{}{side}", &path[1..]), SignalKind::Input);
            let sp = b.add_edge(s, SignalEdge::Rise);
            let sm = b.add_edge(s, SignalEdge::Fall);
            let down = b.add_place(format!("d{}{side}", &path[1..]), 0);
            let up = b.add_place(format!("u{}{side}", &path[1..]), 0);
            b.arc_pt(enter, sp);
            b.arc_tp(sp, down);
            b.arc_pt(up, sm);
            b.arc_tp(sm, back);
            stack.push((down, up, format!("{path}{side}")));
        }
    }
    b.build()
}

/// A modulo-`2^bits` ripple counter as one long marked-graph cycle: an
/// input clock `c` pulses `2^bits` times per period; after each rising
/// edge the output bits that a binary up-counter would toggle do so, in
/// ripple order (bit 0 first). Every signal alternates rise/fall by
/// construction, the net is a single cycle (persistent,
/// deadlock-free), and the state count equals the cycle length.
///
/// # Panics
///
/// Panics if `bits == 0` or `bits > 5`.
#[must_use]
pub fn ripple_counter(bits: usize) -> Stg {
    assert!((1..=5).contains(&bits));
    let mut b = StgBuilder::new(format!("counter-{bits}"));
    let c = b.add_signal("c", SignalKind::Input);
    let outs: Vec<_> = (0..bits)
        .map(|i| b.add_signal(format!("b{i}"), SignalKind::Output))
        .collect();
    let mut value = vec![false; bits];
    let mut sequence = Vec::new();
    for _ in 0..1usize << bits {
        sequence.push(b.add_edge(c, SignalEdge::Rise));
        // Binary increment: flip bit 0; a 1→0 flip carries into the
        // next bit.
        for i in 0..bits {
            let edge = if value[i] {
                SignalEdge::Fall
            } else {
                SignalEdge::Rise
            };
            sequence.push(b.add_edge(outs[i], edge));
            value[i] = !value[i];
            if value[i] {
                break;
            }
        }
        sequence.push(b.add_edge(c, SignalEdge::Fall));
    }
    for w in sequence.windows(2) {
        b.connect(w[0], w[1]);
    }
    let p = b.connect(sequence[sequence.len() - 1], sequence[0]);
    b.mark_place(p, 1);
    b.build()
}

/// A fork/join paralleliser: an input request forks `n` concurrent
/// worker handshakes (`2^n` interleavings) which join into an output
/// done pulse. With `shared`, every worker additionally needs a single
/// resource token for its critical section — an output choice on the
/// resource place, making the specification non-persistent (pinned as
/// such in the ledger).
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn paralleliser(n: usize, shared: bool) -> Stg {
    assert!(n >= 2);
    let tag = if shared { "shared" } else { "free" };
    let mut b = StgBuilder::new(format!("par-{n}-{tag}"));
    let r = b.add_signal("r", SignalKind::Input);
    let d = b.add_signal("d", SignalKind::Output);
    let rp = b.add_edge(r, SignalEdge::Rise);
    let rm = b.add_edge(r, SignalEdge::Fall);
    let dp = b.add_edge(d, SignalEdge::Rise);
    let dm = b.add_edge(d, SignalEdge::Fall);
    let fork = b.add_dummy("fork");
    let join = b.add_dummy("join");
    b.connect(rp, fork);
    b.connect(join, dp);
    b.connect(dp, rm);
    b.connect(rm, dm);
    let idle = b.connect(dm, rp);
    b.mark_place(idle, 1);
    let resource = shared.then(|| b.add_place("res", 1));
    for i in 0..n {
        let w = b.add_signal(format!("w{i}"), SignalKind::Output);
        let wp = b.add_edge(w, SignalEdge::Rise);
        let wm = b.add_edge(w, SignalEdge::Fall);
        b.connect(fork, wp);
        b.connect(wp, wm);
        b.connect(wm, join);
        if let Some(res) = resource {
            b.arc_pt(res, wp);
            b.arc_tp(wm, res);
        }
    }
    b.build()
}
