//! Dependency-free structured telemetry for the asyncsynth workspace.
//!
//! Three pieces, all with byte-stable JSON export:
//!
//! * [`Counters`] — a sorted name → value map of monotonic `u64`
//!   counters. The pipeline keeps **two disjoint classes**: the
//!   *deterministic* set (thread-count- and backend-invariant where the
//!   parity suites prove it — states, sweep grid sizes, primes, …) and
//!   the *advisory* set (BDD node counts, decoded states, memo hits —
//!   real work done by *this* process, allowed to vary by backend or
//!   strategy). Drift gates compare the former and must never see the
//!   latter.
//! * [`Span`] — a named tree node carrying wall time plus one
//!   [`Counters`] of each class. [`Span::render`] emits everything;
//!   [`Span::render_deterministic`] strips wall times and advisory
//!   counters recursively, yielding the byte-comparable projection the
//!   parity tests pin across sweep thread counts.
//! * [`Registry`] — a thread-safe process-wide registry of monotonic
//!   counters and last-write-wins gauges, used by the synthesis server
//!   for its `metrics` op.
//!
//! The crate deliberately has no dependencies (not even on the root
//! crate's `Json`) so every layer of the workspace can use it; it
//! renders its own JSON, matching the root renderer byte-for-byte on
//! the subset it emits (sorted keys, no whitespace, `\u00XX` escapes).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Escape a string into a JSON string literal (without quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A sorted map of named monotonic `u64` counters.
///
/// Iteration and rendering are always in key order, so two `Counters`
/// built from the same observations render byte-identically regardless
/// of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite `name` with `value`.
    pub fn set(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Add `delta` to `name` (creating it at zero first).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.values.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// The current value, or `None` if the counter was never touched.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Fold every counter of `other` into `self` (summing).
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in &other.values {
            *self.values.entry(name.clone()).or_insert(0) += value;
        }
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Key-ordered iteration.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Build from `(name, value)` pairs (later duplicates overwrite).
    #[must_use]
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, u64)>,
        S: Into<String>,
    {
        let mut c = Self::new();
        for (name, value) in pairs {
            c.values.insert(name.into(), value);
        }
        c
    }

    /// Render as a JSON object, keys sorted: `{"a":1,"b":2}`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            let _ = write!(out, "\":{value}");
        }
        out.push('}');
        out
    }
}

/// One node of a trace tree: a named unit of work with wall time,
/// deterministic counters, advisory counters and child spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    pub name: String,
    pub wall_ms: u64,
    pub counters: Counters,
    pub advisory: Counters,
    pub children: Vec<Span>,
}

impl Span {
    #[must_use]
    pub fn new(name: &str) -> Self {
        Span {
            name: name.to_owned(),
            ..Span::default()
        }
    }

    pub fn push_child(&mut self, child: Span) {
        self.children.push(child);
    }

    /// Full render: name, wall time, both counter classes, children.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, true);
        out
    }

    /// Deterministic projection: recursively drops `wall_ms` and the
    /// advisory counters, leaving only fields that must be
    /// byte-identical across sweep thread counts.
    #[must_use]
    pub fn render_deterministic(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, false);
        out
    }

    fn render_into(&self, out: &mut String, full: bool) {
        out.push_str("{\"name\":\"");
        escape_into(out, &self.name);
        out.push('"');
        if full {
            let _ = write!(out, ",\"wall_ms\":{}", self.wall_ms);
        }
        out.push_str(",\"counters\":");
        out.push_str(&self.counters.render());
        if full {
            out.push_str(",\"advisory\":");
            out.push_str(&self.advisory.render());
        }
        out.push_str(",\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.render_into(out, full);
        }
        out.push_str("]}");
    }
}

/// A thread-safe process-wide metrics registry: monotonic counters
/// plus last-write-wins gauges. Snapshots are key-sorted, so renders
/// are byte-stable for a given state.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
}

impl Registry {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment the counter `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().expect("telemetry registry poisoned");
        *counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// The current value of counter `name` (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let counters = self.counters.lock().expect("telemetry registry poisoned");
        counters.get(name).copied().unwrap_or(0)
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut gauges = self.gauges.lock().expect("telemetry registry poisoned");
        gauges.insert(name.to_owned(), value);
    }

    /// The current value of gauge `name` (0 if never set).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        let gauges = self.gauges.lock().expect("telemetry registry poisoned");
        gauges.get(name).copied().unwrap_or(0)
    }

    /// Key-sorted snapshot of every counter.
    #[must_use]
    pub fn snapshot_counters(&self) -> Counters {
        let counters = self.counters.lock().expect("telemetry registry poisoned");
        Counters {
            values: counters.clone(),
        }
    }

    /// Key-sorted snapshot of every gauge.
    #[must_use]
    pub fn snapshot_gauges(&self) -> Counters {
        let gauges = self.gauges.lock().expect("telemetry registry poisoned");
        Counters {
            values: gauges.clone(),
        }
    }

    /// Byte-stable JSON export: `{"counters":{...},"gauges":{...}}`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{{\"counters\":{},\"gauges\":{}}}",
            self.snapshot_counters().render(),
            self.snapshot_gauges().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_sorted_regardless_of_insertion_order() {
        let mut a = Counters::new();
        a.set("zeta", 3);
        a.set("alpha", 1);
        a.add("mid", 2);
        let mut b = Counters::new();
        b.add("mid", 2);
        b.set("alpha", 1);
        b.set("zeta", 3);
        assert_eq!(a.render(), "{\"alpha\":1,\"mid\":2,\"zeta\":3}");
        assert_eq!(a.render(), b.render());
        assert_eq!(a, b);
    }

    #[test]
    fn counters_merge_sums() {
        let mut a = Counters::from_pairs([("x", 1u64), ("y", 2)]);
        let b = Counters::from_pairs([("y", 3u64), ("z", 4)]);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(1));
        assert_eq!(a.get("y"), Some(5));
        assert_eq!(a.get("z"), Some(4));
    }

    #[test]
    fn span_render_and_deterministic_projection() {
        let mut root = Span::new("flow");
        root.wall_ms = 12;
        root.counters.set("states", 20);
        root.advisory.set("bdd_nodes", 99);
        let mut child = Span::new("check");
        child.wall_ms = 7;
        child.counters.set("states", 20);
        root.push_child(child);
        assert_eq!(
            root.render(),
            "{\"name\":\"flow\",\"wall_ms\":12,\"counters\":{\"states\":20},\
             \"advisory\":{\"bdd_nodes\":99},\"children\":[\
             {\"name\":\"check\",\"wall_ms\":7,\"counters\":{\"states\":20},\
             \"advisory\":{},\"children\":[]}]}"
        );
        assert_eq!(
            root.render_deterministic(),
            "{\"name\":\"flow\",\"counters\":{\"states\":20},\"children\":[\
             {\"name\":\"check\",\"counters\":{\"states\":20},\"children\":[]}]}"
        );
    }

    #[test]
    fn deterministic_projection_ignores_wall_and_advisory_differences() {
        let mut a = Span::new("flow");
        a.wall_ms = 5;
        a.counters.set("states", 8);
        a.advisory.set("bdd_nodes", 10);
        let mut b = Span::new("flow");
        b.wall_ms = 900;
        b.counters.set("states", 8);
        b.advisory.set("bdd_nodes", 77777);
        assert_ne!(a.render(), b.render());
        assert_eq!(a.render_deterministic(), b.render_deterministic());
    }

    #[test]
    fn span_names_are_json_escaped() {
        let span = Span::new("a\"b\\c\nd");
        assert_eq!(
            span.render_deterministic(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"counters\":{},\"children\":[]}"
        );
    }

    #[test]
    fn registry_counts_and_gauges() {
        let reg = Registry::new();
        reg.incr("jobs");
        reg.add("jobs", 2);
        reg.set_gauge("queued", 5);
        reg.set_gauge("queued", 3);
        assert_eq!(reg.counter("jobs"), 3);
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.gauge("queued"), 3);
        assert_eq!(
            reg.render(),
            "{\"counters\":{\"jobs\":3},\"gauges\":{\"queued\":3}}"
        );
    }

    #[test]
    fn registry_is_thread_safe() {
        let reg = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.incr("hits");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hits"), 4000);
    }
}
