//! Timing analysis and optimisation (§5 and the performance bullet of
//! §2.1 of the DAC'98 tutorial).
//!
//! Three capabilities:
//!
//! * [`tmg`] — timed marked graphs with min/max delay intervals per
//!   transition;
//! * [`perf`] — cycle time (max cycle ratio) and time-separation-of-events
//!   bounds via bounded unrolling (the Hulgaard/Burns-style analysis the
//!   paper cites for *"performance analysis and separation between
//!   events"*);
//! * [`relative`] — relative-timing assumptions `sep(a,b) < 0` (*"a is
//!   always earlier than b"*) applied to an STG as environment ordering
//!   arcs, shrinking the state graph and enlarging the don't-care set for
//!   logic optimisation (Fig. 11).

pub mod perf;
pub mod relative;
pub mod tmg;

pub use perf::{cycle_time, max_separation, SeparationQuery};
pub use relative::{apply_assumptions, retime_trigger, TimingAssumption};
pub use tmg::TimedMarkedGraph;

#[cfg(test)]
mod tests;
