//! Timed marked graphs: a safe marked graph plus a delay interval per
//! transition (§1.6's "min/max delay intervals associated with
//! transitions").

use petri::{PetriNet, TransitionId};

/// A timed marked graph: every transition `t` fires between `min` and
/// `max` time units after it becomes enabled.
#[derive(Debug, Clone)]
pub struct TimedMarkedGraph {
    net: PetriNet,
    delays: Vec<(f64, f64)>,
}

impl TimedMarkedGraph {
    /// Wraps a marked graph with per-transition delay intervals.
    ///
    /// # Panics
    ///
    /// Panics if the net is not a marked graph, if the interval count does
    /// not match the transition count, or if any interval has
    /// `min > max` or negative bounds.
    #[must_use]
    pub fn new(net: PetriNet, delays: Vec<(f64, f64)>) -> Self {
        assert!(
            petri::classify::is_marked_graph(&net),
            "timed analysis requires a marked graph"
        );
        assert_eq!(
            delays.len(),
            net.num_transitions(),
            "one interval per transition"
        );
        for &(lo, hi) in &delays {
            assert!(lo >= 0.0 && hi >= lo, "bad delay interval [{lo}, {hi}]");
        }
        TimedMarkedGraph { net, delays }
    }

    /// Uniform fixed delay `d` on every transition.
    ///
    /// # Panics
    ///
    /// See [`TimedMarkedGraph::new`].
    #[must_use]
    pub fn with_fixed_delay(net: PetriNet, d: f64) -> Self {
        let n = net.num_transitions();
        Self::new(net, vec![(d, d); n])
    }

    /// The underlying net.
    #[must_use]
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// Delay interval of a transition.
    #[must_use]
    pub fn delay(&self, t: TransitionId) -> (f64, f64) {
        self.delays[t.index()]
    }

    /// Minimum delay of a transition.
    #[must_use]
    pub fn min_delay(&self, t: TransitionId) -> f64 {
        self.delays[t.index()].0
    }

    /// Maximum delay of a transition.
    #[must_use]
    pub fn max_delay(&self, t: TransitionId) -> f64 {
        self.delays[t.index()].1
    }
}
