//! Relative-timing assumptions and lazy-transition retiming (§5, Fig. 11).
//!
//! *"Timing constraints always reduce the set of reachable states and
//! hence increase the number of don't care states. Moreover this
//! concurrency reduction does not introduce new dependencies between
//! signals since it is fully based on timing not on logic ordering."*

use stg::{StateGraph, Stg, StgError};

/// A relative-timing assumption `sep(earlier, later) < 0`: in every
/// execution, `earlier` fires before the corresponding occurrence of
/// `later` (the paper's `sep(LDTACK−, DSr+) < 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingAssumption {
    /// Label text of the earlier transition (e.g. `"LDTACK-"`).
    pub earlier: String,
    /// Label text of the later transition (e.g. `"DSr+"`).
    pub later: String,
}

impl TimingAssumption {
    /// Convenience constructor.
    #[must_use]
    pub fn new(earlier: impl Into<String>, later: impl Into<String>) -> Self {
        TimingAssumption {
            earlier: earlier.into(),
            later: later.into(),
        }
    }
}

/// Errors from applying assumptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// A label named in an assumption does not exist in the STG.
    UnknownLabel(String),
    /// Applying the assumptions broke the specification (deadlock or
    /// inconsistency) both with an unmarked and a marked ordering place.
    Breaks(String),
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::UnknownLabel(l) => write!(f, "no transition labelled {l}"),
            TimingError::Breaks(why) => write!(f, "assumption breaks the specification: {why}"),
        }
    }
}

impl std::error::Error for TimingError {}

fn find_transition(stg: &Stg, label: &str) -> Option<petri::TransitionId> {
    stg.net()
        .transitions()
        .find(|&t| stg.label_string(t) == label)
}

/// Applies timing assumptions to an STG as environment-side ordering arcs,
/// producing the *timed* STG whose state graph excludes the timing-
/// impossible states (Fig. 11's don't-care enlargement).
///
/// Each assumption adds a causal place `earlier → later`; if the unmarked
/// place deadlocks the specification (the first `later` precedes the first
/// `earlier` in the initial marking's future), a marked place is used
/// instead.
///
/// # Errors
///
/// [`TimingError::UnknownLabel`] for labels not in the STG;
/// [`TimingError::Breaks`] when neither polarity of the ordering place
/// yields a consistent, live specification.
pub fn apply_assumptions(stg: &Stg, assumptions: &[TimingAssumption]) -> Result<Stg, TimingError> {
    let mut current = stg.clone();
    for a in assumptions {
        let earlier = find_transition(&current, &a.earlier)
            .ok_or_else(|| TimingError::UnknownLabel(a.earlier.clone()))?;
        let later = find_transition(&current, &a.later)
            .ok_or_else(|| TimingError::UnknownLabel(a.later.clone()))?;
        let mut ok = None;
        for marked in [false, true] {
            let mut b = current.clone().into_builder();
            let p = b.connect(earlier, later);
            if marked {
                b.mark_place(p, 1);
            }
            let candidate = b.build();
            match StateGraph::build_bounded(&candidate, 200_000) {
                Ok(sg) if sg.ts().deadlocks().is_empty() => {
                    ok = Some(candidate);
                    break;
                }
                _ => {}
            }
        }
        current = ok.ok_or_else(|| TimingError::Breaks(format!("{} -> {}", a.earlier, a.later)))?;
    }
    Ok(current)
}

/// Lazy-transition retiming (Fig. 11b): starts enabling `target` from
/// `new_trigger` instead of `old_trigger`, on the promise (to be
/// discharged by separation analysis) that the old trigger still completes
/// first physically.
///
/// Structurally: every place on the `old_trigger → target` path with
/// single producer/consumer is removed and replaced by a place
/// `new_trigger → target`.
///
/// # Errors
///
/// [`TimingError::UnknownLabel`] if a label is missing;
/// [`TimingError::Breaks`] if no direct `old_trigger → target` place
/// exists or the result is not a valid STG.
pub fn retime_trigger(
    stg: &Stg,
    target: &str,
    old_trigger: &str,
    new_trigger: &str,
) -> Result<Stg, TimingError> {
    let t_target =
        find_transition(stg, target).ok_or_else(|| TimingError::UnknownLabel(target.to_owned()))?;
    let t_old = find_transition(stg, old_trigger)
        .ok_or_else(|| TimingError::UnknownLabel(old_trigger.to_owned()))?;
    let t_new = find_transition(stg, new_trigger)
        .ok_or_else(|| TimingError::UnknownLabel(new_trigger.to_owned()))?;
    // Find the direct place old → target.
    let net = stg.net();
    let place = net
        .preset(t_target)
        .iter()
        .copied()
        .find(|&p| {
            net.place_preset(p) == [t_old]
                && net.place_postset(p) == [t_target]
                && net.initial_tokens(p) == 0
        })
        .ok_or_else(|| TimingError::Breaks(format!("no direct place {old_trigger} -> {target}")))?;
    // Rebuild without that place, with a new trigger arc.
    let mut b = stg::StgBuilder::new(format!("{}-lazy", stg.name()));
    let mut signal_map = Vec::new();
    for s in stg.signals() {
        signal_map.push(b.add_signal(stg.signal_name(s), stg.signal_kind(s)));
    }
    let mut t_map = Vec::new();
    for t in net.transitions() {
        let nt = match stg.label(t) {
            Some(l) => b.add_edge(signal_map[l.signal.index()], l.edge),
            None => b.add_dummy(net.transition_name(t)),
        };
        t_map.push(nt);
    }
    for p in net.places() {
        if p == place {
            continue;
        }
        let np = b.add_place(net.place_name(p), net.initial_tokens(p));
        for &t in net.place_preset(p) {
            b.arc_tp(t_map[t.index()], np);
        }
        for &t in net.place_postset(p) {
            b.arc_pt(np, t_map[t.index()]);
        }
    }
    b.connect(t_map[t_new.index()], t_map[t_target.index()]);
    let result = b.build();
    match StateGraph::build_bounded(&result, 200_000) {
        Ok(sg) if sg.ts().deadlocks().is_empty() => Ok(result),
        Ok(_) => Err(TimingError::Breaks("retiming deadlocks".to_owned())),
        Err(e) => Err(TimingError::Breaks(format!(
            "retiming breaks consistency: {e}"
        ))),
    }
}

/// Convenience: state counts before/after assumptions — the "fewer states,
/// more don't-cares" effect of §5.
///
/// # Errors
///
/// Propagates [`StgError`] from state-graph construction.
pub fn state_count_effect(before: &Stg, after: &Stg) -> Result<(usize, usize), StgError> {
    let a = StateGraph::build(before)?;
    let b = StateGraph::build(after)?;
    Ok((a.num_states(), b.num_states()))
}
