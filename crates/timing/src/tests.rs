//! Timing analysis tests: hand-checked cycle times, separations, and the
//! Fig. 11 transformations.

use petri::generators;
use stg::examples::vme_read;
use stg::StateGraph;

use crate::perf::{cycle_time, max_separation, SeparationQuery};
use crate::relative::{apply_assumptions, retime_trigger, TimingAssumption};
use crate::tmg::TimedMarkedGraph;

#[test]
fn cycle_time_of_simple_ring() {
    // A 4-stage ring with one token and unit delays: period = 4.
    let net = generators::pipeline(4);
    let tmg = TimedMarkedGraph::with_fixed_delay(net, 1.0);
    let ct = cycle_time(&tmg);
    assert!((ct - 4.0).abs() < 1e-6, "got {ct}");
}

#[test]
fn cycle_time_scales_with_tokens() {
    // 6 stages, 2 tokens: the FIFO ring's period is bounded by the
    // slowest cycle; with unit delays it is 6/2 = 3 per token... the ring
    // of `pipeline_with_tokens` has cycles with both polarities, so just
    // check monotonicity: more tokens => no slower.
    let t1 = TimedMarkedGraph::with_fixed_delay(generators::pipeline_with_tokens(6, 1), 1.0);
    let t2 = TimedMarkedGraph::with_fixed_delay(generators::pipeline_with_tokens(6, 2), 1.0);
    assert!(cycle_time(&t2) <= cycle_time(&t1) + 1e-9);
}

#[test]
fn cycle_time_dominated_by_slowest_cycle() {
    let net = generators::pipeline(3);
    let slow = net.transition_by_name("t1").unwrap();
    let mut delays = vec![(1.0, 1.0); 3];
    delays[slow.index()] = (5.0, 5.0);
    let tmg = TimedMarkedGraph::new(net.clone(), delays);
    let ct = cycle_time(&tmg);
    assert!((ct - 7.0).abs() < 1e-6, "1 + 5 + 1 = 7, got {ct}");
}

#[test]
fn separation_on_fixed_delay_ring() {
    // Ring t0 → t1 → t2 → t0 (token before t0), unit delays: within an
    // iteration, t2 fires 2 after t0, so sep(t0, t2) = -2 and
    // sep(t2, t0) = +2 in the same iteration.
    let net = generators::pipeline(3);
    let t0 = net.transition_by_name("t0").unwrap();
    let t2 = net.transition_by_name("t2").unwrap();
    let tmg = TimedMarkedGraph::with_fixed_delay(net, 1.0);
    let sep_02 = max_separation(
        &tmg,
        SeparationQuery {
            from: t0,
            to: t2,
            offset: 0,
        },
        12,
    );
    assert!((sep_02 + 2.0).abs() < 1e-6, "got {sep_02}");
    let sep_20 = max_separation(
        &tmg,
        SeparationQuery {
            from: t2,
            to: t0,
            offset: 0,
        },
        12,
    );
    assert!((sep_20 - 2.0).abs() < 1e-6, "got {sep_20}");
}

#[test]
fn separation_uses_interval_bounds() {
    // With delay intervals, the conservative bound uses max for `from`
    // and min for `to`.
    let net = generators::pipeline(2);
    let t0 = net.transition_by_name("t0").unwrap();
    let t1 = net.transition_by_name("t1").unwrap();
    let tmg = TimedMarkedGraph::new(net, vec![(1.0, 3.0), (1.0, 3.0)]);
    // t1 fires between 1 and 3 after t0; sep(t1, t0) within an iteration
    // is at most 3 (t1 latest minus t0 earliest with the same prefix).
    let sep = max_separation(
        &tmg,
        SeparationQuery {
            from: t1,
            to: t0,
            offset: 0,
        },
        12,
    );
    assert!(sep >= 3.0 - 1e-6, "got {sep}");
}

#[test]
fn vme_read_separation_with_fast_device() {
    // §5: if the device handshake (right side) is much faster than the
    // bus, LDTACK- precedes the next DSr+ — the separation is negative.
    let stg = vme_read();
    let net = stg.net().clone();
    let mut delays = vec![(1.0, 2.0); net.num_transitions()];
    // Make the next request slow (DSr+ takes ≥ 50 time units).
    let dsr_p = net.transition_by_name("DSr+").unwrap();
    delays[dsr_p.index()] = (50.0, 60.0);
    let ldtack_m = net.transition_by_name("LDTACK-").unwrap();
    let tmg = TimedMarkedGraph::new(net, delays);
    let sep = max_separation(
        &tmg,
        SeparationQuery {
            from: ldtack_m,
            to: dsr_p,
            offset: 1,
        },
        16,
    );
    assert!(sep < 0.0, "LDTACK- must precede the next DSr+: sep = {sep}");
}

#[test]
fn timing_assumption_removes_states_fig11a() {
    // sep(LDTACK-, DSr+) < 0 applied to the READ STG: the SG shrinks and
    // the CSC conflict disappears without any extra signal.
    let stg = vme_read();
    let before = StateGraph::build(&stg).unwrap();
    assert_eq!(before.num_states(), 14);
    let timed = apply_assumptions(&stg, &[TimingAssumption::new("LDTACK-", "DSr+")]).unwrap();
    let after = StateGraph::build(&timed).unwrap();
    assert!(after.num_states() < 14, "states: {}", after.num_states());
    assert!(
        stg::encoding::has_csc(&timed, &after),
        "Fig. 11a: no state signal needed under the timing assumption"
    );
}

#[test]
fn lazy_retiming_fig11b() {
    // Fig. 11b: LDS- starts from DSr- instead of D-, relying on
    // sep(D-, LDS-) < 0.
    let stg = vme_read();
    let lazy = retime_trigger(&stg, "LDS-", "D-", "DSr-").unwrap();
    let sg = StateGraph::build(&lazy).unwrap();
    assert!(sg.ts().deadlocks().is_empty());
    // LDS- is now concurrent with D-: more states before the constraint
    // prunes them.
    let base = StateGraph::build(&stg).unwrap();
    assert!(sg.num_states() >= base.num_states());
}

#[test]
fn unknown_labels_rejected() {
    let stg = vme_read();
    assert!(apply_assumptions(&stg, &[TimingAssumption::new("nope+", "DSr+")]).is_err());
    assert!(retime_trigger(&stg, "LDS-", "nope-", "DSr-").is_err());
}
