//! Performance analysis: cycle time and time separation of events.
//!
//! §2.1: *"Performance analysis and separation between events is required
//! (a) for determining latency and throughput of the device and (b) for
//! logic optimization based on timing information."*

use std::collections::HashMap;

use petri::TransitionId;

use crate::tmg::TimedMarkedGraph;

/// Cycle time of a strongly connected timed marked graph under maximum
/// delays: the maximum over directed cycles of
/// `Σ delay(transition) / Σ tokens(place)` — the steady-state period.
///
/// Computed by parametric binary search: `λ` is feasible iff the graph
/// with arc weights `delay(target) − λ·tokens(place)` has no positive
/// cycle (Bellman-Ford detection).
///
/// # Panics
///
/// Panics if the marked graph has no tokens on some cycle (cycle time
/// would be infinite).
#[must_use]
pub fn cycle_time(tmg: &TimedMarkedGraph) -> f64 {
    let net = tmg.net();
    let n = net.num_transitions();
    if n == 0 {
        return 0.0;
    }
    // Arcs between transitions through places.
    let mut arcs: Vec<(usize, usize, f64, f64)> = Vec::new(); // (from, to, delay(to), tokens)
    for p in net.places() {
        for &src in net.place_preset(p) {
            for &dst in net.place_postset(p) {
                arcs.push((
                    src.index(),
                    dst.index(),
                    tmg.max_delay(dst),
                    f64::from(net.initial_tokens(p)),
                ));
            }
        }
    }
    let has_positive_cycle = |lambda: f64| -> bool {
        // Bellman-Ford with weights d - λ·m, looking for positive cycles
        // (run on negated weights to reuse shortest-path relaxation).
        let mut dist = vec![0.0f64; n];
        for _ in 0..n {
            let mut changed = false;
            for &(u, v, d, m) in &arcs {
                let w = d - lambda * m;
                if dist[u] + w > dist[v] + 1e-12 {
                    dist[v] = dist[u] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        true
    };
    // Upper bound: sum of all max delays (a cycle visits each transition
    // at most once and every cycle has ≥ 1 token in a live MG).
    let mut hi: f64 = net
        .transitions()
        .map(|t| tmg.max_delay(t))
        .sum::<f64>()
        .max(1.0);
    assert!(
        !has_positive_cycle(hi * 2.0),
        "marked graph has a token-free cycle: unbounded cycle time"
    );
    let mut lo = 0.0f64;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if has_positive_cycle(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// A separation query: the maximum of `τ(from) − τ(to)` over all
/// executions, approximated over `periods` unrolled iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeparationQuery {
    /// The event whose lateness we maximise.
    pub from: TransitionId,
    /// The reference event.
    pub to: TransitionId,
    /// Occurrence-index offset: `from` at iteration `k` is compared with
    /// `to` at iteration `k + offset` (e.g. `sep(LDTACK−, DSr+)` of the
    /// paper compares this cycle's `LDTACK−` with the *next* request, so
    /// `offset = 1`).
    pub offset: i64,
}

/// Maximum separation `max(τ(from@k) − τ(to@k+offset))` over executions of
/// a live timed marked graph, estimated over `periods` unrolled iterations.
///
/// Both occurrence times are computed on a **shared timeline** (the same
/// delay assignment governs both events), so the estimate does not diverge
/// on cyclic graphs. Delay-interval uncertainty is explored by corner
/// search: every transition's delay is pinned to its interval's low or
/// high endpoint, all `2^T` corners are evaluated exhaustively for up to
/// 12 varying transitions, and a deterministic pseudo-random sample of
/// 4096 corners beyond that. This is exact for fixed delays and the
/// standard endpoint heuristic for intervals (per-occurrence delay
/// variation, which full Hulgaard-style TSE would capture, is documented
/// as out of scope in `DESIGN.md`).
///
/// Negative result ⇒ `from` always fires before `to` — the form of the
/// paper's `sep(LDTACK−, DSr+) < 0` assumption check.
#[must_use]
pub fn max_separation(tmg: &TimedMarkedGraph, query: SeparationQuery, periods: usize) -> f64 {
    let net = tmg.net();
    let n = net.num_transitions();
    let varying: Vec<usize> = (0..n)
        .filter(|&t| {
            let tid = TransitionId::from_index(t);
            tmg.max_delay(tid) > tmg.min_delay(tid)
        })
        .collect();
    let corner_delays = |bits: u64| -> Vec<f64> {
        (0..n)
            .map(|t| {
                let tid = TransitionId::from_index(t);
                match varying.iter().position(|&v| v == t) {
                    Some(pos) if bits >> pos & 1 == 1 => tmg.max_delay(tid),
                    Some(_) => tmg.min_delay(tid),
                    None => tmg.max_delay(tid),
                }
            })
            .collect()
    };
    let corners: Vec<u64> = if varying.len() <= 12 {
        (0..(1u64 << varying.len())).collect()
    } else {
        // Deterministic LCG sample of corners.
        let mut state = 0x9e37_79b9_97f4_a7c1u64;
        (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                state
            })
            .collect()
    };
    let mut worst = f64::NEG_INFINITY;
    for bits in corners {
        let delays = corner_delays(bits);
        let sep = separation_fixed(net, &delays, query, periods);
        if sep > worst {
            worst = sep;
        }
    }
    worst
}

/// Exact separation for one fixed delay assignment via the occurrence-time
/// recurrence `τ(t, k) = max over input places p (from s, m tokens) of
/// τ(s, k − m) + d(t)`, with `τ(·, k<0) = 0`.
fn separation_fixed(
    net: &petri::PetriNet,
    delays: &[f64],
    query: SeparationQuery,
    periods: usize,
) -> f64 {
    let mut memo: HashMap<(usize, i64), f64> = HashMap::new();
    fn occ(
        net: &petri::PetriNet,
        delays: &[f64],
        t: usize,
        k: i64,
        memo: &mut HashMap<(usize, i64), f64>,
    ) -> f64 {
        if k < 0 {
            return 0.0;
        }
        if let Some(&v) = memo.get(&(t, k)) {
            return v;
        }
        let tid = TransitionId::from_index(t);
        let d = delays[t];
        let mut best = d;
        for &p in net.preset(tid) {
            let tokens = i64::from(net.initial_tokens(p));
            for &src in net.place_preset(p) {
                let v = occ(net, delays, src.index(), k - tokens, memo) + d;
                if v > best {
                    best = v;
                }
            }
        }
        memo.insert((t, k), best);
        best
    }
    let mut worst = f64::NEG_INFINITY;
    let start = periods / 2; // skip the transient
    for k in start..periods {
        let k = i64::try_from(k).expect("period fits i64");
        let a = occ(net, delays, query.from.index(), k, &mut memo);
        let b = occ(net, delays, query.to.index(), k + query.offset, &mut memo);
        let sep = a - b;
        if sep > worst {
            worst = sep;
        }
    }
    worst
}
