//! Unit and property tests for the BDD package.

use crate::{Bdd, Manager};

fn assignments(n: u32) -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << n)).map(move |bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect())
}

#[test]
fn constants_are_fixed() {
    assert!(Manager::zero().is_zero());
    assert!(Manager::one().is_one());
    assert!(Manager::zero().is_const());
    assert_ne!(Manager::zero(), Manager::one());
}

#[test]
fn var_and_negation() {
    let mut m = Manager::new();
    let x = m.var(0);
    let nx = m.not(x);
    assert_eq!(m.nvar(0), nx);
    for a in assignments(1) {
        assert_eq!(m.eval(x, &a), a[0]);
        assert_eq!(m.eval(nx, &a), !a[0]);
    }
}

#[test]
fn canonical_handles() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let f1 = m.and(a, b);
    let f2 = m.and(b, a);
    assert_eq!(
        f1, f2,
        "conjunction is canonical regardless of argument order"
    );
    let g1 = m.or(a, b);
    let na = m.not(a);
    let nb = m.not(b);
    let both_zero = m.and(na, nb);
    let g2 = m.not(both_zero);
    assert_eq!(g1, g2, "De Morgan duals share one node");
}

#[test]
fn connective_semantics() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    let and = m.and(a, b);
    let or = m.or(a, b);
    let xor = m.xor(a, b);
    let imp = m.implies(a, b);
    let iff = m.iff(a, b);
    let ite = m.ite(a, b, c);
    for asg in assignments(3) {
        let (va, vb, vc) = (asg[0], asg[1], asg[2]);
        assert_eq!(m.eval(and, &asg), va && vb);
        assert_eq!(m.eval(or, &asg), va || vb);
        assert_eq!(m.eval(xor, &asg), va ^ vb);
        assert_eq!(m.eval(imp, &asg), !va || vb);
        assert_eq!(m.eval(iff, &asg), va == vb);
        assert_eq!(m.eval(ite, &asg), if va { vb } else { vc });
    }
}

#[test]
fn restrict_cofactors() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let f = m.xor(a, b);
    let f_a1 = m.restrict(f, 0, true);
    let nb = m.not(b);
    assert_eq!(f_a1, nb);
    let f_a0 = m.restrict(f, 0, false);
    assert_eq!(f_a0, b);
}

#[test]
fn quantification() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let f = m.and(a, b);
    assert_eq!(m.exists(f, &[0]), b);
    assert_eq!(m.forall(f, &[0]), Manager::zero());
    let g = m.or(a, b);
    assert_eq!(m.exists(g, &[0]), Manager::one());
    assert_eq!(m.forall(g, &[0]), b);
    // Quantifying all support variables yields a constant.
    assert_eq!(m.exists(f, &[0, 1]), Manager::one());
    assert_eq!(m.forall(g, &[0, 1]), Manager::zero());
}

#[test]
fn and_exists_matches_composition() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    let ab = m.and(a, b);
    let f = m.or(ab, c);
    let nb = m.not(b);
    let g = m.or(nb, c);
    let direct = {
        let conj = m.and(f, g);
        m.exists(conj, &[1])
    };
    let fused = m.and_exists(f, g, &[1]);
    assert_eq!(direct, fused);
}

#[test]
fn rename_shifts_rails() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(2);
    let f = m.and(a, b);
    let g = m.rename(f, &[0, 2], &[1, 3]);
    let a1 = m.var(1);
    let b1 = m.var(3);
    let expect = m.and(a1, b1);
    assert_eq!(g, expect);
}

#[test]
fn sat_count_small() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    let or3 = {
        let t = m.or(a, b);
        m.or(t, c)
    };
    assert_eq!(m.sat_count(or3, 3), 7);
    assert_eq!(m.sat_count(Manager::one(), 3), 8);
    assert_eq!(m.sat_count(Manager::zero(), 3), 0);
}

#[test]
fn sat_assignments_enumerates_exactly() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    let bc = m.and(b, c);
    let f = m.or(a, bc);
    let mut got: Vec<Vec<bool>> = m.sat_assignments(f, 3).collect();
    got.sort();
    got.dedup();
    let expect: Vec<Vec<bool>> = assignments(3).filter(|asg| m.eval(f, asg)).collect();
    let mut expect = expect;
    expect.sort();
    assert_eq!(got, expect);
    assert_eq!(got.len() as u128, m.sat_count(f, 3));
}

#[test]
fn support_reports_dependencies() {
    let mut m = Manager::new();
    let a = m.var(0);
    let c = m.var(2);
    let f = m.xor(a, c);
    assert_eq!(m.support(f), vec![0, 2]);
    assert!(m.support(Manager::one()).is_empty());
}

#[test]
fn cube_builder() {
    let mut m = Manager::new();
    let f = m.cube(&[(0, true), (2, false)]);
    for asg in assignments(3) {
        assert_eq!(m.eval(f, &asg), asg[0] && !asg[2]);
    }
}

#[test]
fn size_counts_nodes() {
    let mut m = Manager::new();
    let a = m.var(0);
    assert_eq!(m.size(a), 3); // two terminals + one decision
    assert_eq!(m.size(Manager::one()), 2);
}

#[test]
fn any_sat_finds_witness() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let na = m.not(a);
    let f = m.and(na, b);
    let w = m.any_sat(f, 2).expect("satisfiable");
    assert!(m.eval(f, &w));
    assert_eq!(m.any_sat(Manager::zero(), 2), None);
}

#[test]
fn leq_containment() {
    let mut m = Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let ab = m.and(a, b);
    let aorb = m.or(a, b);
    assert!(m.leq(ab, aorb));
    assert!(!m.leq(aorb, ab));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// A tiny expression AST to generate random boolean functions.
    #[derive(Debug, Clone)]
    enum Expr {
        Var(u32),
        Not(Box<Expr>),
        And(Box<Expr>, Box<Expr>),
        Or(Box<Expr>, Box<Expr>),
        Xor(Box<Expr>, Box<Expr>),
    }

    fn expr_strategy(num_vars: u32) -> impl Strategy<Value = Expr> {
        let leaf = (0..num_vars).prop_map(Expr::Var);
        leaf.prop_recursive(4, 48, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            ]
        })
    }

    fn build(m: &mut Manager, e: &Expr) -> Bdd {
        match e {
            Expr::Var(v) => m.var(*v),
            Expr::Not(a) => {
                let x = build(m, a);
                m.not(x)
            }
            Expr::And(a, b) => {
                let x = build(m, a);
                let y = build(m, b);
                m.and(x, y)
            }
            Expr::Or(a, b) => {
                let x = build(m, a);
                let y = build(m, b);
                m.or(x, y)
            }
            Expr::Xor(a, b) => {
                let x = build(m, a);
                let y = build(m, b);
                m.xor(x, y)
            }
        }
    }

    fn eval_expr(e: &Expr, asg: &[bool]) -> bool {
        match e {
            Expr::Var(v) => asg[*v as usize],
            Expr::Not(a) => !eval_expr(a, asg),
            Expr::And(a, b) => eval_expr(a, asg) && eval_expr(b, asg),
            Expr::Or(a, b) => eval_expr(a, asg) || eval_expr(b, asg),
            Expr::Xor(a, b) => eval_expr(a, asg) ^ eval_expr(b, asg),
        }
    }

    const VARS: u32 = 5;

    proptest! {
        #[test]
        fn bdd_matches_truth_table(e in expr_strategy(VARS)) {
            let mut m = Manager::new();
            // Touch all variables so counting is over a fixed universe.
            for v in 0..VARS { m.var(v); }
            let f = build(&mut m, &e);
            let mut count = 0u128;
            for asg in assignments(VARS) {
                let expect = eval_expr(&e, &asg);
                prop_assert_eq!(m.eval(f, &asg), expect);
                if expect { count += 1; }
            }
            prop_assert_eq!(m.sat_count(f, VARS), count);
        }

        #[test]
        fn double_negation_is_identity(e in expr_strategy(VARS)) {
            let mut m = Manager::new();
            let f = build(&mut m, &e);
            let nf = m.not(f);
            let nnf = m.not(nf);
            prop_assert_eq!(f, nnf);
        }

        #[test]
        fn exists_or_of_cofactors(e in expr_strategy(VARS), v in 0..VARS) {
            let mut m = Manager::new();
            let f = build(&mut m, &e);
            let f0 = m.restrict(f, v, false);
            let f1 = m.restrict(f, v, true);
            let or = m.or(f0, f1);
            prop_assert_eq!(m.exists(f, &[v]), or);
            let and = m.and(f0, f1);
            prop_assert_eq!(m.forall(f, &[v]), and);
        }

        #[test]
        fn shannon_expansion(e in expr_strategy(VARS), v in 0..VARS) {
            let mut m = Manager::new();
            let f = build(&mut m, &e);
            let f0 = m.restrict(f, v, false);
            let f1 = m.restrict(f, v, true);
            let x = m.var(v);
            let rebuilt = m.ite(x, f1, f0);
            prop_assert_eq!(f, rebuilt);
        }
    }
}

fn _assert_send_sync() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Manager>();
    assert_sync::<Manager>();
    assert_send::<Bdd>();
    assert_sync::<Bdd>();
}
