//! Boolean operations, quantification, substitution and enumeration.

use std::collections::HashMap;

use crate::manager::{Bdd, IteKey, Manager, VarId, TERMINAL_VAR};

impl Manager {
    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// This is the universal connective every other operation reduces to.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        let key = IteKey(f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            return r;
        }
        let top = self.top_var3(f, g, h);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    /// Logical negation `¬f`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Manager::zero(), Manager::one())
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Manager::zero())
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Manager::one(), g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Manager::one())
    }

    /// Equivalence `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Conjunction over an iterator of diagrams (`⊤` for an empty one).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Manager::one();
        for b in items {
            acc = self.and(acc, b);
            if acc.is_zero() {
                break;
            }
        }
        acc
    }

    /// Disjunction over an iterator of diagrams (`⊥` for an empty one).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Manager::zero();
        for b in items {
            acc = self.or(acc, b);
            if acc.is_one() {
                break;
            }
        }
        acc
    }

    /// Returns `true` iff `f → g` is a tautology (`f` is contained in `g`).
    pub fn leq(&mut self, f: Bdd, g: Bdd) -> bool {
        self.implies(f, g).is_one()
    }

    fn top_var3(&self, f: Bdd, g: Bdd, h: Bdd) -> VarId {
        let vf = self.node(f).var;
        let vg = self.node(g).var;
        let vh = self.node(h).var;
        vf.min(vg).min(vh)
    }

    /// Shannon cofactors of `b` with respect to `var`, assuming `var` is at
    /// or above `b`'s root in the order.
    pub(crate) fn cofactors(&self, b: Bdd, var: VarId) -> (Bdd, Bdd) {
        if b.is_const() {
            return (b, b);
        }
        let n = self.node(b);
        if n.var == var {
            (n.lo, n.hi)
        } else {
            debug_assert!(n.var > var);
            (b, b)
        }
    }

    /// Restrict (generalised cofactor on a literal): `f[var := value]`.
    pub fn restrict(&mut self, f: Bdd, var: VarId, value: bool) -> Bdd {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f;
        }
        if n.var == var {
            return if value { n.hi } else { n.lo };
        }
        let lo = self.restrict(n.lo, var, value);
        let hi = self.restrict(n.hi, var, value);
        self.mk(n.var, lo, hi)
    }

    /// Existential quantification `∃ vars . f`.
    ///
    /// `vars` may be given in any order; duplicates are ignored.
    pub fn exists(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let mask = var_mask(vars);
        self.quantify(f, &mask, true)
    }

    /// Universal quantification `∀ vars . f`.
    pub fn forall(&mut self, f: Bdd, vars: &[VarId]) -> Bdd {
        let mask = var_mask(vars);
        self.quantify(f, &mask, false)
    }

    fn quantify(&mut self, f: Bdd, mask: &VarMask, existential: bool) -> Bdd {
        if f.is_const() {
            return f;
        }
        let key = (f, mask.fingerprint, existential);
        if let Some(&r) = self.quant_cache.get(&key) {
            return r;
        }
        let n = self.node(f);
        let lo = self.quantify(n.lo, mask, existential);
        let hi = self.quantify(n.hi, mask, existential);
        let r = if mask.contains(n.var) {
            if existential {
                self.or(lo, hi)
            } else {
                self.and(lo, hi)
            }
        } else {
            self.mk(n.var, lo, hi)
        };
        self.quant_cache.insert(key, r);
        r
    }

    /// Relational product `∃ vars . (f ∧ g)` — the workhorse of image
    /// computation. Computed without building `f ∧ g` in full.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: &[VarId]) -> Bdd {
        let mask = var_mask(vars);
        let mut cache = HashMap::new();
        self.and_exists_rec(f, g, &mask, &mut cache)
    }

    fn and_exists_rec(
        &mut self,
        f: Bdd,
        g: Bdd,
        mask: &VarMask,
        cache: &mut HashMap<(Bdd, Bdd), Bdd>,
    ) -> Bdd {
        if f.is_zero() || g.is_zero() {
            return Manager::zero();
        }
        if f.is_one() && g.is_one() {
            return Manager::one();
        }
        if f.is_one() {
            return self.quantify(g, mask, true);
        }
        if g.is_one() {
            return self.quantify(f, mask, true);
        }
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = cache.get(&key) {
            return r;
        }
        let vf = self.node(f).var;
        let vg = self.node(g).var;
        let top = vf.min(vg);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let r = if mask.contains(top) {
            let lo = self.and_exists_rec(f0, g0, mask, cache);
            if lo.is_one() {
                Manager::one()
            } else {
                let hi = self.and_exists_rec(f1, g1, mask, cache);
                self.or(lo, hi)
            }
        } else {
            let lo = self.and_exists_rec(f0, g0, mask, cache);
            let hi = self.and_exists_rec(f1, g1, mask, cache);
            self.mk(top, lo, hi)
        };
        cache.insert(key, r);
        r
    }

    /// Simultaneous variable renaming: replaces each `from[i]` with `to[i]`.
    ///
    /// The substitution must be order-compatible (a simple shift between two
    /// interleaved rails is the intended use, as in current-state /
    /// next-state encodings).
    ///
    /// # Panics
    ///
    /// Panics if `from` and `to` have different lengths.
    pub fn rename(&mut self, f: Bdd, from: &[VarId], to: &[VarId]) -> Bdd {
        assert_eq!(from.len(), to.len(), "rename rails must have equal length");
        let map: HashMap<VarId, VarId> = from.iter().copied().zip(to.iter().copied()).collect();
        let mut cache = HashMap::new();
        self.rename_rec(f, &map, &mut cache)
    }

    fn rename_rec(
        &mut self,
        f: Bdd,
        map: &HashMap<VarId, VarId>,
        cache: &mut HashMap<Bdd, Bdd>,
    ) -> Bdd {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let n = self.node(f);
        let lo = self.rename_rec(n.lo, map, cache);
        let hi = self.rename_rec(n.hi, map, cache);
        let var = map.get(&n.var).copied().unwrap_or(n.var);
        // Rebuild via ite on the (possibly re-ordered) variable so the
        // result stays canonical even if the renaming is not a shift.
        let v = self.var(var);
        let r = self.ite(v, hi, lo);
        cache.insert(f, r);
        r
    }

    /// Evaluates `f` under a total assignment (index = variable id).
    ///
    /// Variables beyond the end of `assignment` default to `false`.
    #[must_use]
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur.is_const() {
                return cur.is_one();
            }
            let n = self.node(cur);
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = if v { n.hi } else { n.lo };
        }
    }

    /// Number of satisfying assignments over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` is smaller than the manager's variable count
    /// ([`Manager::var_count`]); counts are always taken over at least all
    /// variables the manager has ever seen.
    #[must_use]
    pub fn sat_count(&self, f: Bdd, num_vars: u32) -> u128 {
        assert!(
            num_vars >= self.num_vars,
            "num_vars ({num_vars}) smaller than manager variable count ({})",
            self.num_vars
        );
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        let total = self.sat_count_rec(f, &mut memo);
        // sat_count_rec counts over the variable suffix starting at the
        // root; scale by variables above the root and by any extra
        // variables the caller has beyond the manager's own count.
        let root_var = if f.is_const() {
            self.num_vars
        } else {
            self.node(f).var
        };
        (total << root_var) << (num_vars - self.num_vars)
    }

    /// Counts assignments of variables in `(node.var, num_vars)` implicitly;
    /// returns count over the suffix starting *at* the node's variable.
    fn sat_count_rec(&self, f: Bdd, memo: &mut HashMap<Bdd, u128>) -> u128 {
        if f.is_zero() {
            return 0;
        }
        if f.is_one() {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.node(f);
        let lo = self.sat_count_rec(n.lo, memo);
        let hi = self.sat_count_rec(n.hi, memo);
        let gap_lo = self.var_gap(n.var, n.lo);
        let gap_hi = self.var_gap(n.var, n.hi);
        let c = (lo << gap_lo) + (hi << gap_hi);
        memo.insert(f, c);
        c
    }

    fn var_gap(&self, parent: VarId, child: Bdd) -> u32 {
        let child_var = if child.is_const() {
            self.num_vars
        } else {
            self.node(child).var
        };
        child_var - parent - 1
    }

    /// Iterator over all satisfying assignments of `f`, each yielded as a
    /// fully expanded `Vec<bool>` of length `num_vars`.
    ///
    /// Intended for small care sets (state-graph sized); the iterator
    /// expands don't-care variables eagerly.
    #[must_use]
    pub fn sat_assignments(&self, f: Bdd, num_vars: u32) -> SatAssignments<'_> {
        SatAssignments {
            manager: self,
            num_vars,
            stack: vec![(f, Vec::new())],
            pending: Vec::new(),
        }
    }

    /// One satisfying assignment of `f`, if any (don't-cares set to `false`).
    #[must_use]
    pub fn any_sat(&self, f: Bdd, num_vars: u32) -> Option<Vec<bool>> {
        self.sat_assignments(f, num_vars).next()
    }

    /// Number of distinct nodes reachable from `f` (a size measure).
    #[must_use]
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            let n = self.node(b);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len() + 2
    }

    /// The set of variables `f` actually depends on, ascending.
    #[must_use]
    pub fn support(&self, f: Bdd) -> Vec<VarId> {
        let mut vars = std::collections::BTreeSet::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            let n = self.node(b);
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Builds the conjunction of literals described by `(var, value)` pairs.
    pub fn cube(&mut self, literals: &[(VarId, bool)]) -> Bdd {
        let mut sorted: Vec<(VarId, bool)> = literals.to_vec();
        sorted.sort_unstable_by_key(|&(v, _)| std::cmp::Reverse(v));
        let mut acc = Manager::one();
        for (v, positive) in sorted {
            let lit = self.literal(v, positive);
            acc = self.and(lit, acc);
        }
        acc
    }
}

/// Sorted variable set with a cheap fingerprint for memo keys.
struct VarMask {
    vars: Vec<VarId>,
    fingerprint: u64,
}

impl VarMask {
    fn contains(&self, v: VarId) -> bool {
        self.vars.binary_search(&v).is_ok()
    }
}

fn var_mask(vars: &[VarId]) -> VarMask {
    let mut vs: Vec<VarId> = vars.to_vec();
    vs.sort_unstable();
    vs.dedup();
    // FNV-style fold; collisions only risk cache pollution across different
    // quantifications, never wrong results, because the cache key also
    // includes the root — but to be safe we use a high-quality mix.
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in &vs {
        fp ^= u64::from(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
        fp = fp.wrapping_mul(0x100_0000_01b3);
    }
    VarMask {
        vars: vs,
        fingerprint: fp,
    }
}

/// Iterator over satisfying assignments; see [`Manager::sat_assignments`].
pub struct SatAssignments<'a> {
    manager: &'a Manager,
    num_vars: u32,
    /// Stack of (subdiagram, partial assignment as (var,value) pairs).
    stack: Vec<(Bdd, Vec<(VarId, bool)>)>,
    /// Fully-specified assignments waiting to be yielded (from expanding
    /// don't-care gaps).
    pending: Vec<Vec<bool>>,
}

impl Iterator for SatAssignments<'_> {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Vec<bool>> {
        loop {
            if let Some(a) = self.pending.pop() {
                return Some(a);
            }
            let (b, partial) = self.stack.pop()?;
            if b.is_zero() {
                continue;
            }
            if b.is_one() {
                self.expand(&partial);
                continue;
            }
            let n = self.manager.node(b);
            let mut lo_partial = partial.clone();
            lo_partial.push((n.var, false));
            let mut hi_partial = partial;
            hi_partial.push((n.var, true));
            self.stack.push((n.hi, hi_partial));
            self.stack.push((n.lo, lo_partial));
        }
    }
}

impl SatAssignments<'_> {
    fn expand(&mut self, partial: &[(VarId, bool)]) {
        let specified: std::collections::HashMap<VarId, bool> = partial.iter().copied().collect();
        let free: Vec<VarId> = (0..self.num_vars)
            .filter(|v| !specified.contains_key(v))
            .collect();
        let combos: usize = 1usize
            .checked_shl(u32::try_from(free.len()).unwrap_or(u32::MAX))
            .expect("too many don't-care variables to expand");
        for bits in 0..combos {
            let mut a = vec![false; self.num_vars as usize];
            for (&v, value) in &specified {
                a[v as usize] = *value;
            }
            for (i, &v) in free.iter().enumerate() {
                a[v as usize] = (bits >> i) & 1 == 1;
            }
            self.pending.push(a);
        }
    }
}

const _: () = {
    // The terminal sentinel must sort above every real variable id so that
    // `top_var3` works without special-casing constants.
    assert!(TERMINAL_VAR == u32::MAX);
};
