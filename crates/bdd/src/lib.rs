//! Reduced ordered binary decision diagrams (ROBDDs), built from scratch.
//!
//! This crate is the symbolic-analysis substrate for the `asyncsynth`
//! workspace (DAC'98 *Asynchronous Interface Specification, Analysis and
//! Synthesis* reproduction). Section 2.2 of the paper relies on
//! "Symbolic Binary Decision Diagram-based traversal of a reachability
//! graph"; this crate provides the BDD package that traversal is built on.
//!
//! The design is a classic hash-consed unique table with a memoizing
//! if-then-else (ITE) operator, in the style of Brace/Rudell/Bryant:
//!
//! * [`Manager`] owns the node table and caches,
//! * [`Bdd`] is a lightweight handle (index) into a manager,
//! * all boolean connectives, quantification, substitution and
//!   satisfying-assignment enumeration are methods on [`Manager`].
//!
//! # Example
//!
//! ```
//! use bdd::Manager;
//!
//! let mut m = Manager::new();
//! let a = m.var(0);
//! let b = m.var(1);
//! let f = m.and(a, b);
//! let g = m.or(a, b);
//! let h = m.implies(f, g); // (a & b) -> (a | b) is a tautology
//! assert_eq!(h, Manager::one());
//! assert_eq!(m.sat_count(f, 2), 1);
//! ```

mod manager;
mod ops;

pub use manager::{Bdd, Manager, VarId};
pub use ops::SatAssignments;

#[cfg(test)]
mod tests;
