//! The BDD node store: unique table, node layout and handle types.

use std::collections::HashMap;
use std::fmt;

/// Index of a boolean variable in the manager's (fixed) variable order.
///
/// Variables are ordered by their numeric id: smaller ids appear closer to
/// the root of every diagram.
pub type VarId = u32;

/// A handle to a BDD node owned by a [`Manager`].
///
/// Handles are canonical: two handles compare equal **iff** they denote the
/// same boolean function (within one manager). They are `Copy` and cheap to
/// pass around; all operations live on the [`Manager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// Returns `true` if this is the constant-false diagram.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this is the constant-true diagram.
    #[must_use]
    pub fn is_one(self) -> bool {
        self.0 == 1
    }

    /// Returns `true` if this is either constant.
    #[must_use]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Raw index of the node inside its manager (useful for debugging and
    /// for external memo tables keyed by node).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "⊥"),
            1 => write!(f, "⊤"),
            i => write!(f, "bdd#{i}"),
        }
    }
}

/// Internal node: decision on `var`, with `lo` = cofactor for var=0 and
/// `hi` = cofactor for var=1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: VarId,
    pub lo: Bdd,
    pub hi: Bdd,
}

/// Sentinel variable id used for the terminal nodes (larger than any real
/// variable, so terminals sort below all decisions).
pub(crate) const TERMINAL_VAR: VarId = u32::MAX;

/// Key for the memoizing ITE cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct IteKey(pub Bdd, pub Bdd, pub Bdd);

/// Allocation statistics for one [`Manager`], see [`Manager::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManagerStats {
    /// Nodes currently allocated (including the two terminals).
    pub nodes: usize,
    /// Peak node count over the manager's lifetime. Managers never
    /// garbage-collect, so this currently equals `nodes`.
    pub peak_nodes: usize,
    /// Highest variable id ever used, plus one.
    pub num_vars: u32,
    /// Entries in the ITE memo cache.
    pub ite_cache_entries: usize,
    /// Entries in the quantification memo cache.
    pub quant_cache_entries: usize,
}

/// A BDD manager: owns nodes, guarantees canonicity, implements all
/// operations.
///
/// Nodes are never garbage collected; for the workloads in this workspace
/// (state graphs of interface controllers, invariant checks) peak live size
/// is small and determinism is more valuable than reclamation.
///
/// # Example
///
/// ```
/// use bdd::Manager;
/// let mut m = Manager::new();
/// let x = m.var(3);
/// let nx = m.not(x);
/// assert_eq!(m.or(x, nx), Manager::one());
/// ```
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    pub(crate) ite_cache: HashMap<IteKey, Bdd>,
    pub(crate) quant_cache: HashMap<(Bdd, u64, bool), Bdd>,
    pub(crate) num_vars: u32,
}

impl fmt::Debug for Manager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Manager")
            .field("nodes", &self.nodes.len())
            .field("num_vars", &self.num_vars)
            .finish()
    }
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates an empty manager containing only the two terminal nodes.
    #[must_use]
    pub fn new() -> Self {
        let mut m = Manager {
            nodes: Vec::with_capacity(1024),
            unique: HashMap::with_capacity(1024),
            ite_cache: HashMap::with_capacity(1024),
            quant_cache: HashMap::new(),
            num_vars: 0,
        };
        // Index 0: constant false. Index 1: constant true.
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: Bdd(0),
            hi: Bdd(0),
        });
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: Bdd(1),
            hi: Bdd(1),
        });
        m
    }

    /// The constant-false diagram. Does not need a manager.
    #[must_use]
    pub const fn zero() -> Bdd {
        Bdd(0)
    }

    /// The constant-true diagram. Does not need a manager.
    #[must_use]
    pub const fn one() -> Bdd {
        Bdd(1)
    }

    /// Number of nodes currently allocated (including the two terminals).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A snapshot of the manager's allocation state. Nodes are never
    /// garbage collected, so `peak_nodes == nodes` today; the field
    /// exists so callers pinning memory baselines keep working if
    /// reclamation ever lands.
    #[must_use]
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            nodes: self.nodes.len(),
            peak_nodes: self.nodes.len(),
            num_vars: self.num_vars,
            ite_cache_entries: self.ite_cache.len(),
            quant_cache_entries: self.quant_cache.len(),
        }
    }

    /// Highest variable id ever used, plus one.
    #[must_use]
    pub fn var_count(&self) -> u32 {
        self.num_vars
    }

    /// The diagram for the single variable `v`.
    pub fn var(&mut self, v: VarId) -> Bdd {
        self.mk(v, Bdd(0), Bdd(1))
    }

    /// The diagram for the negated variable `v` (`¬v`).
    pub fn nvar(&mut self, v: VarId) -> Bdd {
        self.mk(v, Bdd(1), Bdd(0))
    }

    /// A literal: the variable `v` if `positive`, else its negation.
    pub fn literal(&mut self, v: VarId, positive: bool) -> Bdd {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// Constant diagram for a boolean.
    #[must_use]
    pub fn constant(value: bool) -> Bdd {
        if value {
            Self::one()
        } else {
            Self::zero()
        }
    }

    /// Find-or-create a node `(var, lo, hi)` applying the two ROBDD
    /// reduction rules (no redundant tests, no duplicate nodes).
    pub(crate) fn mk(&mut self, var: VarId, lo: Bdd, hi: Bdd) -> Bdd {
        debug_assert!(var != TERMINAL_VAR);
        if lo == hi {
            return lo;
        }
        if var >= self.num_vars {
            self.num_vars = var + 1;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = Bdd(u32::try_from(self.nodes.len()).expect("bdd node table overflow"));
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    pub(crate) fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    /// The decision variable at the root of `b`, or `None` for constants.
    #[must_use]
    pub fn root_var(&self, b: Bdd) -> Option<VarId> {
        if b.is_const() {
            None
        } else {
            Some(self.node(b).var)
        }
    }

    /// Low (`var = 0`) cofactor of the root node.
    ///
    /// # Panics
    ///
    /// Panics if `b` is a constant.
    #[must_use]
    pub fn low(&self, b: Bdd) -> Bdd {
        assert!(!b.is_const(), "constants have no cofactors");
        self.node(b).lo
    }

    /// High (`var = 1`) cofactor of the root node.
    ///
    /// # Panics
    ///
    /// Panics if `b` is a constant.
    #[must_use]
    pub fn high(&self, b: Bdd) -> Bdd {
        assert!(!b.is_const(), "constants have no cofactors");
        self.node(b).hi
    }

    /// Drops the operation caches (the unique table is kept, so canonicity
    /// is unaffected). Useful between unrelated workloads to bound memory.
    pub fn clear_caches(&mut self) {
        self.ite_cache.clear();
        self.quant_cache.clear();
    }
}
