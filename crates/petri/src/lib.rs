//! Petri-net kernel for asynchronous interface design.
//!
//! Implements the Petri-net substrate of the DAC'98 tutorial
//! *Asynchronous Interface Specification, Analysis and Synthesis*
//! (Kishinevsky, Cortadella, Kondratyev, Lavagno):
//!
//! * [`PetriNet`] — places, transitions, arcs, markings and the token game
//!   (§1.1–1.3 of the paper);
//! * [`reach`] — explicit reachability-graph generation (§1.4);
//! * [`ts`] — labelled transition systems, the common state-graph shape;
//! * [`invariant`] — P/T-invariants and state-machine components via
//!   Farkas-style elimination (§2.2, Fig. 6);
//! * [`reduce`] — linear structural reductions (§2.2, Fig. 6);
//! * [`classify`] — marked-graph / state-machine / free-choice tests
//!   (§1.1, §1.5);
//! * [`unfold`] — McMillan finite complete prefixes and ordering relations
//!   (§2.2);
//! * [`symbolic`] — BDD-based symbolic traversal and invariant-based
//!   upper approximations of the reachability set (§2.2);
//! * [`generators`] — scalable synthetic nets (pipelines, choice rings)
//!   used by the benchmark harness.
//!
//! # Example: the token game
//!
//! ```
//! use petri::PetriNet;
//!
//! let mut net = PetriNet::new();
//! let p0 = net.add_place("p0", 1);
//! let p1 = net.add_place("p1", 0);
//! let t = net.add_transition("t");
//! net.add_arc_place_to_transition(p0, t);
//! net.add_arc_transition_to_place(t, p1);
//!
//! let m0 = net.initial_marking();
//! assert!(net.is_enabled(&m0, t));
//! let m1 = net.fire(&m0, t).expect("enabled");
//! assert_eq!(m1.tokens(p1), 1);
//! assert!(!net.is_enabled(&m1, t));
//! ```

pub mod classify;
pub mod generators;
pub mod invariant;
mod marking;
mod net;
pub mod reach;
pub mod reduce;
pub mod symbolic;
pub mod ts;
pub mod unfold;

pub use marking::Marking;
pub use net::{PetriNet, PlaceId, TransitionId};
pub use reach::ReachabilityGraph;
pub use ts::TransitionSystem;

#[cfg(test)]
mod tests;
