//! BDD-based symbolic traversal of safe nets (§2.2).
//!
//! *"Symbolic BDD-based traversal of a reachability graph allows its
//! implicit representation which is generally much more compact than an
//! explicit enumeration of states... starting from the initial marking by
//! iterative application of the transition function the characteristic
//! function of the reachability set is calculated until the fixed point is
//! reached."*
//!
//! Encoding: one current-state variable and one next-state variable per
//! place, interleaved (`place i` ↦ current `2i`, next `2i+1`) — the
//! classic ordering that keeps transition relations small.

use bdd::{Bdd, Manager, VarId};

use crate::invariant::{place_invariants, PlaceInvariant};
use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId};

/// Result of a symbolic reachability run.
#[derive(Debug)]
pub struct SymbolicReachability {
    /// The BDD manager holding the characteristic function.
    pub manager: Manager,
    /// Characteristic function of the reachable markings, over the
    /// current-state variables.
    pub reached: Bdd,
    /// Number of reachable markings.
    pub num_markings: u128,
    /// Number of image-computation iterations until the fixed point.
    pub iterations: usize,
}

/// Result of a symbolic reachability run inside a caller-owned manager
/// (see [`symbolic_reachability_bounded_in`]): the same artifacts as
/// [`SymbolicReachability`] minus the manager itself.
#[derive(Debug, Clone, Copy)]
pub struct SymbolicRun {
    /// Characteristic function of the reachable markings, over the
    /// current-state variables.
    pub reached: Bdd,
    /// Number of reachable markings.
    pub num_markings: u128,
    /// Number of image-computation iterations until the fixed point.
    pub iterations: usize,
}

fn cur_var(p: PlaceId) -> VarId {
    2 * p.0
}

fn next_var(p: PlaceId) -> VarId {
    2 * p.0 + 1
}

/// The current-state BDD variable of a place. Part of the public encoding
/// contract so other crates (e.g. the symbolic state-space backend in
/// `stg`) can decode satisfying assignments of [`SymbolicReachability::reached`].
#[must_use]
pub fn current_var(p: PlaceId) -> VarId {
    cur_var(p)
}

/// The next-state BDD variable of a place (see [`current_var`]).
#[must_use]
pub fn next_state_var(p: PlaceId) -> VarId {
    next_var(p)
}

/// Computes the reachability set of a safe net symbolically.
///
/// Builds one transition relation per net transition (enabling conjunction
/// over the preset, token moves, frame condition for untouched places) and
/// iterates image computation to a fixed point.
///
/// The net must be safe; markings that would exceed one token per place
/// cannot be represented and simply do not occur in safe nets (firing a
/// transition with a marked output place that stays marked is excluded by
/// the frame/enabling encoding — callers should validate safeness
/// explicitly with the explicit checker when in doubt).
#[must_use]
pub fn symbolic_reachability(net: &PetriNet) -> SymbolicReachability {
    symbolic_reachability_bounded(net, u128::MAX).expect("unbounded call cannot hit the limit")
}

/// [`symbolic_reachability`] with a marking-count limit checked after
/// every image iteration, so state-exploding nets abort mid-traversal
/// instead of paying the full fixed point (mirrors the explicit
/// builder's mid-BFS cutoff).
///
/// # Errors
///
/// [`crate::reach::ReachError::StateLimit`] when the reached set exceeds
/// `max_markings` at any iteration.
pub fn symbolic_reachability_bounded(
    net: &PetriNet,
    max_markings: u128,
) -> Result<SymbolicReachability, crate::reach::ReachError> {
    let mut m = Manager::new();
    let run = symbolic_reachability_bounded_in(&mut m, net, max_markings)?;
    Ok(SymbolicReachability {
        manager: m,
        reached: run.reached,
        num_markings: run.num_markings,
        iterations: run.iterations,
    })
}

/// [`symbolic_reachability_bounded`] inside a caller-owned BDD manager,
/// so repeated traversals of structurally similar nets (e.g. the CSC
/// candidate sweep, where every candidate shares the base net's places)
/// reuse the manager's unique table and operation caches instead of
/// rebuilding every relation node from scratch.
///
/// The caller must only reuse a manager across nets with the **same
/// place count** — the variable universe is `2 × places` and marking
/// counts divide by it (`stg::BuildContext` enforces this).
///
/// # Errors
///
/// See [`symbolic_reachability_bounded`].
pub fn symbolic_reachability_bounded_in(
    m: &mut Manager,
    net: &PetriNet,
    max_markings: u128,
) -> Result<SymbolicRun, crate::reach::ReachError> {
    // Touch all variables to fix the universe.
    for p in net.places() {
        m.var(cur_var(p));
        m.var(next_var(p));
    }
    let cur_vars: Vec<VarId> = net.places().map(cur_var).collect();
    let next_vars: Vec<VarId> = net.places().map(next_var).collect();

    // Transition relations.
    let mut relations: Vec<Bdd> = Vec::with_capacity(net.num_transitions());
    for t in net.transitions() {
        let mut rel = Manager::one();
        let pre = net.preset(t);
        let post = net.postset(t);
        for p in net.places() {
            let in_pre = pre.contains(&p);
            let in_post = post.contains(&p);
            let c = m.var(cur_var(p));
            let n = m.var(next_var(p));
            let clause = match (in_pre, in_post) {
                // Consumed only: was 1, becomes 0.
                (true, false) => {
                    let nn = m.not(n);
                    m.and(c, nn)
                }
                // Produced only: becomes 1; safeness requires it was 0.
                (false, true) => {
                    let nc = m.not(c);
                    m.and(nc, n)
                }
                // Self-loop: stays 1.
                (true, true) => m.and(c, n),
                // Untouched: frame condition.
                (false, false) => m.iff(c, n),
            };
            rel = m.and(rel, clause);
        }
        relations.push(rel);
    }

    // Initial marking.
    let m0 = net.initial_marking();
    let literals: Vec<(VarId, bool)> = net
        .places()
        .map(|p| (cur_var(p), m0.is_marked(p)))
        .collect();
    let init = m.cube(&literals);

    // Fixed point.
    let mut reached = init;
    let mut frontier = init;
    let mut iterations = 0usize;
    let count_markings = |m: &mut Manager, reached: Bdd| {
        // Count over current variables only: quantify out next vars first.
        let only_cur = m.exists(reached, &next_vars);
        let total = m.sat_count(only_cur, m.var_count());
        total >> next_vars.len()
    };
    while !frontier.is_zero() {
        iterations += 1;
        let mut image_next = Manager::zero();
        for &rel in &relations {
            let img = m.and_exists(frontier, rel, &cur_vars);
            image_next = m.or(image_next, img);
        }
        let image = m.rename(image_next, &next_vars, &cur_vars);
        frontier = m.diff(image, reached);
        reached = m.or(reached, frontier);
        if max_markings < u128::MAX && count_markings(&mut *m, reached) > max_markings {
            let limit = usize::try_from(max_markings).unwrap_or(usize::MAX);
            return Err(crate::reach::ReachError::StateLimit(limit));
        }
    }

    let num_markings = count_markings(&mut *m, reached);
    Ok(SymbolicRun {
        reached,
        num_markings,
        iterations,
    })
}

/// Symbolic safeness check over an already-computed reachability set.
///
/// The symbolic transition encoding *excludes* token-accumulating firings
/// (a produced place must have been empty), so on an unsafe net
/// [`symbolic_reachability`] silently computes only the safe fragment.
/// This check closes the gap: it looks for a reached marking that enables
/// a transition while one of its pure output places is already marked —
/// the firing that would put two tokens on that place. Along any real
/// firing sequence the marking *before* the first unsafe firing lies in
/// the safe fragment, so an unsafe net always yields a witness.
///
/// Returns the offending (two-token) successor marking, mirroring the
/// explicit checker's bound-violation report.
#[must_use]
pub fn unsafe_witness(net: &PetriNet, sym: &mut SymbolicReachability) -> Option<Marking> {
    let reached = sym.reached;
    unsafe_witness_in(net, &mut sym.manager, reached)
}

/// [`unsafe_witness`] over a caller-owned manager (the shared-manager
/// counterpart used with [`symbolic_reachability_bounded_in`]).
#[must_use]
pub fn unsafe_witness_in(net: &PetriNet, manager: &mut Manager, reached: Bdd) -> Option<Marking> {
    for t in net.transitions() {
        let pre = net.preset(t).to_vec();
        let post = net.postset(t).to_vec();
        let m = &mut *manager;
        let mut enabled = reached;
        for &p in &pre {
            let v = m.var(cur_var(p));
            enabled = m.and(enabled, v);
        }
        for &p in &post {
            if pre.contains(&p) {
                continue;
            }
            let pv = m.var(cur_var(p));
            let clash = m.and(enabled, pv);
            if clash.is_zero() {
                continue;
            }
            let asg = m
                .any_sat(clash, m.var_count())
                .expect("non-zero BDD is satisfiable");
            let counts: Vec<u32> = net
                .places()
                .map(|q| u32::from(asg[cur_var(q) as usize]))
                .collect();
            let before = Marking::from_counts(counts);
            let after = net
                .fire(&before, t)
                .expect("witness enables the transition");
            return Some(after);
        }
    }
    None
}

/// The invariant-based *upper approximation* of the reachability set
/// (§2.2: *"a conjunction of any set of invariants gives an upper
/// approximation of the reachability set, which is useful for conservative
/// verification"*).
///
/// Returns the characteristic BDD over current-state variables and the
/// number of markings it admits.
#[must_use]
pub fn invariant_approximation(net: &PetriNet) -> (Manager, Bdd, u128) {
    let invariants = place_invariants(net);
    let mut m = Manager::new();
    for p in net.places() {
        m.var(cur_var(p));
    }
    let mut approx = Manager::one();
    for inv in &invariants {
        let constraint = token_sum_equals(&mut m, net, inv);
        approx = m.and(approx, constraint);
    }
    // Count over place variables only (universe has only cur vars here,
    // spaced every 2; normalise by quantifying nothing — vars 2i+1 were
    // never created, so var_count is 2·n−1; count over all and divide).
    let count = count_over_places(&m, net, approx);
    (m, approx, count)
}

/// Number of satisfying place-assignments of `f` (ignoring gaps in the
/// variable numbering).
#[must_use]
pub fn count_over_places(m: &Manager, net: &PetriNet, f: Bdd) -> u128 {
    let total = m.sat_count(f, m.var_count());
    let used: u32 = u32::try_from(net.num_places()).expect("place count fits u32");
    // var_count counts the dense range [0, max_var]; place vars are the
    // even ones. Divide out the unused odd slots.
    let unused = m.var_count() - used;
    total >> unused
}

/// Builds the constraint `Σ_{p ∈ support} m(p) = k` over the current-state
/// variables, for a binary-weight invariant; for general weights builds the
/// weighted equality by dynamic programming over partial sums.
fn token_sum_equals(m: &mut Manager, net: &PetriNet, inv: &PlaceInvariant) -> Bdd {
    let support: Vec<(PlaceId, u64)> = net
        .places()
        .filter(|p| inv.weights[p.index()] > 0)
        .map(|p| (p, inv.weights[p.index()]))
        .collect();
    let target = inv.token_count;
    // dp over (index, partial sum) → BDD for "rest sums to target−partial".
    fn rec(
        m: &mut Manager,
        support: &[(PlaceId, u64)],
        idx: usize,
        partial: u64,
        target: u64,
        memo: &mut std::collections::HashMap<(usize, u64), Bdd>,
    ) -> Bdd {
        if partial > target {
            return Manager::zero();
        }
        if idx == support.len() {
            return Manager::constant(partial == target);
        }
        if let Some(&b) = memo.get(&(idx, partial)) {
            return b;
        }
        let (p, w) = support[idx];
        let v = m.var(cur_var(p));
        let with = rec(m, support, idx + 1, partial + w, target, memo);
        let without = rec(m, support, idx + 1, partial, target, memo);
        let r = m.ite(v, with, without);
        memo.insert((idx, partial), r);
        r
    }
    let mut memo = std::collections::HashMap::new();
    rec(m, &support, 0, 0, target, &mut memo)
}

/// Verifies that the invariant approximation contains the exact reachable
/// set, and reports both counts (`(exact, approx)`), for ablation A3.
#[must_use]
pub fn compare_exact_vs_approximation(net: &PetriNet) -> (u128, u128, bool) {
    let exact = symbolic_reachability(net);
    let (am, approx, approx_count) = invariant_approximation(net);
    // Containment is validated through explicit reachability: every
    // explicitly reachable marking must satisfy the approximation.
    let contained = match crate::reach::ReachabilityGraph::build(net) {
        Ok(rg) => rg.markings().iter().all(|mk| {
            let mut asg = vec![false; am.var_count() as usize];
            for p in net.places() {
                if mk.is_marked(p) {
                    asg[cur_var(p) as usize] = true;
                }
            }
            am.eval(approx, &asg)
        }),
        Err(_) => false,
    };
    (exact.num_markings, approx_count, contained)
}
