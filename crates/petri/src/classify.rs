//! Structural net classes: marked graphs, state machines, free choice
//! (§1.1: *"Marked Graph – a simple class of Petri nets, in which only
//! concurrency and sequencing, but not choice is allowed"*; §1.5: choice
//! places).

use crate::net::{PetriNet, PlaceId};

/// Structural class report for a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetClass {
    /// Every place has at most one consumer and one producer.
    pub marked_graph: bool,
    /// Every transition has exactly one input and one output place.
    pub state_machine: bool,
    /// Conflicts are free-choice: transitions sharing an input place have
    /// identical presets.
    pub free_choice: bool,
}

/// `true` if every place has at most one input and one output transition.
#[must_use]
pub fn is_marked_graph(net: &PetriNet) -> bool {
    net.places()
        .all(|p| net.place_preset(p).len() <= 1 && net.place_postset(p).len() <= 1)
}

/// `true` if every transition has exactly one input and one output place.
#[must_use]
pub fn is_state_machine(net: &PetriNet) -> bool {
    net.transitions()
        .all(|t| net.preset(t).len() == 1 && net.postset(t).len() == 1)
}

/// `true` if the net is (extended) free choice: any two transitions that
/// share an input place have equal presets, so choice is never influenced
/// by the rest of the state.
#[must_use]
pub fn is_free_choice(net: &PetriNet) -> bool {
    let mut transitions: Vec<_> = net.transitions().collect();
    transitions.sort_unstable();
    for (i, &t1) in transitions.iter().enumerate() {
        for &t2 in &transitions[i + 1..] {
            if net.in_structural_conflict(t1, t2) {
                let mut pre1: Vec<PlaceId> = net.preset(t1).to_vec();
                let mut pre2: Vec<PlaceId> = net.preset(t2).to_vec();
                pre1.sort_unstable();
                pre2.sort_unstable();
                if pre1 != pre2 {
                    return false;
                }
            }
        }
    }
    true
}

/// The *choice places*: places with more than one consumer (§1.5, the
/// places `p0` and `p3` in Fig. 5).
#[must_use]
pub fn choice_places(net: &PetriNet) -> Vec<PlaceId> {
    net.places()
        .filter(|&p| net.place_postset(p).len() > 1)
        .collect()
}

/// The *merge places*: places with more than one producer (Fig. 5's `p1`
/// and `p2`, merging alternative branches).
#[must_use]
pub fn merge_places(net: &PetriNet) -> Vec<PlaceId> {
    net.places()
        .filter(|&p| net.place_preset(p).len() > 1)
        .collect()
}

/// Full structural classification.
#[must_use]
pub fn classify(net: &PetriNet) -> NetClass {
    NetClass {
        marked_graph: is_marked_graph(net),
        state_machine: is_state_machine(net),
        free_choice: is_free_choice(net),
    }
}
