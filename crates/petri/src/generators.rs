//! Scalable synthetic nets for benchmarks and property tests.

use crate::net::{PetriNet, PlaceId, TransitionId};

/// A cyclic `n`-stage pipeline marked graph: transitions `t0..t{n-1}` in a
/// ring, one place between consecutive stages, with a token in the place
/// before `t0`. Models a self-timed FIFO control ring.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn pipeline(n: usize) -> PetriNet {
    assert!(n > 0);
    let mut net = PetriNet::new();
    let ts: Vec<TransitionId> = (0..n)
        .map(|i| net.add_transition(format!("t{i}")))
        .collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let p = net.add_place(format!("p{i}"), u32::from(i == n - 1));
        net.add_arc_transition_to_place(ts[i], p);
        net.add_arc_place_to_transition(p, ts[j]);
    }
    net
}

/// A *k*-token `n`-stage pipeline ring: like [`pipeline`] but with `k`
/// stages initially full, giving `C(n,k)`-sized state spaces — the
/// workload of the explicit-vs-symbolic ablation (A1).
///
/// Each stage `i` has a "full" place `fi` and an "empty" place `ei`
/// (capacity modelling keeps the net safe for every `k`).
///
/// # Panics
///
/// Panics if `n == 0` or `k > n`.
#[must_use]
pub fn pipeline_with_tokens(n: usize, k: usize) -> PetriNet {
    assert!(n > 0 && k <= n);
    let mut net = PetriNet::new();
    let ts: Vec<TransitionId> = (0..n)
        .map(|i| net.add_transition(format!("t{i}")))
        .collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let full = net.add_place(format!("f{i}"), u32::from(i < k));
        let empty = net.add_place(format!("e{i}"), u32::from(i >= k));
        // t_i consumes f_i (data leaves stage i) and produces f_{i+1}'s
        // token via the ring, constrained by e_{i+1} being empty.
        net.add_arc_place_to_transition(full, ts[j]);
        net.add_arc_transition_to_place(ts[j], empty);
        net.add_arc_place_to_transition(empty, ts[i]);
        net.add_arc_transition_to_place(ts[i], full);
    }
    net
}

/// A free-choice "dispatcher": one choice place fans out to `n` alternative
/// handlers which merge back — the choice/merge shape of Fig. 5 scaled up.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn choice_ring(n: usize) -> PetriNet {
    assert!(n > 0);
    let mut net = PetriNet::new();
    let start = net.add_place("choice", 1);
    let merge = net.add_place("merge", 0);
    for i in 0..n {
        let req = net.add_transition(format!("req{i}"));
        let ack = net.add_transition(format!("ack{i}"));
        net.add_arc_place_to_transition(start, req);
        let mid = net.add_place(format!("busy{i}"), 0);
        net.add_arc_transition_to_place(req, mid);
        net.add_arc_place_to_transition(mid, ack);
        net.add_arc_transition_to_place(ack, merge);
    }
    let reset = net.add_transition("reset");
    net.add_arc_place_to_transition(merge, reset);
    net.add_arc_transition_to_place(reset, start);
    net
}

/// `m` independent 2-phase handshake cells side by side: `2^m`-state
/// reachability graph but a linear-size unfolding — the A2 workload.
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn parallel_handshakes(m: usize) -> PetriNet {
    assert!(m > 0);
    let mut net = PetriNet::new();
    for i in 0..m {
        let idle = net.add_place(format!("idle{i}"), 1);
        let busy = net.add_place(format!("busy{i}"), 0);
        let req = net.add_transition(format!("req{i}"));
        let ack = net.add_transition(format!("ack{i}"));
        net.add_arc_place_to_transition(idle, req);
        net.add_arc_transition_to_place(req, busy);
        net.add_arc_place_to_transition(busy, ack);
        net.add_arc_transition_to_place(ack, idle);
    }
    net
}

/// A random connected safe net, for property tests: starts from a pipeline
/// ring (always live and safe) and adds `extra` random forward arcs that
/// preserve safeness by construction (each added place is a handshake pair
/// between two existing transitions).
///
/// **Seed stability**: the same `(n, extra, seed)` triple produces a
/// structurally identical net — same places, transitions, arcs and
/// marking, in the same order — on every run and platform. Randomness
/// comes from a fixed 64-bit LCG (not `rand`, not hasher state), and the
/// draw `(state >> 33) % bound` fits in 31 bits, so the `as usize` cast is
/// lossless even on 32-bit targets. Corpus entries derived from this
/// generator are therefore reproducible ledger subjects.
#[must_use]
pub fn random_safe_net(n: usize, extra: usize, seed: u64) -> PetriNet {
    let mut net = pipeline(n.max(2));
    // Simple deterministic LCG so the crate does not depend on `rand`.
    let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    let mut next = |bound: usize| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // The shifted value occupies at most 31 bits: platform-independent.
        ((state >> 33) as usize) % bound
    };
    let ts: Vec<TransitionId> = net.transitions().collect();
    for k in 0..extra {
        let a = ts[next(ts.len())];
        let b = ts[next(ts.len())];
        if a == b {
            continue;
        }
        // Handshake pair: a→p→b and b→q→a with one token on q; the cycle
        // keeps both places safe.
        let p: PlaceId = net.add_place(format!("x{k}"), 0);
        let q: PlaceId = net.add_place(format!("y{k}"), 1);
        net.add_arc_transition_to_place(a, p);
        net.add_arc_place_to_transition(p, b);
        net.add_arc_transition_to_place(b, q);
        net.add_arc_place_to_transition(q, a);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::random_safe_net;

    /// Pinned renderings: if the LCG constants, draw scheme or build order
    /// of [`random_safe_net`] ever change, these digests move and every
    /// ledger entry derived from the generator silently re-keys. The
    /// expected values were produced by this implementation and act as a
    /// cross-run, cross-platform regression anchor.
    #[test]
    fn random_safe_net_is_seed_stable() {
        for seed in [0, 1, 7, 0xDEAD_BEEF_u64] {
            let a = random_safe_net(5, 8, seed);
            let b = random_safe_net(5, 8, seed);
            assert_eq!(a.describe(), b.describe(), "seed {seed} not stable");
        }
        // Different seeds should (for these parameters) disagree.
        assert_ne!(
            random_safe_net(5, 8, 1).describe(),
            random_safe_net(5, 8, 2).describe()
        );
        // One explicit structural pin: transition/place counts are a
        // function of (n, extra) minus self-loop skips, which depend only
        // on the deterministic draw sequence.
        let net = random_safe_net(4, 6, 42);
        assert_eq!(net.num_transitions(), 4);
        assert!(net.num_places() >= 4 && net.num_places() <= 4 + 2 * 6);
    }
}
