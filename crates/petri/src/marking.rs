//! Markings: token distributions over the places of a net.

use std::fmt;

use crate::net::PlaceId;

/// A marking: a token count per place (§1.1 — "a set of all places
/// currently marked with a token corresponds to a current global state").
///
/// Counts are kept exactly (not clamped to 1) so that safeness violations
/// surface during reachability analysis instead of being masked.
///
/// # Example
///
/// ```
/// use petri::{Marking, PetriNet};
/// let mut net = PetriNet::new();
/// let p = net.add_place("p", 1);
/// let m = net.initial_marking();
/// assert_eq!(m.tokens(p), 1);
/// assert!(m.is_safe());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Marking {
    counts: Vec<u32>,
}

impl Marking {
    /// A marking with the given per-place counts.
    #[must_use]
    pub fn from_counts(counts: Vec<u32>) -> Self {
        Marking { counts }
    }

    /// The empty marking over `n` places.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Marking { counts: vec![0; n] }
    }

    /// Builds a safe marking from the set of marked places.
    #[must_use]
    pub fn from_marked_places(n: usize, marked: &[PlaceId]) -> Self {
        let mut counts = vec![0; n];
        for p in marked {
            counts[p.index()] = 1;
        }
        Marking { counts }
    }

    /// Number of places.
    #[must_use]
    pub fn num_places(&self) -> usize {
        self.counts.len()
    }

    /// Token count at a place.
    ///
    /// # Panics
    ///
    /// Panics if the place is out of range.
    #[must_use]
    pub fn tokens(&self, p: PlaceId) -> u32 {
        self.counts[p.index()]
    }

    /// `true` if the place holds at least one token.
    #[must_use]
    pub fn is_marked(&self, p: PlaceId) -> bool {
        self.tokens(p) > 0
    }

    /// Adds one token to a place.
    pub fn add_token(&mut self, p: PlaceId) {
        self.counts[p.index()] += 1;
    }

    /// Removes one token from a place.
    ///
    /// # Panics
    ///
    /// Panics if the place is empty (the caller must check enabledness).
    pub fn remove_token(&mut self, p: PlaceId) {
        assert!(
            self.counts[p.index()] > 0,
            "removing token from empty place"
        );
        self.counts[p.index()] -= 1;
    }

    /// `true` if no place holds more than one token (1-boundedness of this
    /// particular marking).
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.counts.iter().all(|&c| c <= 1)
    }

    /// `true` if no place holds more than `k` tokens.
    #[must_use]
    pub fn is_k_bounded(&self, k: u32) -> bool {
        self.counts.iter().all(|&c| c <= k)
    }

    /// Total number of tokens.
    #[must_use]
    pub fn total_tokens(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// The set of marked places (ascending).
    #[must_use]
    pub fn marked_places(&self) -> Vec<PlaceId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| PlaceId(i as u32))
            .collect()
    }

    /// Raw counts.
    #[must_use]
    pub fn as_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Extends the marking with extra (empty) places, for nets that grew.
    pub fn grow(&mut self, new_len: usize) {
        assert!(new_len >= self.counts.len());
        self.counts.resize(new_len, 0);
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                if c == 1 {
                    format!("p{i}")
                } else {
                    format!("p{i}×{c}")
                }
            })
            .collect();
        write!(f, "{{{}}}", parts.join(","))
    }
}
