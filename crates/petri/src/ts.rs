//! Labelled transition systems — the abstract state-graph shape shared by
//! reachability graphs, state graphs and circuit state spaces (§1.4).

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

/// A finite labelled transition system with a designated initial state.
///
/// States are dense indices `0..num_states()`; labels are any hashable
/// type (transition ids for reachability graphs, signal transitions for
/// state graphs).
///
/// # Example
///
/// ```
/// use petri::TransitionSystem;
/// let mut ts = TransitionSystem::new(2, 0);
/// ts.add_arc(0, "a", 1);
/// ts.add_arc(1, "b", 0);
/// assert_eq!(ts.successors(0).count(), 1);
/// assert!(ts.is_deterministic());
/// ```
#[derive(Debug, Clone)]
pub struct TransitionSystem<L> {
    num_states: usize,
    initial: usize,
    arcs: Vec<(usize, L, usize)>,
    /// Outgoing arc indices per state.
    out: Vec<Vec<usize>>,
}

impl<L: Clone + Eq + Hash> TransitionSystem<L> {
    /// Creates a system with `num_states` states and no arcs.
    ///
    /// # Panics
    ///
    /// Panics if `initial >= num_states` (unless both are zero).
    #[must_use]
    pub fn new(num_states: usize, initial: usize) -> Self {
        assert!(initial < num_states || num_states == 0);
        TransitionSystem {
            num_states,
            initial,
            arcs: Vec::new(),
            out: vec![Vec::new(); num_states],
        }
    }

    /// Adds a state, returning its index.
    pub fn add_state(&mut self) -> usize {
        self.out.push(Vec::new());
        self.num_states += 1;
        self.num_states - 1
    }

    /// Adds an arc `from --label--> to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_arc(&mut self, from: usize, label: L, to: usize) {
        assert!(from < self.num_states && to < self.num_states);
        let idx = self.arcs.len();
        self.arcs.push((from, label, to));
        self.out[from].push(idx);
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of arcs.
    #[must_use]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// All arcs as `(from, label, to)` triples.
    #[must_use]
    pub fn arcs(&self) -> &[(usize, L, usize)] {
        &self.arcs
    }

    /// Outgoing arcs of a state as `(label, target)` pairs.
    pub fn successors(&self, state: usize) -> impl Iterator<Item = (&L, usize)> + '_ {
        self.out[state].iter().map(move |&i| {
            let (_, ref l, to) = self.arcs[i];
            (l, to)
        })
    }

    /// The target of the `label` arc out of `state`, if exactly one exists.
    #[must_use]
    pub fn successor_by_label(&self, state: usize, label: &L) -> Option<usize> {
        let mut found = None;
        for (l, to) in self.successors(state) {
            if l == label {
                if found.is_some() {
                    return None;
                }
                found = Some(to);
            }
        }
        found
    }

    /// Labels enabled (outgoing) at a state, deduplicated.
    #[must_use]
    pub fn enabled_labels(&self, state: usize) -> Vec<L> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (l, _) in self.successors(state) {
            if seen.insert(l.clone()) {
                out.push(l.clone());
            }
        }
        out
    }

    /// `true` if no state has two outgoing arcs with the same label.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        for s in 0..self.num_states {
            let mut seen = HashSet::new();
            for (l, _) in self.successors(s) {
                if !seen.insert(l.clone()) {
                    return false;
                }
            }
        }
        true
    }

    /// States with no outgoing arcs (deadlocks).
    #[must_use]
    pub fn deadlocks(&self) -> Vec<usize> {
        (0..self.num_states)
            .filter(|&s| self.out[s].is_empty())
            .collect()
    }

    /// All states reachable from the initial state.
    #[must_use]
    pub fn reachable_states(&self) -> HashSet<usize> {
        let mut seen = HashSet::new();
        if self.num_states == 0 {
            return seen;
        }
        let mut queue = VecDeque::new();
        seen.insert(self.initial);
        queue.push_back(self.initial);
        while let Some(s) = queue.pop_front() {
            for (_, to) in self.successors(s) {
                if seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        seen
    }

    /// The set of labels occurring on any arc.
    #[must_use]
    pub fn alphabet(&self) -> HashSet<L> {
        self.arcs.iter().map(|(_, l, _)| l.clone()).collect()
    }

    /// Checks whether two deterministic systems accept the same language
    /// when viewed as automata with all states accepting, by a simultaneous
    /// walk. Returns `false` for nondeterministic inputs.
    ///
    /// Used to verify back-annotation (§4): the extracted PN's reachability
    /// graph must be trace-equivalent to the original state graph.
    #[must_use]
    pub fn trace_equivalent(&self, other: &TransitionSystem<L>) -> bool {
        if !self.is_deterministic() || !other.is_deterministic() {
            return false;
        }
        let mut visited: HashSet<(usize, usize)> = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((self.initial, other.initial));
        visited.insert((self.initial, other.initial));
        while let Some((a, b)) = queue.pop_front() {
            let la: HashSet<L> = self.enabled_labels(a).into_iter().collect();
            let lb: HashSet<L> = other.enabled_labels(b).into_iter().collect();
            if la != lb {
                return false;
            }
            for l in la {
                let na = self.successor_by_label(a, &l).expect("deterministic");
                let nb = other.successor_by_label(b, &l).expect("deterministic");
                if visited.insert((na, nb)) {
                    queue.push_back((na, nb));
                }
            }
        }
        true
    }

    /// Builds the system obtained by relabelling every arc.
    #[must_use]
    pub fn map_labels<M: Clone + Eq + Hash>(
        &self,
        mut f: impl FnMut(&L) -> M,
    ) -> TransitionSystem<M> {
        let mut ts = TransitionSystem::new(self.num_states, self.initial);
        for (from, l, to) in &self.arcs {
            ts.add_arc(*from, f(l), *to);
        }
        ts
    }

    /// Restriction to the reachable part, renumbering states densely.
    /// Returns the new system and the old→new state map.
    #[must_use]
    pub fn restrict_to_reachable(&self) -> (TransitionSystem<L>, HashMap<usize, usize>) {
        let reach = self.reachable_states();
        let mut order: Vec<usize> = reach.into_iter().collect();
        order.sort_unstable();
        let map: HashMap<usize, usize> = order
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let mut ts = TransitionSystem::new(order.len(), map[&self.initial]);
        for (from, l, to) in &self.arcs {
            if let (Some(&f), Some(&t)) = (map.get(from), map.get(to)) {
                ts.add_arc(f, l.clone(), t);
            }
        }
        (ts, map)
    }
}

impl<L: Clone + Eq + Hash + fmt::Display> TransitionSystem<L> {
    /// Multi-line rendering: one line per arc.
    #[must_use]
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "ts: {} states, {} arcs, initial s{}",
            self.num_states,
            self.arcs.len(),
            self.initial
        );
        for (from, l, to) in &self.arcs {
            let _ = writeln!(s, "  s{from} --{l}--> s{to}");
        }
        s
    }
}
