//! Unit and property tests for the Petri-net kernel.

use crate::classify::{choice_places, classify, is_free_choice, is_marked_graph};
use crate::generators;
use crate::invariant::{dense_encoding, place_invariants, sm_components, transition_invariants};
use crate::reach::{ReachError, ReachabilityGraph};
use crate::reduce::reduce_linear;
use crate::symbolic::{compare_exact_vs_approximation, symbolic_reachability};
use crate::unfold::{Ordering, Unfolding};
use crate::{Marking, PetriNet};

/// The two-transition producer/consumer net used across tests.
fn handshake() -> PetriNet {
    generators::parallel_handshakes(1)
}

#[test]
fn token_game_basics() {
    let mut net = PetriNet::new();
    let p0 = net.add_place("p0", 1);
    let p1 = net.add_place("p1", 0);
    let t = net.add_transition("t");
    net.add_arc_place_to_transition(p0, t);
    net.add_arc_transition_to_place(t, p1);
    let m0 = net.initial_marking();
    assert!(net.is_enabled(&m0, t));
    let m1 = net.fire(&m0, t).unwrap();
    assert_eq!(m1.tokens(p0), 0);
    assert_eq!(m1.tokens(p1), 1);
    assert!(net.fire(&m1, t).is_none());
}

#[test]
fn fire_sequence_reports_first_failure() {
    let net = generators::pipeline(3);
    let ts: Vec<_> = net.transitions().collect();
    let m0 = net.initial_marking();
    // t0 is enabled initially (token in p2 before t0).
    assert!(net.fire_sequence(&m0, &[ts[0], ts[1], ts[2]]).is_ok());
    assert_eq!(net.fire_sequence(&m0, &[ts[1]]).unwrap_err(), 0);
}

#[test]
fn marking_display_and_sets() {
    let net = handshake();
    let m0 = net.initial_marking();
    assert_eq!(m0.marked_places().len(), 1);
    assert!(m0.is_safe());
    assert_eq!(m0.total_tokens(), 1);
}

#[test]
fn reachability_of_pipeline() {
    // A 1-token ring of n stages has exactly n reachable markings.
    for n in 2..6 {
        let net = generators::pipeline(n);
        let rg = ReachabilityGraph::build(&net).unwrap();
        assert_eq!(rg.num_states(), n);
        assert!(rg.deadlocks().is_empty());
        assert!(rg.is_live_and_cyclic(&net));
    }
}

#[test]
fn reachability_of_parallel_handshakes_is_exponential() {
    for m in 1..5 {
        let net = generators::parallel_handshakes(m);
        let rg = ReachabilityGraph::build(&net).unwrap();
        assert_eq!(rg.num_states(), 1 << m);
    }
}

#[test]
fn pipeline_with_tokens_counts() {
    // C(n, k) states for the n-stage, k-token FIFO ring.
    let binom = |n: u64, k: u64| -> u64 {
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    };
    for (n, k) in [(4usize, 2usize), (5, 2), (6, 3)] {
        let net = generators::pipeline_with_tokens(n, k);
        let rg = ReachabilityGraph::build(&net).unwrap();
        assert_eq!(
            rg.num_states() as u64,
            binom(n as u64, k as u64),
            "n={n} k={k}"
        );
    }
}

#[test]
fn unbounded_net_detected() {
    // A transition with no inputs floods its output place.
    let mut net = PetriNet::new();
    let p = net.add_place("p", 0);
    let t = net.add_transition("t");
    net.add_arc_transition_to_place(t, p);
    match ReachabilityGraph::build(&net) {
        Err(ReachError::BoundExceeded(_)) => {}
        other => panic!("expected bound violation, got {other:?}"),
    }
}

#[test]
fn state_limit_respected() {
    let net = generators::parallel_handshakes(6); // 64 states
    match ReachabilityGraph::build_bounded(&net, 1, 10) {
        Err(ReachError::StateLimit(10)) => {}
        other => panic!("expected state limit, got {other:?}"),
    }
}

#[test]
fn classification_of_generators() {
    let pipe = generators::pipeline(4);
    let c = classify(&pipe);
    assert!(c.marked_graph);
    assert!(c.free_choice);
    assert!(is_marked_graph(&pipe));

    let choice = generators::choice_ring(3);
    let c = classify(&choice);
    assert!(!c.marked_graph);
    assert!(c.free_choice, "single-place conflicts are free choice");
    assert_eq!(choice_places(&choice).len(), 1);
}

#[test]
fn non_free_choice_detected() {
    // Two transitions sharing one input place but not the other.
    let mut net = PetriNet::new();
    let a = net.add_place("a", 1);
    let b = net.add_place("b", 1);
    let t1 = net.add_transition("t1");
    let t2 = net.add_transition("t2");
    net.add_arc_place_to_transition(a, t1);
    net.add_arc_place_to_transition(a, t2);
    net.add_arc_place_to_transition(b, t2);
    assert!(!is_free_choice(&net));
}

#[test]
fn invariants_of_pipeline() {
    // The 1-token ring has a single minimal P-invariant: all places, k=1.
    let net = generators::pipeline(4);
    let invs = place_invariants(&net);
    assert_eq!(invs.len(), 1);
    assert!(invs[0].is_binary());
    assert_eq!(invs[0].token_count, 1);
    assert_eq!(invs[0].support().len(), 4);
    // And a single T-invariant firing every stage once.
    let tinvs = transition_invariants(&net);
    assert_eq!(tinvs.len(), 1);
    assert_eq!(tinvs[0].support().len(), 4);
}

#[test]
fn invariants_hold_on_reachable_markings() {
    let net = generators::pipeline_with_tokens(5, 2);
    let invs = place_invariants(&net);
    assert!(!invs.is_empty());
    let rg = ReachabilityGraph::build(&net).unwrap();
    for inv in &invs {
        for m in rg.markings() {
            assert_eq!(
                inv.weighted_tokens(m.as_counts()),
                inv.token_count,
                "invariant {} violated at {m}",
                inv.display(&net)
            );
        }
    }
}

#[test]
fn sm_components_of_handshakes() {
    let net = generators::parallel_handshakes(2);
    let comps = sm_components(&net);
    // Each handshake cell {idle_i, busy_i} is an SM component.
    assert_eq!(comps.len(), 2);
    for c in &comps {
        assert_eq!(c.places.len(), 2);
        assert_eq!(c.transitions.len(), 2);
    }
    assert!(crate::invariant::has_sm_cover(&net));
}

#[test]
fn dense_encoding_uses_log_variables() {
    let net = generators::parallel_handshakes(3);
    let enc = dense_encoding(&net);
    // Three 2-place components: one bit each.
    assert_eq!(enc.num_vars, 3);
    assert_eq!(enc.components.len(), 3);
}

#[test]
fn reduction_collapses_pipeline() {
    // A pure ring reduces to a single self-loop transition
    // (§2.2: "it is possible to reduce the whole PN from Figure 3 to a
    // single self-loop transition").
    let net = generators::pipeline(5);
    let (reduced, stats) = reduce_linear(net);
    assert!(stats.total() > 0);
    assert_eq!(reduced.num_transitions(), 1);
    assert!(reduced.num_places() <= 1);
}

#[test]
fn reduction_preserves_state_count_of_choice_ring() {
    // Linear rules must not change the number of reachable markings after
    // projection; for the choice ring, check the reduced net still has a
    // live reachability graph of the same cycle structure.
    let net = generators::choice_ring(2);
    let before = ReachabilityGraph::build(&net).unwrap();
    let (reduced, _) = reduce_linear(net);
    let after = ReachabilityGraph::build(&reduced).unwrap();
    assert!(after.num_states() <= before.num_states());
    assert!(after.deadlocks().is_empty());
}

#[test]
fn symbolic_matches_explicit() {
    for net in [
        generators::pipeline(5),
        generators::parallel_handshakes(4),
        generators::pipeline_with_tokens(5, 2),
        generators::choice_ring(3),
    ] {
        let rg = ReachabilityGraph::build(&net).unwrap();
        let sym = symbolic_reachability(&net);
        assert_eq!(sym.num_markings, rg.num_states() as u128);
    }
}

#[test]
fn invariant_approximation_contains_reachable() {
    for net in [
        generators::pipeline(4),
        generators::parallel_handshakes(3),
        generators::choice_ring(2),
    ] {
        let (exact, approx, contained) = compare_exact_vs_approximation(&net);
        assert!(contained, "approximation must contain the reachable set");
        assert!(approx >= exact);
    }
}

#[test]
fn invariant_approximation_exact_for_sm_covered_net() {
    // For a single handshake the invariant {idle, busy} = 1 is exact.
    let net = generators::parallel_handshakes(1);
    let (exact, approx, contained) = compare_exact_vs_approximation(&net);
    assert!(contained);
    assert_eq!(exact, approx);
}

#[test]
fn unfolding_of_pipeline_is_complete_and_small() {
    let net = generators::pipeline(4);
    let u = Unfolding::build(&net, 1000).unwrap();
    assert!(u.is_complete(&net));
    assert!(u.num_cutoffs() >= 1);
}

#[test]
fn unfolding_linear_for_parallel_handshakes() {
    // RG is 2^m states; the prefix stays linear in m.
    let sizes: Vec<usize> = (1..5)
        .map(|m| {
            let net = generators::parallel_handshakes(m);
            let u = Unfolding::build(&net, 10_000).unwrap();
            assert!(u.is_complete(&net));
            u.num_events()
        })
        .collect();
    for w in sizes.windows(2) {
        assert!(w[1] - w[0] <= 4, "prefix must grow linearly: {sizes:?}");
    }
}

#[test]
fn unfolding_ordering_relations() {
    let net = generators::parallel_handshakes(2);
    let u = Unfolding::build(&net, 1000).unwrap();
    // Find the first req0 and req1 events: they are concurrent.
    let names: Vec<(crate::unfold::EventId, String)> = u
        .events()
        .map(|e| (e, net.transition_name(u.event_transition(e)).to_owned()))
        .collect();
    let req0 = names.iter().find(|(_, n)| n == "req0").unwrap().0;
    let req1 = names.iter().find(|(_, n)| n == "req1").unwrap().0;
    let ack0 = names.iter().find(|(_, n)| n == "ack0").unwrap().0;
    assert_eq!(u.ordering(req0, req1), Ordering::Concurrent);
    assert_eq!(u.ordering(req0, ack0), Ordering::Precedes);
    assert_eq!(u.ordering(ack0, req0), Ordering::Follows);
}

#[test]
fn unfolding_conflict_detected() {
    let net = generators::choice_ring(2);
    let u = Unfolding::build(&net, 1000).unwrap();
    let names: Vec<(crate::unfold::EventId, String)> = u
        .events()
        .map(|e| (e, net.transition_name(u.event_transition(e)).to_owned()))
        .collect();
    let r0 = names.iter().find(|(_, n)| n == "req0").unwrap().0;
    let r1 = names.iter().find(|(_, n)| n == "req1").unwrap().0;
    assert_eq!(u.ordering(r0, r1), Ordering::Conflict);
}

#[test]
fn ts_trace_equivalence() {
    use crate::TransitionSystem;
    let mut a = TransitionSystem::new(2, 0);
    a.add_arc(0, "x", 1);
    a.add_arc(1, "y", 0);
    // Same language, different state count.
    let mut b = TransitionSystem::new(4, 0);
    b.add_arc(0, "x", 1);
    b.add_arc(1, "y", 2);
    b.add_arc(2, "x", 3);
    b.add_arc(3, "y", 0);
    assert!(a.trace_equivalent(&b));
    let mut c = TransitionSystem::new(2, 0);
    c.add_arc(0, "x", 1);
    c.add_arc(1, "x", 0);
    assert!(!a.trace_equivalent(&c));
}

#[test]
fn ts_restrict_to_reachable() {
    use crate::TransitionSystem;
    let mut ts = TransitionSystem::new(3, 0);
    ts.add_arc(0, 'a', 1);
    ts.add_arc(2, 'b', 0); // state 2 unreachable
    let (r, map) = ts.restrict_to_reachable();
    assert_eq!(r.num_states(), 2);
    assert_eq!(r.num_arcs(), 1);
    assert!(map.contains_key(&0) && map.contains_key(&1));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn random_safe_nets_stay_safe(n in 2usize..5, extra in 0usize..4, seed in 0u64..500) {
            let net = generators::random_safe_net(n, extra, seed);
            if let Ok(rg) = ReachabilityGraph::build_bounded(&net, 1, 50_000) {
                for m in rg.markings() {
                    prop_assert!(m.is_safe());
                }
            }
        }

        #[test]
        fn symbolic_equals_explicit_on_random_nets(n in 2usize..5, extra in 0usize..3, seed in 0u64..200) {
            let net = generators::random_safe_net(n, extra, seed);
            if let Ok(rg) = ReachabilityGraph::build_bounded(&net, 1, 20_000) {
                let sym = symbolic_reachability(&net);
                prop_assert_eq!(sym.num_markings, rg.num_states() as u128);
            }
        }

        #[test]
        fn invariants_conserved_on_random_nets(n in 2usize..5, extra in 0usize..3, seed in 0u64..200) {
            let net = generators::random_safe_net(n, extra, seed);
            let invs = place_invariants(&net);
            if let Ok(rg) = ReachabilityGraph::build_bounded(&net, 1, 20_000) {
                for inv in &invs {
                    for m in rg.markings() {
                        prop_assert_eq!(inv.weighted_tokens(m.as_counts()), inv.token_count);
                    }
                }
            }
        }

        #[test]
        fn unfolding_complete_on_random_nets(n in 2usize..4, extra in 0usize..3, seed in 0u64..100) {
            let net = generators::random_safe_net(n, extra, seed);
            if ReachabilityGraph::build_bounded(&net, 1, 2_000).is_ok() {
                if let Ok(u) = Unfolding::build(&net, 2_000) {
                    prop_assert!(u.is_complete(&net));
                }
            }
        }

        #[test]
        fn reduction_keeps_deadlock_freedom(n in 2usize..6) {
            let net = generators::pipeline(n);
            let before = ReachabilityGraph::build(&net).unwrap();
            prop_assert!(before.deadlocks().is_empty());
            let (reduced, _) = reduce_linear(net);
            if reduced.num_transitions() > 0 {
                let after = ReachabilityGraph::build(&reduced).unwrap();
                prop_assert!(after.deadlocks().is_empty());
            }
        }
    }
}

#[test]
fn send_sync_handles() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PetriNet>();
    assert_send_sync::<Marking>();
    assert_send_sync::<ReachabilityGraph>();
}
