//! Place and transition invariants, state-machine components and dense
//! state encodings (§2.2 of the paper, Fig. 6).
//!
//! *"State machines correspond to place-invariants of the PN and preserve
//! their token count in all reachable markings."*

use crate::net::{PetriNet, PlaceId, TransitionId};

/// A non-negative integer place invariant: a weight per place such that the
/// weighted token count is constant over all reachable markings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceInvariant {
    /// Weight per place (index = place index).
    pub weights: Vec<u64>,
    /// The invariant token count `weights · m0`.
    pub token_count: u64,
}

impl PlaceInvariant {
    /// Places with non-zero weight, ascending.
    #[must_use]
    pub fn support(&self) -> Vec<PlaceId> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(i, _)| PlaceId(i as u32))
            .collect()
    }

    /// `true` if all weights are 0 or 1.
    #[must_use]
    pub fn is_binary(&self) -> bool {
        self.weights.iter().all(|&w| w <= 1)
    }

    /// Evaluates `weights · m` for a marking given as raw counts.
    #[must_use]
    pub fn weighted_tokens(&self, counts: &[u32]) -> u64 {
        self.weights
            .iter()
            .zip(counts)
            .map(|(&w, &c)| w * u64::from(c))
            .sum()
    }

    /// Renders as the paper does: `p1 + p2 + 2·p5 = k`.
    #[must_use]
    pub fn display(&self, net: &PetriNet) -> String {
        let terms: Vec<String> = self
            .weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(i, &w)| {
                let name = net.place_name(PlaceId(i as u32));
                if w == 1 {
                    name.to_owned()
                } else {
                    format!("{w}·{name}")
                }
            })
            .collect();
        format!("{} = {}", terms.join(" + "), self.token_count)
    }
}

/// A non-negative transition invariant: a firing-count vector reproducing
/// the marking it starts from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionInvariant {
    /// Weight per transition (index = transition index).
    pub weights: Vec<u64>,
}

impl TransitionInvariant {
    /// Transitions with non-zero weight, ascending.
    #[must_use]
    pub fn support(&self) -> Vec<TransitionId> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(i, _)| TransitionId(i as u32))
            .collect()
    }
}

/// The incidence matrix `C[p][t] = post(t,p) − pre(t,p)` of an ordinary net.
#[must_use]
pub fn incidence_matrix(net: &PetriNet) -> Vec<Vec<i64>> {
    let mut c = vec![vec![0i64; net.num_transitions()]; net.num_places()];
    for t in net.transitions() {
        for &p in net.preset(t) {
            c[p.index()][t.index()] -= 1;
        }
        for &p in net.postset(t) {
            c[p.index()][t.index()] += 1;
        }
    }
    c
}

/// All minimal-support non-negative place invariants, by the Farkas
/// elimination algorithm on `[C | I]`.
///
/// The result is deterministic; weights are normalised by their gcd.
#[must_use]
pub fn place_invariants(net: &PetriNet) -> Vec<PlaceInvariant> {
    let c = incidence_matrix(net);
    let rows = farkas(&c);
    let m0 = net.initial_marking();
    rows.into_iter()
        .map(|weights| {
            let token_count = weights
                .iter()
                .zip(m0.as_counts())
                .map(|(&w, &c)| w * u64::from(c))
                .sum();
            PlaceInvariant {
                weights,
                token_count,
            }
        })
        .collect()
}

/// All minimal-support non-negative transition invariants (Farkas on the
/// transposed incidence matrix).
#[must_use]
pub fn transition_invariants(net: &PetriNet) -> Vec<TransitionInvariant> {
    let c = incidence_matrix(net);
    let nt = net.num_transitions();
    let np = net.num_places();
    let mut ct = vec![vec![0i64; np]; nt];
    for (p, row) in c.iter().enumerate() {
        for (t, &v) in row.iter().enumerate() {
            ct[t][p] = v;
        }
    }
    farkas(&ct)
        .into_iter()
        .map(|weights| TransitionInvariant { weights })
        .collect()
}

/// Farkas algorithm: given matrix `A` (n rows), returns minimal-support
/// non-negative integer vectors `y ≥ 0` with `yᵀA = 0`.
fn farkas(a: &[Vec<i64>]) -> Vec<Vec<u64>> {
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let cols = a[0].len();
    // Each working row is (combination over A's columns, identity part).
    let mut rows: Vec<(Vec<i64>, Vec<i64>)> = (0..n)
        .map(|i| {
            let mut id = vec![0i64; n];
            id[i] = 1;
            (a[i].clone(), id)
        })
        .collect();
    for col in 0..cols {
        let mut next: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
        for row in &rows {
            if row.0[col] == 0 {
                next.push(row.clone());
            }
        }
        let pos: Vec<&(Vec<i64>, Vec<i64>)> = rows.iter().filter(|r| r.0[col] > 0).collect();
        let neg: Vec<&(Vec<i64>, Vec<i64>)> = rows.iter().filter(|r| r.0[col] < 0).collect();
        for rp in &pos {
            for rn in &neg {
                let alpha = rp.0[col];
                let beta = -rn.0[col];
                // beta·rp + alpha·rn cancels column `col`.
                let comb_a: Vec<i64> =
                    rp.0.iter()
                        .zip(&rn.0)
                        .map(|(&x, &y)| beta * x + alpha * y)
                        .collect();
                let comb_id: Vec<i64> =
                    rp.1.iter()
                        .zip(&rn.1)
                        .map(|(&x, &y)| beta * x + alpha * y)
                        .collect();
                let mut row = (comb_a, comb_id);
                normalise(&mut row);
                if !next.contains(&row) {
                    next.push(row);
                }
            }
        }
        // Minimality pruning: drop rows whose support strictly contains
        // another row's support.
        prune_non_minimal(&mut next);
        rows = next;
    }
    let mut out: Vec<Vec<u64>> = rows
        .into_iter()
        .filter(|(_, id)| id.iter().any(|&v| v != 0))
        .map(|(_, id)| {
            id.into_iter()
                .map(|v| u64::try_from(v).expect("farkas keeps rows non-negative"))
                .collect()
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

fn normalise(row: &mut (Vec<i64>, Vec<i64>)) {
    let mut g: i64 = 0;
    for &v in row.0.iter().chain(row.1.iter()) {
        g = gcd(g, v.abs());
    }
    if g > 1 {
        for v in row.0.iter_mut().chain(row.1.iter_mut()) {
            *v /= g;
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn prune_non_minimal(rows: &mut Vec<(Vec<i64>, Vec<i64>)>) {
    let supports: Vec<Vec<usize>> = rows
        .iter()
        .map(|(_, id)| {
            id.iter()
                .enumerate()
                .filter(|(_, &v)| v != 0)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let keep: Vec<bool> = (0..rows.len())
        .map(|i| {
            !supports.iter().enumerate().any(|(j, sj)| {
                j != i && sj.len() < supports[i].len() && sj.iter().all(|x| supports[i].contains(x))
            })
        })
        .collect();
    let mut idx = 0;
    rows.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

/// A state-machine component: a binary place invariant whose induced subnet
/// is a state machine (every transition touching the support consumes from
/// exactly one and produces into exactly one support place).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmComponent {
    /// The places of the component.
    pub places: Vec<PlaceId>,
    /// The transitions connected to those places.
    pub transitions: Vec<TransitionId>,
}

/// Extracts the state-machine components of a net from its binary place
/// invariants (Fig. 6: *"two state machines ... correspond to
/// place-invariants of the PN"*).
#[must_use]
pub fn sm_components(net: &PetriNet) -> Vec<SmComponent> {
    let invariants = place_invariants(net);
    let mut out = Vec::new();
    for inv in invariants.iter().filter(|i| i.is_binary()) {
        let support = inv.support();
        let mut transitions: Vec<TransitionId> = Vec::new();
        let mut ok = true;
        for t in net.transitions() {
            let ins = net.preset(t).iter().filter(|p| support.contains(p)).count();
            let outs = net
                .postset(t)
                .iter()
                .filter(|p| support.contains(p))
                .count();
            if ins != outs || ins > 1 {
                ok = false;
                break;
            }
            if ins == 1 {
                transitions.push(t);
            }
        }
        if ok && !support.is_empty() {
            out.push(SmComponent {
                places: support,
                transitions,
            });
        }
    }
    out
}

/// `true` if the binary place invariants with token count 1 jointly cover
/// every place (an *SM-cover*, the precondition for the dense encoding of
/// Fig. 6).
#[must_use]
pub fn has_sm_cover(net: &PetriNet) -> bool {
    let comps = sm_components(net);
    let mut covered = vec![false; net.num_places()];
    for c in &comps {
        for p in &c.places {
            covered[p.index()] = true;
        }
    }
    covered.iter().all(|&b| b)
}

/// A dense boolean encoding of places derived from one-token SM components
/// (Fig. 6's table: each component's places share a log-sized code).
#[derive(Debug, Clone)]
pub struct DenseEncoding {
    /// Total number of boolean variables used.
    pub num_vars: usize,
    /// For every place: the list of `(variable, value)` constraints that
    /// hold exactly when the place is marked. Places not covered by any
    /// component get an empty list (no constraint).
    pub place_codes: Vec<Vec<(usize, bool)>>,
    /// The components used, in variable-allocation order.
    pub components: Vec<SmComponent>,
}

/// Builds the dense place encoding from the net's one-token SM components.
///
/// Each component with `k` places gets `⌈log₂ k⌉` fresh variables; its
/// `i`-th place is encoded by the binary value of `i` on those variables.
/// Conjunction of the per-component one-hot semantics gives an upper
/// approximation of the reachability set (exact when the components fully
/// determine the state, as for the reduced VME net of Fig. 6).
#[must_use]
pub fn dense_encoding(net: &PetriNet) -> DenseEncoding {
    let comps: Vec<SmComponent> = sm_components(net)
        .into_iter()
        .filter(|c| {
            // One-token components only: token count 1 in m0.
            let m0 = net.initial_marking();
            let tokens: u32 = c.places.iter().map(|&p| m0.tokens(p)).sum();
            tokens == 1
        })
        .collect();
    let mut place_codes: Vec<Vec<(usize, bool)>> = vec![Vec::new(); net.num_places()];
    let mut num_vars = 0usize;
    for c in &comps {
        let k = c.places.len();
        let bits = if k <= 1 {
            0
        } else {
            (usize::BITS - (k - 1).leading_zeros()) as usize
        };
        for (i, &p) in c.places.iter().enumerate() {
            let mut code = Vec::with_capacity(bits);
            for b in 0..bits {
                code.push((num_vars + b, (i >> b) & 1 == 1));
            }
            // Only extend if the place had no earlier (shorter) code: the
            // first covering component wins, later ones refine nothing.
            if place_codes[p.index()].is_empty() {
                place_codes[p.index()] = code;
            }
        }
        num_vars += bits;
    }
    DenseEncoding {
        num_vars,
        place_codes,
        components: comps,
    }
}
