//! Explicit reachability-graph generation (§1.4: "Playing the token game
//! one can generate a Transition System").

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};
use crate::ts::TransitionSystem;

/// Why reachability-graph construction stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    /// A marking exceeded the requested bound: the net is not `k`-bounded.
    ///
    /// Carries the offending marking; the paper's flows require safe
    /// (1-bounded) nets (§1.1).
    BoundExceeded(Marking),
    /// More states were found than the configured limit; the graph is cut
    /// off to protect against state explosion (§2.2).
    StateLimit(usize),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::BoundExceeded(m) => {
                write!(f, "net is not bounded at the requested bound: marking {m}")
            }
            ReachError::StateLimit(n) => write!(f, "state limit of {n} states exceeded"),
        }
    }
}

impl std::error::Error for ReachError {}

/// The reachability graph of a net: a [`TransitionSystem`] whose states are
/// markings and whose arcs are labelled with fired transitions.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    markings: Vec<Marking>,
    index: HashMap<Marking, usize>,
    ts: TransitionSystem<TransitionId>,
}

impl ReachabilityGraph {
    /// Builds the full reachability graph of a safe net.
    ///
    /// Equivalent to [`ReachabilityGraph::build_bounded`] with `bound = 1`
    /// and a one-million-state limit.
    ///
    /// # Errors
    ///
    /// See [`ReachabilityGraph::build_bounded`].
    pub fn build(net: &PetriNet) -> Result<Self, ReachError> {
        Self::build_bounded(net, 1, 1_000_000)
    }

    /// Builds the reachability graph by breadth-first token play.
    ///
    /// # Errors
    ///
    /// * [`ReachError::BoundExceeded`] if any reachable marking puts more
    ///   than `bound` tokens in a place;
    /// * [`ReachError::StateLimit`] if more than `max_states` markings are
    ///   reached.
    pub fn build_bounded(
        net: &PetriNet,
        bound: u32,
        max_states: usize,
    ) -> Result<Self, ReachError> {
        let m0 = net.initial_marking();
        if !m0.is_k_bounded(bound) {
            return Err(ReachError::BoundExceeded(m0));
        }
        let mut markings = vec![m0.clone()];
        let mut index = HashMap::new();
        index.insert(m0.clone(), 0usize);
        let mut arcs: Vec<(usize, TransitionId, usize)> = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(0usize);
        while let Some(s) = queue.pop_front() {
            let m = markings[s].clone();
            for t in net.transitions() {
                let Some(next) = net.fire(&m, t) else {
                    continue;
                };
                if !next.is_k_bounded(bound) {
                    return Err(ReachError::BoundExceeded(next));
                }
                let to = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if markings.len() >= max_states {
                            return Err(ReachError::StateLimit(max_states));
                        }
                        let i = markings.len();
                        markings.push(next.clone());
                        index.insert(next, i);
                        queue.push_back(i);
                        i
                    }
                };
                arcs.push((s, t, to));
            }
        }
        let mut ts = TransitionSystem::new(markings.len(), 0);
        for (from, t, to) in arcs {
            ts.add_arc(from, t, to);
        }
        Ok(ReachabilityGraph {
            markings,
            index,
            ts,
        })
    }

    /// Number of reachable markings.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.markings.len()
    }

    /// The marking of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn marking(&self, state: usize) -> &Marking {
        &self.markings[state]
    }

    /// All markings in state order.
    #[must_use]
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// The state index of a marking, if reachable.
    #[must_use]
    pub fn state_of(&self, m: &Marking) -> Option<usize> {
        self.index.get(m).copied()
    }

    /// The underlying transition system (state 0 is the initial marking).
    #[must_use]
    pub fn ts(&self) -> &TransitionSystem<TransitionId> {
        &self.ts
    }

    /// States with no enabled transitions.
    #[must_use]
    pub fn deadlocks(&self) -> Vec<usize> {
        self.ts.deadlocks()
    }

    /// `true` if every transition of the net fires on some arc
    /// (no dead transitions — a liveness smoke test).
    #[must_use]
    pub fn all_transitions_fire(&self, net: &PetriNet) -> bool {
        let fired: std::collections::HashSet<TransitionId> =
            self.ts.arcs().iter().map(|(_, t, _)| *t).collect();
        net.transitions().all(|t| fired.contains(&t))
    }

    /// `true` if from every reachable state every transition can eventually
    /// fire again (strong liveness for strongly-connected behaviours).
    ///
    /// Interface controllers are cyclic, so their reachability graphs are
    /// expected to be strongly connected; this checks exactly that plus
    /// the absence of dead transitions.
    #[must_use]
    pub fn is_live_and_cyclic(&self, net: &PetriNet) -> bool {
        self.all_transitions_fire(net) && self.is_strongly_connected()
    }

    fn is_strongly_connected(&self) -> bool {
        let n = self.num_states();
        if n == 0 {
            return true;
        }
        // Forward reachability from 0.
        if self.ts.reachable_states().len() != n {
            return false;
        }
        // Backward: build the reverse system.
        let mut rev = TransitionSystem::new(n, 0);
        for (from, t, to) in self.ts.arcs() {
            rev.add_arc(*to, *t, *from);
        }
        rev.reachable_states().len() == n
    }
}
