//! McMillan finite complete prefixes of safe nets (§2.2).
//!
//! *"Unfoldings are finite acyclic prefixes of the PN behavior,
//! representing all reachable markings. They are often more compact than
//! the reachability graph and ... well-suited for extracting ordering
//! relations between places and transitions (concurrency, conflict and
//! preceding)."*

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId, TransitionId};

/// Index of a condition (place instance) in an [`Unfolding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CondId(u32);

/// Index of an event (transition instance) in an [`Unfolding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u32);

#[derive(Debug, Clone)]
struct Condition {
    /// The place this condition instantiates.
    place: PlaceId,
    /// The event that produced it (`None` for initial conditions).
    producer: Option<EventId>,
}

#[derive(Debug, Clone)]
struct Event {
    /// The transition this event instantiates.
    transition: TransitionId,
    /// Consumed conditions.
    preset: Vec<CondId>,
    /// Produced conditions.
    postset: Vec<CondId>,
    /// Local configuration: this event and all its causal predecessors.
    local_config: BTreeSet<EventId>,
    /// Marking reached by firing the local configuration.
    cut_marking: Marking,
    /// `true` if the event was cut off by McMillan's criterion.
    cutoff: bool,
}

/// The ordering relation between two events of an unfolding (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// The first event causally precedes the second.
    Precedes,
    /// The second event causally precedes the first.
    Follows,
    /// The events are in conflict (mutually exclusive).
    Conflict,
    /// The events are concurrent (may occur in either order / together).
    Concurrent,
}

/// A finite complete prefix of the branching-process unfolding of a safe
/// net, built with McMillan's size-based cutoff criterion.
///
/// # Example
///
/// ```
/// use petri::{generators, unfold::Unfolding};
/// let net = generators::pipeline(3);
/// let u = Unfolding::build(&net, 10_000).unwrap();
/// assert!(u.is_complete(&net));
/// ```
#[derive(Debug, Clone)]
pub struct Unfolding {
    conditions: Vec<Condition>,
    events: Vec<Event>,
    initial_cut: Vec<CondId>,
}

impl Unfolding {
    /// Unfolds `net` until every extension is a cutoff, or `max_events` is
    /// hit.
    ///
    /// # Errors
    ///
    /// Returns an error string if the event limit is exceeded (unbounded or
    /// excessively concurrent nets) — the prefix would be incomplete.
    pub fn build(net: &PetriNet, max_events: usize) -> Result<Self, String> {
        let mut u = Unfolding {
            conditions: Vec::new(),
            events: Vec::new(),
            initial_cut: Vec::new(),
        };
        // Initial conditions: one per token of m0 (safe nets: 0/1).
        let m0 = net.initial_marking();
        for p in net.places() {
            if m0.is_marked(p) {
                let c = u.add_condition(p, None);
                u.initial_cut.push(c);
            }
        }
        // Possible-extensions loop. Keep a frontier of candidate events,
        // smallest local configuration first (McMillan order).
        while let Some((t, preset)) = u.find_extension(net) {
            if u.events.len() >= max_events {
                return Err(format!("unfolding exceeded {max_events} events"));
            }
            u.add_event(net, t, preset);
        }
        Ok(u)
    }

    fn add_condition(&mut self, place: PlaceId, producer: Option<EventId>) -> CondId {
        let id = CondId(u32::try_from(self.conditions.len()).expect("too many conditions"));
        self.conditions.push(Condition { place, producer });
        id
    }

    /// Finds one non-cutoff-extendable (transition, co-set) pair not yet in
    /// the prefix, choosing the candidate with the smallest local
    /// configuration (the adequate order that makes McMillan cutoffs safe).
    fn find_extension(&self, net: &PetriNet) -> Option<(TransitionId, Vec<CondId>)> {
        let mut best: Option<(usize, TransitionId, Vec<CondId>)> = None;
        for t in net.transitions() {
            let places = net.preset(t);
            // Candidate conditions per preset place, excluding conditions
            // produced by cutoff events' descendants (they are never
            // extended).
            let mut cands: Vec<Vec<CondId>> = Vec::with_capacity(places.len());
            for &p in places {
                let cs: Vec<CondId> = (0..self.conditions.len())
                    .map(|i| CondId(i as u32))
                    .filter(|&c| self.conditions[c.0 as usize].place == p && !self.below_cutoff(c))
                    .collect();
                if cs.is_empty() {
                    cands.clear();
                    break;
                }
                cands.push(cs);
            }
            if cands.is_empty() {
                continue;
            }
            // Enumerate combinations; keep concurrent ones not already used.
            let mut idx = vec![0usize; cands.len()];
            'combo: loop {
                let combo: Vec<CondId> = idx.iter().zip(&cands).map(|(&i, cs)| cs[i]).collect();
                if self.is_co_set(&combo) && !self.event_exists(t, &combo) {
                    let size = self.config_size_of(&combo);
                    if best.as_ref().is_none_or(|(bs, _, _)| size < *bs) {
                        best = Some((size, t, combo));
                    }
                }
                // Advance the mixed-radix counter.
                for k in 0..idx.len() {
                    idx[k] += 1;
                    if idx[k] < cands[k].len() {
                        continue 'combo;
                    }
                    idx[k] = 0;
                }
                break;
            }
        }
        best.map(|(_, t, c)| (t, c))
    }

    /// `true` if the condition was produced by a cutoff event (or any of
    /// its descendants — sufficient to test the direct producer because
    /// cutoff events never get successors).
    fn below_cutoff(&self, c: CondId) -> bool {
        match self.conditions[c.0 as usize].producer {
            Some(e) => self.events[e.0 as usize].cutoff,
            None => false,
        }
    }

    fn event_exists(&self, t: TransitionId, preset: &[CondId]) -> bool {
        let set: BTreeSet<CondId> = preset.iter().copied().collect();
        self.events
            .iter()
            .any(|e| e.transition == t && e.preset.iter().copied().collect::<BTreeSet<_>>() == set)
    }

    /// Size of the local configuration an event with this preset would have.
    fn config_size_of(&self, preset: &[CondId]) -> usize {
        self.union_config(preset).len() + 1
    }

    fn union_config(&self, preset: &[CondId]) -> BTreeSet<EventId> {
        let mut cfg = BTreeSet::new();
        for &c in preset {
            if let Some(e) = self.conditions[c.0 as usize].producer {
                cfg.extend(self.events[e.0 as usize].local_config.iter().copied());
            }
        }
        cfg
    }

    /// `true` if the conditions are pairwise concurrent: no causal order
    /// between any two and no conflict between their producing histories.
    fn is_co_set(&self, conds: &[CondId]) -> bool {
        for (i, &a) in conds.iter().enumerate() {
            for &b in &conds[i + 1..] {
                if a == b || !self.conditions_concurrent(a, b) {
                    return false;
                }
            }
        }
        true
    }

    fn conditions_concurrent(&self, a: CondId, b: CondId) -> bool {
        if self.condition_precedes(a, b) || self.condition_precedes(b, a) {
            return false;
        }
        // Conflict: the union of producer histories consumes some
        // condition twice via different events.
        let cfg_a = self.producer_config(a);
        let cfg_b = self.producer_config(b);
        let union: BTreeSet<EventId> = cfg_a.union(&cfg_b).copied().collect();
        let mut consumed: HashSet<CondId> = HashSet::new();
        for &e in &union {
            for &c in &self.events[e.0 as usize].preset {
                if !consumed.insert(c) {
                    return false;
                }
            }
        }
        // Also: neither condition may be consumed by the other's history.
        for &e in &cfg_b {
            if self.events[e.0 as usize].preset.contains(&a) {
                return false;
            }
        }
        for &e in &cfg_a {
            if self.events[e.0 as usize].preset.contains(&b) {
                return false;
            }
        }
        true
    }

    fn producer_config(&self, c: CondId) -> BTreeSet<EventId> {
        match self.conditions[c.0 as usize].producer {
            Some(e) => self.events[e.0 as usize].local_config.clone(),
            None => BTreeSet::new(),
        }
    }

    /// `a` strictly precedes `b` through the producer chain.
    fn condition_precedes(&self, a: CondId, b: CondId) -> bool {
        match self.conditions[b.0 as usize].producer {
            None => false,
            Some(eb) => {
                // a ≤ some condition consumed to eventually produce b.
                let cfg = &self.events[eb.0 as usize].local_config;
                cfg.iter()
                    .any(|&e| self.events[e.0 as usize].preset.contains(&a))
                    || self.events[eb.0 as usize].preset.contains(&a)
            }
        }
    }

    fn add_event(&mut self, net: &PetriNet, t: TransitionId, preset: Vec<CondId>) {
        let mut local_config = self.union_config(&preset);
        let id = EventId(u32::try_from(self.events.len()).expect("too many events"));
        local_config.insert(id);
        // Compute the cut marking: fire the local configuration.
        let cut_marking = self.marking_after(net, &local_config, &preset, t);
        // McMillan cutoff: some existing event with a strictly smaller
        // local configuration reaches the same marking — or the initial
        // marking itself is reached again.
        let cutoff = self.events.iter().any(|e| {
            !e.cutoff && e.cut_marking == cut_marking && e.local_config.len() < local_config.len()
        }) || cut_marking == net.initial_marking();
        let mut ev = Event {
            transition: t,
            preset,
            postset: Vec::new(),
            local_config,
            cut_marking,
            cutoff,
        };
        for &p in net.postset(t) {
            let c = self.add_condition(p, Some(id));
            ev.postset.push(c);
        }
        self.events.push(ev);
    }

    /// The marking reached after firing exactly the events of `config`
    /// (plus consuming `preset` and firing `t`), starting from m0.
    fn marking_after(
        &self,
        net: &PetriNet,
        config: &BTreeSet<EventId>,
        _preset: &[CondId],
        _t: TransitionId,
    ) -> Marking {
        // Count produced-but-not-consumed conditions restricted to the
        // configuration (the "cut"), projected to places.
        let mut consumed: HashSet<CondId> = HashSet::new();
        for &e in config {
            if e.0 as usize >= self.events.len() {
                continue; // the event being added; handled below
            }
            for &c in &self.events[e.0 as usize].preset {
                consumed.insert(c);
            }
        }
        // The new event (last id in config that is out of range) consumes
        // `_preset`.
        for &c in _preset {
            consumed.insert(c);
        }
        let mut m = Marking::empty(net.num_places());
        // Initial conditions not consumed.
        for &c in &self.initial_cut {
            if !consumed.contains(&c) {
                m.add_token(self.conditions[c.0 as usize].place);
            }
        }
        // Conditions produced by config events, not consumed.
        for &e in config {
            if e.0 as usize >= self.events.len() {
                continue;
            }
            for &c in &self.events[e.0 as usize].postset {
                if !consumed.contains(&c) {
                    m.add_token(self.conditions[c.0 as usize].place);
                }
            }
        }
        // The new event's postset (its conditions do not exist yet).
        for &p in net.postset(_t) {
            m.add_token(p);
        }
        m
    }

    /// Number of events in the prefix.
    #[must_use]
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of conditions in the prefix.
    #[must_use]
    pub fn num_conditions(&self) -> usize {
        self.conditions.len()
    }

    /// Number of cutoff events.
    #[must_use]
    pub fn num_cutoffs(&self) -> usize {
        self.events.iter().filter(|e| e.cutoff).count()
    }

    /// The transition an event instantiates.
    ///
    /// # Panics
    ///
    /// Panics if the event id is out of range.
    #[must_use]
    pub fn event_transition(&self, e: EventId) -> TransitionId {
        self.events[e.0 as usize].transition
    }

    /// All event ids.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.events.len()).map(|i| EventId(i as u32))
    }

    /// The set of distinct markings represented by local-configuration cuts
    /// (every reachable marking of the net is represented by the cut of
    /// *some* configuration of a complete prefix; the local cuts are the
    /// cheap certificate we expose).
    #[must_use]
    pub fn cut_markings(&self) -> HashSet<Marking> {
        self.events.iter().map(|e| e.cut_marking.clone()).collect()
    }

    /// Ordering relation between two events (§2.2: concurrency, conflict
    /// and preceding).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn ordering(&self, a: EventId, b: EventId) -> Ordering {
        if a == b {
            return Ordering::Precedes; // reflexive by convention
        }
        let ea = &self.events[a.0 as usize];
        let eb = &self.events[b.0 as usize];
        if eb.local_config.contains(&a) {
            return Ordering::Precedes;
        }
        if ea.local_config.contains(&b) {
            return Ordering::Follows;
        }
        // Conflict: union of configs consumes a condition twice.
        let union: BTreeSet<EventId> = ea.local_config.union(&eb.local_config).copied().collect();
        let mut consumed: HashSet<CondId> = HashSet::new();
        for &e in &union {
            for &c in &self.events[e.0 as usize].preset {
                if !consumed.insert(c) {
                    return Ordering::Conflict;
                }
            }
        }
        Ordering::Concurrent
    }

    /// Completeness check: every reachable marking of the (explicitly
    /// enumerated) net occurs among the prefix's configuration cuts.
    ///
    /// Exponential in the concurrency degree — a test/validation helper,
    /// not a production query.
    #[must_use]
    pub fn is_complete(&self, net: &PetriNet) -> bool {
        let Ok(rg) = crate::reach::ReachabilityGraph::build(net) else {
            return false;
        };
        let reachable: HashSet<Marking> = rg.markings().iter().cloned().collect();
        let represented = self.all_cut_markings(net);
        reachable.is_subset(&represented)
    }

    /// All markings represented by *any* configuration of the prefix,
    /// enumerated by exploring the prefix like a net (exponential; used by
    /// [`Unfolding::is_complete`] and tests).
    #[must_use]
    pub fn all_cut_markings(&self, net: &PetriNet) -> HashSet<Marking> {
        // Explore sets of conditions (cuts) starting from the initial cut,
        // firing prefix events.
        let mut seen_cuts: HashSet<BTreeSet<CondId>> = HashSet::new();
        let mut out: HashSet<Marking> = HashSet::new();
        let initial: BTreeSet<CondId> = self.initial_cut.iter().copied().collect();
        let mut stack = vec![initial.clone()];
        seen_cuts.insert(initial);
        while let Some(cut) = stack.pop() {
            out.insert(self.cut_to_marking(net, &cut));
            for (i, e) in self.events.iter().enumerate() {
                let _ = i;
                if e.preset.iter().all(|c| cut.contains(c)) {
                    let mut next = cut.clone();
                    for c in &e.preset {
                        next.remove(c);
                    }
                    for &c in &e.postset {
                        next.insert(c);
                    }
                    if seen_cuts.insert(next.clone()) {
                        stack.push(next);
                    }
                }
            }
        }
        out
    }

    fn cut_to_marking(&self, net: &PetriNet, cut: &BTreeSet<CondId>) -> Marking {
        let mut m = Marking::empty(net.num_places());
        for &c in cut {
            m.add_token(self.conditions[c.0 as usize].place);
        }
        m
    }
}

/// Per-net summary used by the unfolding-vs-reachability ablation (A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnfoldingStats {
    /// Events in the complete prefix.
    pub events: usize,
    /// Conditions in the complete prefix.
    pub conditions: usize,
    /// Cutoff events.
    pub cutoffs: usize,
}

/// Builds an unfolding and reports its size.
///
/// # Errors
///
/// Propagates the event-limit error from [`Unfolding::build`].
pub fn unfolding_stats(net: &PetriNet, max_events: usize) -> Result<UnfoldingStats, String> {
    let u = Unfolding::build(net, max_events)?;
    Ok(UnfoldingStats {
        events: u.num_events(),
        conditions: u.num_conditions(),
        cutoffs: u.num_cutoffs(),
    })
}

/// Maps a `HashMap` keyed by events to transition names, for reporting.
#[must_use]
pub fn event_names(net: &PetriNet, u: &Unfolding) -> HashMap<EventId, String> {
    u.events()
        .map(|e| (e, net.transition_name(u.event_transition(e)).to_owned()))
        .collect()
}
