//! Linear structural reductions (§2.2, Fig. 6).
//!
//! *"Structural reductions are useful as a preprocessing step in order to
//! simplify the structure of the net before traversal or analysis, keeping
//! all important properties."* The rules below are the classic
//! behaviour-preserving linear reductions of Murata: series place fusion,
//! series transition fusion, removal of self-loop places and of duplicate
//! places. Applied to the STG of Fig. 5 they yield the six-place net of
//! Fig. 6.

use crate::net::{PetriNet, PlaceId, TransitionId};

/// Statistics of one reduction run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Series-transition fusions applied (a place with a unique producer
    /// and a unique consumer is contracted, merging the two transitions).
    pub series_transitions: usize,
    /// Series-place fusions applied (a transition with a unique input and
    /// unique output place is contracted, merging the two places).
    pub series_places: usize,
    /// Self-loop places removed.
    pub self_loop_places: usize,
    /// Duplicate (parallel) places removed.
    pub duplicate_places: usize,
}

impl ReductionStats {
    /// Total number of rule applications.
    #[must_use]
    pub fn total(&self) -> usize {
        self.series_transitions + self.series_places + self.self_loop_places + self.duplicate_places
    }
}

/// Applies all linear rules to a fixed point. The input net is consumed;
/// the reduced net and statistics are returned.
///
/// The rules preserve boundedness, liveness and the language over the
/// *remaining* transitions; fused transitions get concatenated names
/// (`"a;b"`) so reduced behaviours stay readable.
#[must_use]
pub fn reduce_linear(mut net: PetriNet) -> (PetriNet, ReductionStats) {
    let mut stats = ReductionStats::default();
    loop {
        if fuse_one_series_transition(&mut net) {
            stats.series_transitions += 1;
            continue;
        }
        if fuse_one_series_place(&mut net) {
            stats.series_places += 1;
            continue;
        }
        if remove_one_self_loop_place(&mut net) {
            stats.self_loop_places += 1;
            continue;
        }
        if remove_one_duplicate_place(&mut net) {
            stats.duplicate_places += 1;
            continue;
        }
        break;
    }
    (net, stats)
}

/// Rule: place `p` with exactly one producer `t1` and one consumer `t2`
/// (`t1 ≠ t2`), where `p` is `t1`'s only output and `t2`'s only input, and
/// `p` is unmarked — fuse `t1` and `t2` into one transition.
fn fuse_one_series_transition(net: &mut PetriNet) -> bool {
    let places: Vec<PlaceId> = net.places().collect();
    for p in places {
        if net.initial_tokens(p) != 0 {
            continue;
        }
        let pre = net.place_preset(p);
        let post = net.place_postset(p);
        if pre.len() != 1 || post.len() != 1 {
            continue;
        }
        let (t1, t2) = (pre[0], post[0]);
        if t1 == t2 {
            continue;
        }
        if net.postset(t1).len() != 1 || net.preset(t2).len() != 1 {
            continue;
        }
        // Fuse: t1 keeps its preset, gains t2's postset; t2 and p vanish.
        let new_name = format!("{};{}", net.transition_name(t1), net.transition_name(t2));
        let t2_post: Vec<PlaceId> = net.postset(t2).to_vec();
        for q in t2_post {
            net.add_arc_transition_to_place(t1, q);
        }
        net.set_transition_name(t1, new_name);
        net.remove_transition(t2);
        // `p` may have shifted if t2's removal renumbered transitions only;
        // place ids are unaffected by transition removal.
        net.remove_place(p);
        return true;
    }
    false
}

/// Rule: transition `t` with exactly one input place `p1` and one output
/// place `p2` (`p1 ≠ p2`), where `t` is `p1`'s only consumer and `p2`'s
/// only producer — fuse `p1` and `p2` into one place.
fn fuse_one_series_place(net: &mut PetriNet) -> bool {
    let transitions: Vec<TransitionId> = net.transitions().collect();
    for t in transitions {
        let pre = net.preset(t);
        let post = net.postset(t);
        if pre.len() != 1 || post.len() != 1 {
            continue;
        }
        let (p1, p2) = (pre[0], post[0]);
        if p1 == p2 {
            continue;
        }
        if net.place_postset(p1).len() != 1 || net.place_preset(p2).len() != 1 {
            continue;
        }
        // Fuse: p1 absorbs p2's consumers and producers; tokens add up.
        let tokens = net.initial_tokens(p1) + net.initial_tokens(p2);
        let p2_pre: Vec<TransitionId> = net
            .place_preset(p2)
            .iter()
            .copied()
            .filter(|&u| u != t)
            .collect();
        let p2_post: Vec<TransitionId> = net.place_postset(p2).to_vec();
        for u in p2_pre {
            net.add_arc_transition_to_place(u, p1);
        }
        for u in p2_post {
            net.add_arc_place_to_transition(p1, u);
        }
        net.set_initial_tokens(p1, tokens);
        net.remove_transition(t);
        net.remove_place(p2);
        return true;
    }
    false
}

/// Rule: marked place that is a pure self-loop on a *single* transition
/// (its only producer equals its only consumer) — the token always comes
/// back, so the place never constrains behaviour and can be removed.
///
/// The restriction to one transition matters: a marked place self-looping
/// on several transitions is a mutual-exclusion resource and removing it
/// would add behaviour.
fn remove_one_self_loop_place(net: &mut PetriNet) -> bool {
    let places: Vec<PlaceId> = net.places().collect();
    for p in places {
        if net.initial_tokens(p) == 0 {
            continue;
        }
        let pre: Vec<TransitionId> = net.place_preset(p).to_vec();
        let post: Vec<TransitionId> = net.place_postset(p).to_vec();
        if pre.len() == 1 && post.len() == 1 && pre[0] == post[0] {
            net.remove_place(p);
            return true;
        }
    }
    false
}

/// Rule: two places with identical presets, postsets and initial marking —
/// one is redundant.
fn remove_one_duplicate_place(net: &mut PetriNet) -> bool {
    let places: Vec<PlaceId> = net.places().collect();
    for (i, &p1) in places.iter().enumerate() {
        for &p2 in &places[i + 1..] {
            if net.initial_tokens(p1) != net.initial_tokens(p2) {
                continue;
            }
            let mut pre1: Vec<TransitionId> = net.place_preset(p1).to_vec();
            let mut pre2: Vec<TransitionId> = net.place_preset(p2).to_vec();
            let mut post1: Vec<TransitionId> = net.place_postset(p1).to_vec();
            let mut post2: Vec<TransitionId> = net.place_postset(p2).to_vec();
            pre1.sort_unstable();
            pre2.sort_unstable();
            post1.sort_unstable();
            post2.sort_unstable();
            if pre1 == pre2 && post1 == post2 {
                net.remove_place(p2);
                return true;
            }
        }
    }
    false
}
