//! The net structure: places, transitions, arcs and the token game.

use std::fmt;

use crate::marking::Marking;

/// Identifier of a place within one [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) u32);

impl PlaceId {
    /// Index of the place in the net's place list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. The caller must ensure the index is
    /// in range for the net it is used with.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        PlaceId(u32::try_from(i).expect("place index fits u32"))
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p#{}", self.0)
    }
}

/// Identifier of a transition within one [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub(crate) u32);

impl TransitionId {
    /// Index of the transition in the net's transition list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. The caller must ensure the index is
    /// in range for the net it is used with.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        TransitionId(u32::try_from(i).expect("transition index fits u32"))
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Place {
    name: String,
    initial: u32,
    /// Transitions consuming from this place.
    post: Vec<TransitionId>,
    /// Transitions producing into this place.
    pre: Vec<TransitionId>,
}

#[derive(Debug, Clone)]
struct Transition {
    name: String,
    /// Input places (preset).
    pre: Vec<PlaceId>,
    /// Output places (postset).
    post: Vec<PlaceId>,
}

/// An ordinary (arc-weight 1) place/transition net with an initial marking.
///
/// This is the model of §1 of the paper: places hold tokens, a transition
/// is enabled when all input places are marked, and firing moves tokens
/// atomically. The nets of interest are *safe* (1-bounded); the token game
/// itself supports arbitrary token counts so that boundedness violations
/// can be detected rather than assumed away.
#[derive(Debug, Clone, Default)]
pub struct PetriNet {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl PetriNet {
    /// Creates an empty net.
    #[must_use]
    pub fn new() -> Self {
        PetriNet::default()
    }

    /// Adds a place with an initial token count and returns its id.
    pub fn add_place(&mut self, name: impl Into<String>, initial_tokens: u32) -> PlaceId {
        let id = PlaceId(u32::try_from(self.places.len()).expect("too many places"));
        self.places.push(Place {
            name: name.into(),
            initial: initial_tokens,
            post: Vec::new(),
            pre: Vec::new(),
        });
        id
    }

    /// Adds a transition and returns its id.
    pub fn add_transition(&mut self, name: impl Into<String>) -> TransitionId {
        let id = TransitionId(u32::try_from(self.transitions.len()).expect("too many transitions"));
        self.transitions.push(Transition {
            name: name.into(),
            pre: Vec::new(),
            post: Vec::new(),
        });
        id
    }

    /// Adds an arc from a place to a transition (the place joins the
    /// transition's preset). Duplicate arcs are ignored (ordinary nets).
    pub fn add_arc_place_to_transition(&mut self, p: PlaceId, t: TransitionId) {
        if !self.transitions[t.index()].pre.contains(&p) {
            self.transitions[t.index()].pre.push(p);
            self.places[p.index()].post.push(t);
        }
    }

    /// Adds an arc from a transition to a place (the place joins the
    /// transition's postset). Duplicate arcs are ignored.
    pub fn add_arc_transition_to_place(&mut self, t: TransitionId, p: PlaceId) {
        if !self.transitions[t.index()].post.contains(&p) {
            self.transitions[t.index()].post.push(p);
            self.places[p.index()].pre.push(t);
        }
    }

    /// Convenience: adds an implicit place between two transitions
    /// (`t1 → p → t2`), the arc notation of Fig. 5 in the paper.
    pub fn add_causal_arc(&mut self, t1: TransitionId, t2: TransitionId) -> PlaceId {
        let name = format!(
            "<{},{}>",
            self.transition_name(t1),
            self.transition_name(t2)
        );
        let p = self.add_place(name, 0);
        self.add_arc_transition_to_place(t1, p);
        self.add_arc_place_to_transition(p, t2);
        p
    }

    /// Number of places.
    #[must_use]
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Iterator over all place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len()).map(|i| PlaceId(i as u32))
    }

    /// Iterator over all transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len()).map(|i| TransitionId(i as u32))
    }

    /// Name of a place.
    #[must_use]
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.places[p.index()].name
    }

    /// Name of a transition.
    #[must_use]
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.transitions[t.index()].name
    }

    /// Renames a transition.
    pub fn set_transition_name(&mut self, t: TransitionId, name: impl Into<String>) {
        self.transitions[t.index()].name = name.into();
    }

    /// Looks a transition up by name.
    #[must_use]
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(|i| TransitionId(i as u32))
    }

    /// Looks a place up by name.
    #[must_use]
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places
            .iter()
            .position(|p| p.name == name)
            .map(|i| PlaceId(i as u32))
    }

    /// Preset of a transition (its input places).
    #[must_use]
    pub fn preset(&self, t: TransitionId) -> &[PlaceId] {
        &self.transitions[t.index()].pre
    }

    /// Postset of a transition (its output places).
    #[must_use]
    pub fn postset(&self, t: TransitionId) -> &[PlaceId] {
        &self.transitions[t.index()].post
    }

    /// Preset of a place (transitions producing into it).
    #[must_use]
    pub fn place_preset(&self, p: PlaceId) -> &[TransitionId] {
        &self.places[p.index()].pre
    }

    /// Postset of a place (transitions consuming from it).
    #[must_use]
    pub fn place_postset(&self, p: PlaceId) -> &[TransitionId] {
        &self.places[p.index()].post
    }

    /// Initial token count of a place.
    #[must_use]
    pub fn initial_tokens(&self, p: PlaceId) -> u32 {
        self.places[p.index()].initial
    }

    /// Sets the initial token count of a place.
    pub fn set_initial_tokens(&mut self, p: PlaceId, tokens: u32) {
        self.places[p.index()].initial = tokens;
    }

    /// The initial marking.
    #[must_use]
    pub fn initial_marking(&self) -> Marking {
        Marking::from_counts(self.places.iter().map(|p| p.initial).collect())
    }

    /// `true` if `t` is enabled at `m` (every input place marked).
    #[must_use]
    pub fn is_enabled(&self, m: &Marking, t: TransitionId) -> bool {
        self.preset(t).iter().all(|&p| m.tokens(p) > 0)
    }

    /// All transitions enabled at `m`.
    #[must_use]
    pub fn enabled_transitions(&self, m: &Marking) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.is_enabled(m, t))
            .collect()
    }

    /// Fires `t` at `m`, returning the successor marking, or `None` if `t`
    /// is not enabled. Firing is the atomic token move of §1.2.
    #[must_use]
    pub fn fire(&self, m: &Marking, t: TransitionId) -> Option<Marking> {
        if !self.is_enabled(m, t) {
            return None;
        }
        let mut next = m.clone();
        for &p in self.preset(t) {
            next.remove_token(p);
        }
        for &p in self.postset(t) {
            next.add_token(p);
        }
        Some(next)
    }

    /// Fires a sequence of transitions from `m`; returns the final marking
    /// or the index of the first disabled transition.
    ///
    /// # Errors
    ///
    /// Returns `Err(i)` if the `i`-th transition in the sequence is not
    /// enabled when reached.
    pub fn fire_sequence(&self, m: &Marking, seq: &[TransitionId]) -> Result<Marking, usize> {
        let mut cur = m.clone();
        for (i, &t) in seq.iter().enumerate() {
            cur = self.fire(&cur, t).ok_or(i)?;
        }
        Ok(cur)
    }

    /// Two transitions are in *structural conflict* if they share an input
    /// place (they may disable each other, §1.5).
    #[must_use]
    pub fn in_structural_conflict(&self, t1: TransitionId, t2: TransitionId) -> bool {
        t1 != t2 && self.preset(t1).iter().any(|p| self.preset(t2).contains(p))
    }

    /// Removes a place and all its arcs. Ids of other places shift down;
    /// use only during structural rewriting (see [`crate::reduce`]).
    pub(crate) fn remove_place(&mut self, p: PlaceId) {
        self.places.remove(p.index());
        for t in &mut self.transitions {
            t.pre.retain(|&q| q != p);
            t.post.retain(|&q| q != p);
            for q in t.pre.iter_mut().chain(t.post.iter_mut()) {
                if q.0 > p.0 {
                    q.0 -= 1;
                }
            }
        }
    }

    /// Removes a transition and all its arcs. Ids of other transitions
    /// shift down.
    pub(crate) fn remove_transition(&mut self, t: TransitionId) {
        self.transitions.remove(t.index());
        for p in &mut self.places {
            p.pre.retain(|&u| u != t);
            p.post.retain(|&u| u != t);
            for u in p.pre.iter_mut().chain(p.post.iter_mut()) {
                if u.0 > t.0 {
                    u.0 -= 1;
                }
            }
        }
    }

    /// A human-readable multi-line structural summary.
    #[must_use]
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "net: {} places, {} transitions",
            self.num_places(),
            self.num_transitions()
        );
        for t in self.transitions() {
            let pre: Vec<&str> = self.preset(t).iter().map(|&p| self.place_name(p)).collect();
            let post: Vec<&str> = self
                .postset(t)
                .iter()
                .map(|&p| self.place_name(p))
                .collect();
            let _ = writeln!(
                s,
                "  {}: {{{}}} -> {{{}}}",
                self.transition_name(t),
                pre.join(","),
                post.join(",")
            );
        }
        let marked: Vec<&str> = self
            .places()
            .filter(|&p| self.initial_tokens(p) > 0)
            .map(|p| self.place_name(p))
            .collect();
        let _ = writeln!(s, "  m0 = {{{}}}", marked.join(","));
        s
    }
}
