//! Theory of regions: extracting a Petri net from a transition system
//! (§4 of the DAC'98 tutorial).
//!
//! *"State regions are sets of states such that they correspond to a place
//! (regions) or a transition of the PN (excitation regions). ... at any
//! step of the design process a PN corresponding to the current TS can be
//! extracted and back-annotated to the designer."*
//!
//! A **region** of a labelled transition system is a set of states `r`
//! such that every label crosses it uniformly: all its arcs enter `r`, or
//! all exit, or none crosses. Regions become places; labels become
//! transitions; a label's pre-places are the regions it exits and its
//! post-places the regions it enters (Fig. 10's back-annotated STG).
//!
//! This implementation enumerates **minimal regions** exhaustively (the
//! state graphs of interface controllers are small — the paper's examples
//! have 14–24 states), prunes redundant places, and validates the result
//! by trace equivalence of the extracted net's reachability graph against
//! the input.
//!
//! # Example
//!
//! ```
//! use petri::TransitionSystem;
//! use regions::synthesize_net;
//!
//! // A two-state toggle: a then b, repeating.
//! let mut ts = TransitionSystem::new(2, 0);
//! ts.add_arc(0, "a".to_owned(), 1);
//! ts.add_arc(1, "b".to_owned(), 0);
//! let result = synthesize_net(&ts).expect("elementary TS");
//! assert_eq!(result.net.num_transitions(), 2);
//! assert!(result.trace_equivalent);
//! ```

use std::collections::{BTreeSet, HashMap};

use petri::reach::ReachabilityGraph;
use petri::{PetriNet, TransitionSystem};

/// A region: a set of states (as a sorted vec) with its crossing
/// classification per label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Member states, ascending.
    pub states: Vec<usize>,
}

/// How a label relates to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Crossing {
    /// Every arc with this label enters the region.
    Enter,
    /// Every arc exits.
    Exit,
    /// No arc crosses the border.
    None,
    /// Mixed behaviour — not a region.
    Violates,
}

/// Result of net synthesis from a TS.
#[derive(Debug, Clone)]
pub struct RegionNet {
    /// The extracted net (transitions named by the TS labels).
    pub net: PetriNet,
    /// The minimal regions that became places, index-aligned with the
    /// net's places.
    pub regions: Vec<Region>,
    /// `true` if the extracted net's reachability graph is trace
    /// equivalent to the input TS (excitation closure held).
    pub trace_equivalent: bool,
}

/// Why synthesis failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// The TS has more states than the exhaustive enumerator supports.
    TooLarge {
        /// State count of the input.
        states: usize,
        /// Maximum supported.
        max: usize,
    },
    /// The input TS is nondeterministic (two equal labels out of a state).
    Nondeterministic,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::TooLarge { states, max } => {
                write!(
                    f,
                    "TS has {states} states; exhaustive region search caps at {max}"
                )
            }
            RegionError::Nondeterministic => write!(f, "input TS is nondeterministic"),
        }
    }
}

impl std::error::Error for RegionError {}

const MAX_STATES: usize = 22;

/// Classifies label `arcs` against the state set `mask`.
fn crossing(arcs: &[(usize, usize)], mask: u32) -> Crossing {
    let inside = |s: usize| mask & (1 << s) != 0;
    let mut enter = false;
    let mut exit = false;
    let mut stay = false;
    for &(from, to) in arcs {
        match (inside(from), inside(to)) {
            (false, true) => enter = true,
            (true, false) => exit = true,
            _ => stay = true,
        }
    }
    match (enter, exit) {
        (true, true) => Crossing::Violates,
        (true, false) => {
            if stay {
                Crossing::Violates
            } else {
                Crossing::Enter
            }
        }
        (false, true) => {
            if stay {
                Crossing::Violates
            } else {
                Crossing::Exit
            }
        }
        (false, false) => Crossing::None,
    }
}

/// Enumerates all minimal non-trivial regions of a deterministic TS.
///
/// # Errors
///
/// [`RegionError::TooLarge`] beyond 22 states (the exhaustive 2^n sweep),
/// [`RegionError::Nondeterministic`] for nondeterministic inputs.
pub fn minimal_regions(ts: &TransitionSystem<String>) -> Result<Vec<Region>, RegionError> {
    let n = ts.num_states();
    if n > MAX_STATES {
        return Err(RegionError::TooLarge {
            states: n,
            max: MAX_STATES,
        });
    }
    if !ts.is_deterministic() {
        return Err(RegionError::Nondeterministic);
    }
    // Group arcs by label.
    let mut by_label: HashMap<&String, Vec<(usize, usize)>> = HashMap::new();
    for (from, l, to) in ts.arcs() {
        by_label.entry(l).or_default().push((*from, *to));
    }
    let labels: Vec<&String> = {
        let mut v: Vec<&String> = by_label.keys().copied().collect();
        v.sort();
        v
    };
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut regions_masks: Vec<u32> = Vec::new();
    'mask: for mask in 1..full {
        for l in &labels {
            if crossing(&by_label[*l], mask) == Crossing::Violates {
                continue 'mask;
            }
        }
        regions_masks.push(mask);
    }
    // Keep only minimal regions (no proper subset is also a region).
    let mut minimal: Vec<u32> = Vec::new();
    for &m in &regions_masks {
        let has_proper_subset = regions_masks.iter().any(|&o| o != m && (o & m) == o);
        if !has_proper_subset {
            minimal.push(m);
        }
    }
    Ok(minimal
        .into_iter()
        .map(|m| Region {
            states: (0..n).filter(|&s| m & (1 << s) != 0).collect(),
        })
        .collect())
}

/// Synthesises a Petri net whose transitions are the TS labels and whose
/// places are the minimal regions; validates by trace equivalence.
///
/// # Errors
///
/// See [`minimal_regions`].
pub fn synthesize_net(ts: &TransitionSystem<String>) -> Result<RegionNet, RegionError> {
    let regions = minimal_regions(ts)?;
    let net = net_from_regions(ts, &regions);
    // Redundant-place pruning: greedily drop places whose removal keeps
    // the language identical.
    let (net, regions) = prune_redundant(ts, net, regions);
    let trace_equivalent = check_equivalence(ts, &net);
    Ok(RegionNet {
        net,
        regions,
        trace_equivalent,
    })
}

fn net_from_regions(ts: &TransitionSystem<String>, regions: &[Region]) -> PetriNet {
    let mut by_label: HashMap<&String, Vec<(usize, usize)>> = HashMap::new();
    for (from, l, to) in ts.arcs() {
        by_label.entry(l).or_default().push((*from, *to));
    }
    let mut labels: Vec<&String> = by_label.keys().copied().collect();
    labels.sort();
    let mut net = PetriNet::new();
    let places: Vec<petri::PlaceId> = regions
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let tokens = u32::from(r.states.contains(&ts.initial()));
            net.add_place(format!("r{i}"), tokens)
        })
        .collect();
    for l in &labels {
        let t = net.add_transition((*l).clone());
        for (i, r) in regions.iter().enumerate() {
            let mask: BTreeSet<usize> = r.states.iter().copied().collect();
            let arcs = &by_label[*l];
            let mut enters = false;
            let mut exits = false;
            for &(from, to) in arcs {
                match (mask.contains(&from), mask.contains(&to)) {
                    (false, true) => enters = true,
                    (true, false) => exits = true,
                    _ => {}
                }
            }
            if exits {
                net.add_arc_place_to_transition(places[i], t);
            }
            if enters {
                net.add_arc_transition_to_place(t, places[i]);
            }
        }
    }
    net
}

fn check_equivalence(ts: &TransitionSystem<String>, net: &PetriNet) -> bool {
    let Ok(rg) = ReachabilityGraph::build_bounded(net, 1, 1 << 16) else {
        return false;
    };
    let net_ts = rg.ts().map_labels(|&t| net.transition_name(t).to_owned());
    net_ts.trace_equivalent(ts)
}

fn prune_redundant(
    ts: &TransitionSystem<String>,
    net: PetriNet,
    regions: Vec<Region>,
) -> (PetriNet, Vec<Region>) {
    // Only prune if the full net is already equivalent — pruning exists to
    // simplify correct nets, not to repair incorrect ones.
    if !check_equivalence(ts, &net) {
        return (net, regions);
    }
    let mut keep: Vec<bool> = vec![true; regions.len()];
    for i in 0..regions.len() {
        keep[i] = false;
        let candidate = rebuild(ts, &regions, &keep);
        if !check_equivalence(ts, &candidate) {
            keep[i] = true;
        }
    }
    let kept_regions: Vec<Region> = regions
        .into_iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(r, _)| r)
        .collect();
    (net_from_regions(ts, &kept_regions), kept_regions)
}

fn rebuild(ts: &TransitionSystem<String>, regions: &[Region], keep: &[bool]) -> PetriNet {
    let kept: Vec<Region> = regions
        .iter()
        .zip(keep)
        .filter(|(_, &k)| k)
        .map(|(r, _)| r.clone())
        .collect();
    net_from_regions(ts, &kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle_ts() -> TransitionSystem<String> {
        let mut ts = TransitionSystem::new(4, 0);
        ts.add_arc(0, "a+".to_owned(), 1);
        ts.add_arc(1, "x+".to_owned(), 2);
        ts.add_arc(2, "a-".to_owned(), 3);
        ts.add_arc(3, "x-".to_owned(), 0);
        ts
    }

    #[test]
    fn toggle_roundtrip() {
        let ts = toggle_ts();
        let r = synthesize_net(&ts).unwrap();
        assert!(r.trace_equivalent);
        assert_eq!(r.net.num_transitions(), 4);
        // A simple cycle needs at most 4 places after pruning.
        assert!(r.net.num_places() <= 4);
    }

    #[test]
    fn concurrency_recovered() {
        // Diamond: a and b concurrent. The net should have independent
        // places, and its RG must regenerate all 4 states.
        let mut ts = TransitionSystem::new(4, 0);
        ts.add_arc(0, "a".to_owned(), 1);
        ts.add_arc(0, "b".to_owned(), 2);
        ts.add_arc(1, "b".to_owned(), 3);
        ts.add_arc(2, "a".to_owned(), 3);
        ts.add_arc(3, "done".to_owned(), 0);
        let r = synthesize_net(&ts).unwrap();
        assert!(r.trace_equivalent);
        let rg = ReachabilityGraph::build(&r.net).unwrap();
        assert_eq!(rg.num_states(), 4);
    }

    #[test]
    fn choice_recovered() {
        let mut ts = TransitionSystem::new(3, 0);
        ts.add_arc(0, "a".to_owned(), 1);
        ts.add_arc(0, "b".to_owned(), 2);
        ts.add_arc(1, "ra".to_owned(), 0);
        ts.add_arc(2, "rb".to_owned(), 0);
        let r = synthesize_net(&ts).unwrap();
        assert!(r.trace_equivalent);
    }

    #[test]
    fn regions_are_uniformly_crossed() {
        let ts = toggle_ts();
        let regions = minimal_regions(&ts).unwrap();
        assert!(!regions.is_empty());
        for r in &regions {
            let mask: u32 = r.states.iter().map(|&s| 1u32 << s).sum();
            let mut by_label: HashMap<&String, Vec<(usize, usize)>> = HashMap::new();
            for (from, l, to) in ts.arcs() {
                by_label.entry(l).or_default().push((*from, *to));
            }
            for arcs in by_label.values() {
                assert_ne!(crossing(arcs, mask), Crossing::Violates);
            }
        }
    }

    #[test]
    fn too_large_rejected() {
        let mut ts = TransitionSystem::new(30, 0);
        for i in 0..30 {
            ts.add_arc(i, format!("t{i}"), (i + 1) % 30);
        }
        assert!(matches!(
            minimal_regions(&ts),
            Err(RegionError::TooLarge { .. })
        ));
    }

    #[test]
    fn nondeterminism_rejected() {
        let mut ts = TransitionSystem::new(3, 0);
        ts.add_arc(0, "a".to_owned(), 1);
        ts.add_arc(0, "a".to_owned(), 2);
        assert!(matches!(
            minimal_regions(&ts),
            Err(RegionError::Nondeterministic)
        ));
    }
}
