//! Logic decomposition into bounded fan-in gates (§3.3–3.4, Fig. 9).
//!
//! Complex gates may be *"too complex to be mapped into one gate available
//! in the library"*. Decomposition breaks each next-state function into
//! small gates connected by new internal nets; whether the result is
//! hazard-free depends on every internal transition being *acknowledged*
//! by some other gate (the `map0` discussion of Fig. 9) — that check is
//! the `verify` crate's speed-independence analysis, run on the candidate
//! netlists produced here.

use std::collections::HashMap;

use boolmin::factor::{bound_fanin, factor_cover};
use boolmin::Expr;
use stg::{SignalId, Stg};

use crate::complex_gate::ComplexGateCircuit;
use crate::netlist::{GateKind, NetId, Netlist};

/// A decomposed circuit: bounded fan-in netlist plus the mapping from
/// signals to nets.
#[derive(Debug, Clone)]
pub struct DecomposedCircuit {
    netlist: Netlist,
    signal_nets: Vec<NetId>,
    /// Names of the internal nets introduced by decomposition
    /// (`map0`, `map1`, …).
    pub new_nets: Vec<String>,
}

impl DecomposedCircuit {
    /// The netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The net carrying `signal`.
    #[must_use]
    pub fn signal_net(&self, signal: SignalId) -> NetId {
        self.signal_nets[signal.index()]
    }
}

/// Decomposes a complex-gate circuit into gates of fan-in at most
/// `max_fanin`, introducing `mapN` internal nets for shared subfunctions.
///
/// Identical subexpressions over identical inputs are shared between
/// signals — the *multiple acknowledgment* opportunity Fig. 9a exploits
/// (`map0` feeds both `csc0` and `D`).
///
/// # Panics
///
/// Panics if `max_fanin < 2`.
#[must_use]
pub fn decompose(stg: &Stg, circuit: &ComplexGateCircuit, max_fanin: usize) -> DecomposedCircuit {
    assert!(max_fanin >= 2);
    let mut netlist = Netlist::new();
    let mut signal_nets: Vec<Option<NetId>> = vec![None; stg.num_signals()];
    for s in stg.signals() {
        if !stg.signal_kind(s).is_non_input() {
            signal_nets[s.index()] = Some(netlist.add_input(stg.signal_name(s)));
        }
    }
    // Outputs may feed back into their own or each other's logic, so their
    // net ids must exist before gates that reference them are emitted. We
    // build gate *descriptions* first (operating on signal indices), then
    // emit in an order where ids are pre-reserved.
    //
    // Description tree per signal: factored, fan-in bounded expression
    // over signal indices.
    let mut exprs: Vec<(SignalId, Expr)> = Vec::new();
    for eq in circuit.equations() {
        let factored = factor_cover(&eq.cover);
        exprs.push((eq.signal, bound_fanin(&factored, max_fanin)));
    }
    // Pass 1: count internal gates. Each non-leaf operator node becomes a
    // gate; the root gate drives the signal net. Shared subtrees (same
    // shape over the same signal variables) are emitted once.
    let mut share: HashMap<String, usize> = HashMap::new(); // key -> gate slot
    let mut internal_gates: Vec<(String, Expr)> = Vec::new(); // (key, expr over signals)
    for (_, e) in &exprs {
        plan_gates(e, &mut share, &mut internal_gates, true);
    }
    // Net id layout: [inputs][internal mapN gates][signal outputs].
    let num_inputs = netlist.num_nets();
    let first_output = num_inputs + internal_gates.len();
    for (i, eq) in circuit.equations().iter().enumerate() {
        signal_nets[eq.signal.index()] = Some(crate::netlist::NetId((first_output + i) as u32));
    }
    let internal_net_of = |slot: usize| crate::netlist::NetId((num_inputs + slot) as u32);
    // Pass 2: emit internal gates (they may reference signal outputs and
    // other internal nets — ids are all reserved).
    let mut new_nets = Vec::new();
    let resolve_child = |child: &Expr,
                         share: &HashMap<String, usize>,
                         signal_nets: &[Option<NetId>]|
     -> Option<(NetId, bool)> {
        // Returns (net, negated?) when the child is a wire-able leaf.
        match child {
            Expr::Var(v) => Some((signal_nets[*v].expect("net"), false)),
            Expr::Not(inner) => match &**inner {
                Expr::Var(v) => Some((signal_nets[*v].expect("net"), true)),
                _ => {
                    let key = expr_key(child);
                    share.get(&key).map(|&slot| (internal_net_of(slot), false))
                }
            },
            _ => {
                let key = expr_key(child);
                share.get(&key).map(|&slot| (internal_net_of(slot), false))
            }
        }
    };
    for (slot, (key, expr)) in internal_gates.iter().enumerate() {
        let name = format!("map{slot}");
        new_nets.push(name.clone());
        let (gate_expr, inputs) =
            gate_from_children(expr, &share, &signal_nets, &resolve_child, slot);
        let out = netlist.add_gate(name, GateKind::Complex(gate_expr), inputs);
        debug_assert_eq!(out, internal_net_of(slot), "layout mismatch for {key}");
    }
    // Pass 3: emit the root gates driving the signals.
    for (signal, e) in &exprs {
        let (gate_expr, inputs) =
            gate_from_children(e, &share, &signal_nets, &resolve_child, usize::MAX);
        let out = netlist.add_gate(
            stg.signal_name(*signal),
            GateKind::Complex(gate_expr),
            inputs,
        );
        debug_assert_eq!(out, signal_nets[signal.index()].expect("reserved"));
    }
    DecomposedCircuit {
        netlist,
        signal_nets: signal_nets
            .into_iter()
            .map(|n| n.expect("assigned"))
            .collect(),
        new_nets,
    }
}

/// Registers every non-root operator subtree as an internal gate slot
/// (shared by key).
fn plan_gates(
    e: &Expr,
    share: &mut HashMap<String, usize>,
    gates: &mut Vec<(String, Expr)>,
    is_root: bool,
) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Not(inner) => {
            if matches!(**inner, Expr::Var(_)) {
                return; // negated literal: folded into the consuming gate
            }
            plan_gates(inner, share, gates, false);
            if !is_root {
                register(e, share, gates);
            }
        }
        Expr::And(parts) | Expr::Or(parts) => {
            for p in parts {
                plan_gates(p, share, gates, false);
            }
            if !is_root {
                register(e, share, gates);
            }
        }
    }
}

fn register(e: &Expr, share: &mut HashMap<String, usize>, gates: &mut Vec<(String, Expr)>) {
    let key = expr_key(e);
    if !share.contains_key(&key) {
        share.insert(key.clone(), gates.len());
        gates.push((key, e.clone()));
    }
}

/// Serialises an expression over signal indices into a canonical share key.
fn expr_key(e: &Expr) -> String {
    match e {
        Expr::Const(b) => format!("c{}", u8::from(*b)),
        Expr::Var(v) => format!("v{v}"),
        Expr::Not(i) => format!("!({})", expr_key(i)),
        Expr::And(p) => {
            let mut keys: Vec<String> = p.iter().map(expr_key).collect();
            keys.sort();
            format!("&({})", keys.join(","))
        }
        Expr::Or(p) => {
            let mut keys: Vec<String> = p.iter().map(expr_key).collect();
            keys.sort();
            format!("|({})", keys.join(","))
        }
    }
}

/// Builds the shallow gate expression for `e`: children become input pins
/// (internal nets or signal nets), negated literals fold into the pin
/// expression.
fn gate_from_children(
    e: &Expr,
    share: &HashMap<String, usize>,
    signal_nets: &[Option<NetId>],
    resolve_child: &impl Fn(&Expr, &HashMap<String, usize>, &[Option<NetId>]) -> Option<(NetId, bool)>,
    _slot: usize,
) -> (Expr, Vec<NetId>) {
    let mut inputs: Vec<NetId> = Vec::new();
    let pin = |net: NetId, negated: bool, inputs: &mut Vec<NetId>| -> Expr {
        let pos = match inputs.iter().position(|&n| n == net) {
            Some(p) => p,
            None => {
                inputs.push(net);
                inputs.len() - 1
            }
        };
        if negated {
            Expr::not(Expr::Var(pos))
        } else {
            Expr::Var(pos)
        }
    };
    let children: Vec<Expr> = match e {
        Expr::And(parts) | Expr::Or(parts) => parts.clone(),
        Expr::Not(inner) => vec![(**inner).clone()],
        other => vec![other.clone()],
    };
    let mut pins = Vec::with_capacity(children.len());
    for child in &children {
        let (net, neg) = resolve_child(child, share, signal_nets)
            .expect("all operator subtrees were planned as gates");
        pins.push(pin(net, neg, &mut inputs));
    }
    let gate_expr = match e {
        Expr::And(_) => Expr::and(pins),
        Expr::Or(_) => Expr::or(pins),
        Expr::Not(_) => Expr::not(pins.pop().expect("single child")),
        _ => pins.pop().expect("single child"),
    };
    (gate_expr, inputs)
}

/// Resubstitution (§3.4: *"using candidates for decomposition extracted by
/// algebraic factorization and Boolean relations"* + *"hazard-free signal
/// insertion with multiple acknowledgment"*): re-expresses every output
/// gate over the extended variable set *signals ∪ internal nets*, with
/// don't-cares from unreachable extended codes.
///
/// Because an internal net like `map0 = csc0 + LDTACK'` dominates the
/// literals it replaces, extended primes absorb the original ones and the
/// minimiser lands on the multiply-acknowledged solution of Fig. 9a
/// (`D = LDTACK·map0` instead of `D = LDTACK·csc0`).
#[must_use]
pub fn resubstitute<S: stg::StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    dec: &DecomposedCircuit,
) -> DecomposedCircuit {
    use boolmin::{minimize_exact, Cover, Cube, IncompleteFunction};

    let netlist = dec.netlist();
    let num_signals = stg.num_signals();
    // Extended variables: signals first, then internal (non-signal) nets.
    let signal_net_set: Vec<NetId> = stg.signals().map(|s| dec.signal_net(s)).collect();
    let internal_nets: Vec<NetId> = (0..netlist.num_nets())
        .map(|i| crate::netlist::NetId(i as u32))
        .filter(|n| !signal_net_set.contains(n))
        .collect();
    let num_ext = num_signals + internal_nets.len();

    // Extended code per SG state: settle internal nets combinationally.
    // Internal-net membership is a bitmask and the fixed point stops at
    // the first unchanged sweep (the settled-internal computation is the
    // inner loop of the whole repair path — it runs once per SG state).
    let is_internal = {
        let mut mask = vec![false; netlist.num_nets()];
        for n in &internal_nets {
            mask[n.index()] = true;
        }
        mask
    };
    let extended_code = |state: usize| -> Vec<bool> {
        let mut values = vec![false; netlist.num_nets()];
        for s in stg.signals() {
            values[dec.signal_net(s).index()] = sg.value(state, s);
        }
        for _ in 0..netlist.num_gates() + 1 {
            let mut changed = false;
            for g in 0..netlist.num_gates() {
                let out = netlist.gates()[g].output;
                if is_internal[out.index()] {
                    let nv = netlist.next_value(&values, g);
                    if values[out.index()] != nv {
                        values[out.index()] = nv;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut code: Vec<bool> = stg
            .signals()
            .map(|s| values[dec.signal_net(s).index()])
            .collect();
        for n in &internal_nets {
            code.push(values[n.index()]);
        }
        code
    };
    let ext_codes: Vec<Vec<bool>> = (0..sg.num_states()).map(extended_code).collect();

    // Re-derive each output cover over the extended space.
    let mut new_covers: Vec<(SignalId, Cover)> = Vec::new();
    for sig in stg.non_input_signals() {
        let regions = crate::regions::signal_regions(stg, sg, sig);
        let on_states = regions.on_states();
        let mut on = Cover::from_cubes(
            num_ext,
            on_states
                .iter()
                .map(|&s| Cube::from_minterm(&ext_codes[s]))
                .collect(),
        );
        on.remove_contained();
        let mut off = Cover::from_cubes(
            num_ext,
            regions
                .off_states()
                .iter()
                .map(|&s| Cube::from_minterm(&ext_codes[s]))
                .collect(),
        );
        off.remove_contained();
        let dc = on.union(&off).complement();
        let f = IncompleteFunction::new(on, dc);
        new_covers.push((sig, minimize_exact(&f)));
    }

    // Rebuild the netlist: inputs, internal gates unchanged, output gates
    // use the new covers (over signal and internal nets).
    let mut out = Netlist::new();
    let mut signal_nets: Vec<Option<NetId>> = vec![None; num_signals];
    for s in stg.signals() {
        if !stg.signal_kind(s).is_non_input() {
            signal_nets[s.index()] = Some(out.add_input(stg.signal_name(s)));
        }
    }
    let num_inputs = out.num_nets();
    // Layout: [inputs][internal gates][output gates] — same as decompose.
    let internal_base = num_inputs;
    let output_base = internal_base + internal_nets.len();
    let mut net_map: Vec<Option<NetId>> = vec![None; netlist.num_nets()];
    for (k, n) in internal_nets.iter().enumerate() {
        net_map[n.index()] = Some(crate::netlist::NetId((internal_base + k) as u32));
    }
    for (k, sig) in stg.non_input_signals().iter().enumerate() {
        let nid = crate::netlist::NetId((output_base + k) as u32);
        signal_nets[sig.index()] = Some(nid);
        net_map[dec.signal_net(*sig).index()] = Some(nid);
    }
    for s in stg.signals() {
        if !stg.signal_kind(s).is_non_input() {
            net_map[dec.signal_net(s).index()] = signal_nets[s.index()];
        }
    }
    // Ext var -> new net id.
    let ext_net = |v: usize| -> NetId {
        if v < num_signals {
            signal_nets[v].expect("signal mapped")
        } else {
            crate::netlist::NetId((internal_base + (v - num_signals)) as u32)
        }
    };
    // Emit internal gates with remapped inputs.
    let mut new_nets = Vec::new();
    for (k, n) in internal_nets.iter().enumerate() {
        let g = netlist.driver_of(*n).expect("internal nets are driven");
        let gate = &netlist.gates()[g];
        let inputs: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|i| net_map[i.index()].expect("all nets mapped"))
            .collect();
        let name = format!("map{k}");
        new_nets.push(name.clone());
        let nid = out.add_gate(name, gate.kind.clone(), inputs);
        debug_assert_eq!(nid.index(), internal_base + k);
    }
    // Emit output gates from the new covers.
    for (sig, cover) in &new_covers {
        let support: Vec<usize> = (0..num_ext)
            .filter(|&v| {
                cover
                    .cubes()
                    .iter()
                    .any(|c| c.literal(v) != boolmin::Literal::DontCare)
            })
            .collect();
        let expr = {
            let raw = Expr::from_cover(cover);
            remap_to_positions(&raw, &support)
        };
        let inputs: Vec<NetId> = support.iter().map(|&v| ext_net(v)).collect();
        let nid = out.add_gate(stg.signal_name(*sig), GateKind::Complex(expr), inputs);
        debug_assert_eq!(nid, signal_nets[sig.index()].expect("reserved"));
    }
    DecomposedCircuit {
        netlist: out,
        signal_nets: signal_nets
            .into_iter()
            .map(|n| n.expect("assigned"))
            .collect(),
        new_nets,
    }
}

fn remap_to_positions(e: &Expr, support: &[usize]) -> Expr {
    match e {
        Expr::Const(b) => Expr::Const(*b),
        Expr::Var(v) => Expr::Var(support.iter().position(|&s| s == *v).expect("in support")),
        Expr::Not(i) => Expr::not(remap_to_positions(i, support)),
        Expr::And(p) => Expr::and(p.iter().map(|x| remap_to_positions(x, support)).collect()),
        Expr::Or(p) => Expr::or(p.iter().map(|x| remap_to_positions(x, support)).collect()),
    }
}
