//! A simple standard-cell library and technology mapper (§3.4).
//!
//! The mapper classifies every gate of a netlist against a fan-in-bounded
//! cell set (INV/BUF, AND/NAND, OR/NOR, AOI/OAI complexes, C-elements and
//! RS latches) and reports the cell binding, or the offending gates when a
//! function *"is too complex to be mapped into one gate available in the
//! library"* (§3.2's obstacle (a)).

use std::fmt;

use boolmin::Expr;

use crate::netlist::{GateKind, Netlist};

/// A gate library: which cells exist and the fan-in cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Library {
    /// Maximum inputs of any combinational cell.
    pub max_fanin: usize,
    /// Complex AOI/OAI cells (sum-of-products / product-of-sums up to the
    /// fan-in cap) are available, not just flat AND/OR.
    pub has_complex_cells: bool,
    /// C-elements are available.
    pub has_c_element: bool,
    /// RS latches are available.
    pub has_rs_latch: bool,
}

impl Library {
    /// The two-input library of Fig. 9 (*"mapping the control for READ
    /// cycle into two inputs gate library"*), with latches available.
    #[must_use]
    pub fn two_input() -> Self {
        Library {
            max_fanin: 2,
            has_complex_cells: false,
            has_c_element: true,
            has_rs_latch: true,
        }
    }

    /// A richer library with 4-input AOI cells.
    #[must_use]
    pub fn standard() -> Self {
        Library {
            max_fanin: 4,
            has_complex_cells: true,
            has_c_element: true,
            has_rs_latch: true,
        }
    }
}

/// The cell a gate was bound to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cell {
    /// Buffer (`BUF`) or inverter (`INV`).
    Inverter(bool),
    /// `ANDn` / `NANDn` (`negated` = NAND).
    And { fanin: usize, negated: bool },
    /// `ORn` / `NORn` (`negated` = NOR).
    Or { fanin: usize, negated: bool },
    /// A sum-of-products complex cell (`AOI`-class).
    Aoi { literals: usize },
    /// Muller C-element.
    CElement,
    /// RS latch.
    RsLatch,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Inverter(buf) => write!(f, "{}", if *buf { "BUF" } else { "INV" }),
            Cell::And { fanin, negated } => {
                write!(f, "{}{}", if *negated { "NAND" } else { "AND" }, fanin)
            }
            Cell::Or { fanin, negated } => {
                write!(f, "{}{}", if *negated { "NOR" } else { "OR" }, fanin)
            }
            Cell::Aoi { literals } => write!(f, "AOI[{literals}]"),
            Cell::CElement => write!(f, "C"),
            Cell::RsLatch => write!(f, "SR"),
        }
    }
}

/// A successful mapping: one cell per gate, netlist order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Cell bindings, indexed like `netlist.gates()`.
    pub cells: Vec<Cell>,
}

impl Mapping {
    /// Total cell count.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Rough area: literals for combinational cells, 3 for latches.
    #[must_use]
    pub fn area(&self) -> usize {
        self.cells
            .iter()
            .map(|c| match c {
                Cell::Inverter(_) => 1,
                Cell::And { fanin, .. } | Cell::Or { fanin, .. } => *fanin,
                Cell::Aoi { literals } => *literals,
                Cell::CElement | Cell::RsLatch => 3,
            })
            .sum()
    }
}

/// A gate that did not fit any cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnmappedGate {
    /// Index into `netlist.gates()`.
    pub gate: usize,
    /// Why it failed.
    pub reason: String,
}

/// Binds every gate of `netlist` to a cell of `library`.
///
/// # Errors
///
/// Returns the list of gates that fit no cell (too wide, disallowed latch,
/// or a complex function without complex cells).
pub fn map_to_library(netlist: &Netlist, library: &Library) -> Result<Mapping, Vec<UnmappedGate>> {
    let mut cells = Vec::with_capacity(netlist.num_gates());
    let mut failures = Vec::new();
    for (i, gate) in netlist.gates().iter().enumerate() {
        match classify(&gate.kind, gate.inputs.len(), library) {
            Ok(cell) => cells.push(cell),
            Err(reason) => failures.push(UnmappedGate { gate: i, reason }),
        }
    }
    if failures.is_empty() {
        Ok(Mapping { cells })
    } else {
        Err(failures)
    }
}

fn classify(kind: &GateKind, fanin: usize, lib: &Library) -> Result<Cell, String> {
    match kind {
        GateKind::CElement => {
            if lib.has_c_element {
                Ok(Cell::CElement)
            } else {
                Err("library has no C-element".to_owned())
            }
        }
        GateKind::SrLatch => {
            if lib.has_rs_latch {
                Ok(Cell::RsLatch)
            } else {
                Err("library has no RS latch".to_owned())
            }
        }
        GateKind::Complex(e) => {
            if fanin > lib.max_fanin {
                return Err(format!(
                    "fan-in {fanin} exceeds library cap {}",
                    lib.max_fanin
                ));
            }
            classify_expr(e, lib)
        }
    }
}

fn classify_expr(e: &Expr, lib: &Library) -> Result<Cell, String> {
    if let Some(cell) = simple_cell(e) {
        return Ok(cell);
    }
    if lib.has_complex_cells && is_sop(e) {
        return Ok(Cell::Aoi {
            literals: e.literal_count(),
        });
    }
    Err(format!("no cell implements {e}"))
}

/// Recognises BUF/INV/AND/OR/NAND/NOR shapes (literal inputs only).
fn simple_cell(e: &Expr) -> Option<Cell> {
    let is_literal = |x: &Expr| {
        matches!(x, Expr::Var(_)) || matches!(x, Expr::Not(i) if matches!(**i, Expr::Var(_)))
    };
    match e {
        Expr::Var(_) => Some(Cell::Inverter(true)),
        Expr::Not(inner) => match &**inner {
            Expr::Var(_) => Some(Cell::Inverter(false)),
            Expr::And(parts) if parts.iter().all(is_literal) => Some(Cell::And {
                fanin: parts.len(),
                negated: true,
            }),
            Expr::Or(parts) if parts.iter().all(is_literal) => Some(Cell::Or {
                fanin: parts.len(),
                negated: true,
            }),
            _ => None,
        },
        Expr::And(parts) if parts.iter().all(is_literal) => Some(Cell::And {
            fanin: parts.len(),
            negated: false,
        }),
        Expr::Or(parts) if parts.iter().all(is_literal) => Some(Cell::Or {
            fanin: parts.len(),
            negated: false,
        }),
        _ => None,
    }
}

/// `true` for two-level or-of-ands over literals.
fn is_sop(e: &Expr) -> bool {
    let is_literal = |x: &Expr| {
        matches!(x, Expr::Var(_)) || matches!(x, Expr::Not(i) if matches!(**i, Expr::Var(_)))
    };
    let is_product = |x: &Expr| match x {
        Expr::And(parts) => parts.iter().all(is_literal),
        other => is_literal(other),
    };
    match e {
        Expr::Or(parts) => parts.iter().all(is_product),
        other => is_product(other),
    }
}
