//! Logic synthesis of speed-independent circuits from STGs (§3 of the
//! DAC'98 tutorial).
//!
//! The synthesis pipeline mirrors §3's "main steps":
//!
//! 1. *Encode the SG so complete state coding holds* — [`csc`] resolves
//!    CSC conflicts by state-signal insertion (Fig. 7) or concurrency
//!    reduction (§2.1's two methods);
//! 2. *Derive the next-state functions* — [`regions`] computes
//!    excitation/quiescent regions, [`nextstate`] turns them into
//!    incompletely specified functions and minimised covers (§3.2);
//! 3. *Map the functions onto a netlist of gates* — [`complex_gate`]
//!    (atomic complex gates), [`latch_arch`] (C-element and RS-latch
//!    architectures, Fig. 8), [`decompose`] + [`library`] (fan-in bounded
//!    decomposition and technology mapping, §3.4, Fig. 9).
//!
//! The [`Netlist`] IR produced here is consumed by the `verify` crate
//! (speed-independence / conformance checking) and the `sim` crate
//! (event-driven simulation with hazard monitors).
//!
//! # Example: complex-gate synthesis of the VME READ controller
//!
//! ```
//! use stg::{examples, StateGraph};
//! use synth::complex_gate::synthesize_complex_gates;
//!
//! let spec = examples::vme_read_csc(); // CSC already resolved (Fig. 7)
//! let sg = StateGraph::build(&spec)?;
//! let circuit = synth::complex_gate::synthesize_complex_gates(&spec, &sg)?;
//! // §3.2: DTACK = D.
//! let dtack = spec.signal_by_name("DTACK").unwrap();
//! let eq = circuit.equation(dtack).unwrap();
//! assert_eq!(eq.cover.cubes().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod complex_gate;
pub mod csc;
pub mod decompose;
pub mod latch_arch;
pub mod library;
mod netlist;
pub mod nextstate;
pub mod par;
pub mod regions;

pub use netlist::{Gate, GateKind, NetId, Netlist};
pub use nextstate::{derive_function, Equation, SynthesisError};

#[cfg(test)]
mod tests;
