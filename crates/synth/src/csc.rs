//! Complete-state-coding resolution (§2.1, §3.1).
//!
//! The paper gives two methods for eliminating CSC conflicts:
//!
//! 1. *"inserting an additional state signal whose value should
//!    distinguish two conflict states"* — [`resolve_by_signal_insertion`]
//!    searches transition-splitting insertions of a fresh internal signal
//!    (Fig. 7 inserts `csc0+` right before `LDS+` and `csc0-` right before
//!    `D-`);
//! 2. *"concurrency reduction"* — [`resolve_by_concurrency_reduction`]
//!    adds an ordering arc that removes the conflicting state (the paper
//!    delays `DTACK-` until `LDS-` fires). *"The environment should
//!    usually stay untouched ... therefore delaying input signals is not
//!    allowed."*
//!
//! # The candidate sweep engine
//!
//! Every search here is a sweep over a candidate grid — `(t⁺, t⁻)`
//! insertion pairs, `a → b` ordering arcs — where each candidate builds
//! and validates a full state space. That makes the sweeps the flow's
//! dominant cost, so they run through one engine ([`SweepOptions`]) that
//!
//! * **parallelises** the grid on scoped work-stealing workers
//!   ([`crate::par`]), merging per-worker rankings deterministically so
//!   the output is byte-identical to a serial sweep at any thread count;
//! * **prunes** by conflict locality: a pair `(t⁺, t⁻)` whose inserted
//!   signal provably cannot distinguish a CSC-conflicting state pair is
//!   skipped before any space is built (see [`ConflictPruner`]'s
//!   internal docs for the soundness argument — pruning never changes
//!   the result set, only the work);
//! * **memoises** across candidates: the base specification's state
//!   space seeds the pruner instead of being rebuilt, the symbolic
//!   backend shares one BDD manager per worker across all of its
//!   candidate builds ([`stg::BuildContext`]), and the greedy loops
//!   carry the winning candidate's space into the next step instead of
//!   rebuilding it;
//! * **diagnoses** instead of dropping: candidates whose space exceeds
//!   [`SweepOptions::bound`] are counted in
//!   [`SweepStats::skipped_by_bound`] so callers can surface them (the
//!   pipeline emits a `FlowEvent`), never silently report "no CSC
//!   resolution" when one may exist beyond the bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use petri::reach::ReachError;
use petri::TransitionId;
use stg::{Backend, BuildContext, SignalEdge, SignalKind, StateSpace, Stg, StgError};

use crate::par;

/// Outcome of a successful CSC resolution.
#[derive(Debug, Clone)]
pub struct CscResolution {
    /// The transformed STG (CSC holds on its state graph).
    pub stg: Stg,
    /// Human-readable description of the applied transformation.
    pub description: String,
    /// State count of the new state graph.
    pub num_states: usize,
}

/// Outcome of a successful CSC resolution that carries the candidate's
/// already-built state space through to synthesis.
///
/// The search routines build and validate a full state space for every
/// candidate they rank; [`CscResolution`] used to drop that space, forcing
/// the flow driver to rebuild the winner's space from scratch before
/// synthesis. This sibling is deliberately **not** `Clone` (a
/// `Box<dyn StateSpace>` has no useful copy) so the space is moved, not
/// duplicated, on its way downstream.
#[derive(Debug)]
pub struct CscResolutionWithSpace {
    /// The transformed STG (CSC holds on its state space).
    pub stg: Stg,
    /// Human-readable description of the applied transformation.
    pub description: String,
    /// State count of the new state space.
    pub num_states: usize,
    /// The validated state space of `stg`, when the search still holds it
    /// (the ranking sweeps keep the spaces of the top
    /// [`SweepOptions::keep_spaces`] candidates to bound memory).
    pub space: Option<Box<dyn StateSpace>>,
}

impl From<CscResolutionWithSpace> for CscResolution {
    fn from(r: CscResolutionWithSpace) -> Self {
        CscResolution {
            stg: r.stg,
            description: r.description,
            num_states: r.num_states,
        }
    }
}

impl From<CscResolution> for CscResolutionWithSpace {
    fn from(r: CscResolution) -> Self {
        CscResolutionWithSpace {
            stg: r.stg,
            description: r.description,
            num_states: r.num_states,
            space: None,
        }
    }
}

// ---------------------------------------------------------------------
// Sweep configuration and diagnostics
// ---------------------------------------------------------------------

/// Configuration of the candidate sweep engine.
///
/// `threads` and `prune` can never change a sweep's *candidates* — only
/// its wall-clock cost (the parity tests assert byte-identical output).
/// `bound` can change them: a candidate whose state space exceeds it is
/// skipped (and counted). The flow's cache keys salt `bound` and also
/// `prune` (the diagnostic counters in the cached event log depend on
/// it) but never `threads`, which is fully output-neutral.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads for the candidate grid; `0` = one per core.
    pub threads: usize,
    /// Per-candidate state-space bound. Candidates above it are counted
    /// in [`SweepStats::skipped_by_bound`], never silently dropped.
    pub bound: usize,
    /// Conflict-locality pruning: skip `(t⁺, t⁻)` pairs that provably
    /// cannot separate (any / all, depending on the search) conflicting
    /// state pairs, before building their space.
    pub prune: bool,
    /// How many top-ranked candidates keep their validated state space
    /// (memory bound: one full space each). The flow driver sets this to
    /// its backtracking depth so no tried candidate is ever rebuilt.
    pub keep_spaces: usize,
}

/// The default per-candidate state bound of the CSC sweeps.
///
/// Deliberately tighter than the single-build default
/// ([`stg::DEFAULT_STATE_BOUND`], 1 000 000): a sweep builds hundreds of
/// candidate spaces, and a candidate several times larger than its base
/// specification is never a useful resolution. Standalone `build` calls
/// use the larger bound; only this one participates in cache keys
/// (candidates above it are skipped — and counted, never silently
/// dropped).
pub const DEFAULT_SWEEP_BOUND: usize = 200_000;

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            bound: DEFAULT_SWEEP_BOUND,
            prune: true,
            keep_spaces: 1,
        }
    }
}

impl SweepOptions {
    /// This configuration with a different space-retention count.
    #[must_use]
    pub fn with_keep_spaces(mut self, keep_spaces: usize) -> Self {
        self.keep_spaces = keep_spaces;
        self
    }
}

/// Deterministic counters of one sweep: how the candidate grid was cut
/// down. Independent of the thread count by construction (every grid
/// item is classified identically no matter which worker takes it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Total candidate pairs in the grid.
    pub grid: usize,
    /// Pairs skipped by conflict-locality pruning (no space built).
    pub pruned: usize,
    /// Pairs whose space was actually built and validated.
    pub evaluated: usize,
    /// Pairs skipped because their space exceeded [`SweepOptions::bound`].
    pub skipped_by_bound: usize,
    /// Pairs that passed every check (ranked candidates / greedy moves).
    pub accepted: usize,
}

impl SweepStats {
    fn absorb(&mut self, other: SweepStats) {
        self.grid += other.grid;
        self.pruned += other.pruned;
        self.evaluated += other.evaluated;
        self.skipped_by_bound += other.skipped_by_bound;
        self.accepted += other.accepted;
    }
}

/// Result of [`insertion_sweep`]: the ranked candidates plus the
/// engine's diagnostics.
#[derive(Debug)]
pub struct Sweep {
    /// Acceptable insertions, best first (see [`insertion_candidates`]
    /// for the ranking).
    pub candidates: Vec<CscResolutionWithSpace>,
    /// What the engine did to the grid.
    pub stats: SweepStats,
}

// ---------------------------------------------------------------------
// Conflict-locality pruning
// ---------------------------------------------------------------------

/// Decides, from the *base* specification's state space alone, which
/// insertion pairs `(t⁺, t⁻)` cannot separate a CSC-conflicting state
/// pair — before any candidate space is built.
///
/// Soundness: the inserted signal rises just before `t⁺` and falls just
/// before `t⁻`, so its value only changes when one of them fires. If the
/// base space has a path between two conflicting states `s₁ → s₂` that
/// fires neither `t⁺` nor `t⁻`, then the transformed STG reaches images
/// of both states with the *same* inserted-signal value (the insertion
/// only delays `t⁺`/`t⁻`; every other transition's preset is untouched,
/// so the avoiding path replays verbatim). Those images still share a
/// code, and their non-input excitations still differ — any excitation
/// "lost" by delaying `t⁺`/`t⁻` reappears as an excitation of the
/// inserted signal itself, with the edge polarity ruling out accidental
/// agreement. The pair therefore still violates CSC and the candidate
/// would be rejected by the full check; skipping it changes nothing but
/// the work. (Candidates whose transformed STG fails to build — e.g. the
/// insertion makes it inconsistent — are rejected by both paths alike.)
struct ConflictPruner<'a> {
    space: &'a dyn StateSpace,
    /// CSC-conflicting state pairs of the base space.
    conflicts: Vec<(usize, usize)>,
}

/// Duplication excess (states beyond distinct codes) above which the
/// pruner declines to extract conflict witnesses from a resident-BDD
/// space (see [`ConflictPruner::new`]).
const PRUNER_WITNESS_LIMIT: u128 = 4096;

/// Per-worker reusable BFS scratch for the pruner: generation-stamped
/// visited marks plus the work queue, so the per-pair reachability
/// probes allocate nothing after a worker's first call.
#[derive(Default)]
struct PruneScratch {
    stamp: u64,
    visited: Vec<u64>,
    queue: VecDeque<usize>,
}

impl<'a> ConflictPruner<'a> {
    /// A pruner over the base space's conflicts; `None` when the space
    /// has no CSC conflicts (nothing to reason about — prune nothing).
    fn new(stg: &Stg, space: &'a dyn StateSpace) -> Option<Self> {
        if space.set_level_native() {
            // Conflict-pair extraction enumerates every duplicated-code
            // class; on a huge resident space that is unbounded witness
            // decoding for what is only a work-saving heuristic — run
            // the sweep unpruned instead.
            let excess = space
                .marking_count()
                .saturating_sub(space.distinct_code_count());
            if excess > PRUNER_WITNESS_LIMIT {
                return None;
            }
        }
        let conflicts: Vec<(usize, usize)> = stg::encoding::csc_conflicts(stg, space)
            .into_iter()
            .map(|c| c.states)
            .collect();
        (!conflicts.is_empty()).then_some(ConflictPruner { space, conflicts })
    }

    /// `true` if some path `from → to` avoids both split transitions.
    /// Backends that can enumerate run a scratch-reusing BFS over the
    /// transition structure (for the resident-BDD backend that means its
    /// small-space materialised view — the pruner fires one probe per
    /// (pair, conflict, direction), far too hot for per-probe fixed
    /// points); spaces too large to materialise fall back to the
    /// backend's symbolic avoid-path query
    /// ([`StateSpace::reaches_avoiding`]). Both answer the same
    /// reachability question, so pruning decisions are
    /// backend-independent.
    fn connects_avoiding(
        &self,
        scratch: &mut PruneScratch,
        from: usize,
        to: usize,
        tp: TransitionId,
        tm: TransitionId,
    ) -> bool {
        if self.space.set_level_native() && self.space.num_states() > stg::MATERIALISE_LIMIT {
            return self.space.reaches_avoiding(from, to, (tp, tm));
        }
        let ts = self.space.ts();
        scratch.visited.resize(ts.num_states(), 0);
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        scratch.queue.clear();
        scratch.visited[from] = stamp;
        scratch.queue.push_back(from);
        while let Some(s) = scratch.queue.pop_front() {
            for (&t, succ) in ts.successors(s) {
                if t == tp || t == tm {
                    continue;
                }
                if succ == to {
                    return true;
                }
                if scratch.visited[succ] != stamp {
                    scratch.visited[succ] = stamp;
                    scratch.queue.push_back(succ);
                }
            }
        }
        false
    }

    /// The conflict pair stays conflicting under `(tp, tm)`: a path
    /// avoiding both split transitions connects its states (in either
    /// direction), forcing equal inserted-signal values on their images.
    fn unseparated(
        &self,
        scratch: &mut PruneScratch,
        pair: (usize, usize),
        tp: TransitionId,
        tm: TransitionId,
    ) -> bool {
        self.connects_avoiding(scratch, pair.0, pair.1, tp, tm)
            || self.connects_avoiding(scratch, pair.1, pair.0, tp, tm)
    }

    /// At least one conflict survives `(tp, tm)` — the insertion can
    /// never reach full CSC, so the exhaustive sweep may skip it.
    fn any_unseparated(
        &self,
        scratch: &mut PruneScratch,
        tp: TransitionId,
        tm: TransitionId,
    ) -> bool {
        self.conflicts
            .iter()
            .any(|&p| self.unseparated(scratch, p, tp, tm))
    }

    /// *Every* conflict survives `(tp, tm)` — the insertion cannot even
    /// reduce the conflict count, so the greedy progress-seeking loops
    /// may skip it.
    fn all_unseparated(
        &self,
        scratch: &mut PruneScratch,
        tp: TransitionId,
        tm: TransitionId,
    ) -> bool {
        self.conflicts
            .iter()
            .all(|&p| self.unseparated(scratch, p, tp, tm))
    }
}

// ---------------------------------------------------------------------
// Signal-insertion sweep
// ---------------------------------------------------------------------

/// Attempts to restore CSC by inserting one internal state signal.
///
/// The search space is pairs `(t⁺, t⁻)` of non-input transitions: the new
/// signal's rising edge is inserted *before* `t⁺` (splitting all of its
/// input arcs) and its falling edge before `t⁻`. A candidate is accepted
/// when the transformed STG is consistent, safe, CSC, deadlock-free and
/// output-persistent. Among acceptable candidates the one with the fewest
/// states is returned (deterministic tie-break on transition ids).
///
/// Returns `None` when no single-signal insertion of this shape works —
/// larger controllers may need multiple signals; apply repeatedly.
#[must_use]
pub fn resolve_by_signal_insertion(stg: &Stg) -> Option<CscResolution> {
    resolve_by_signal_insertion_with(stg, Backend::Explicit).map(Into::into)
}

/// [`resolve_by_signal_insertion`] over a chosen state-space backend.
///
/// The winning candidate carries its validated state space
/// ([`CscResolutionWithSpace::space`]), as does the no-op resolution
/// when CSC already holds — callers never need to rebuild it.
#[must_use]
pub fn resolve_by_signal_insertion_with(
    stg: &Stg,
    backend: Backend,
) -> Option<CscResolutionWithSpace> {
    let sg = backend.build(stg).ok()?;
    if stg::encoding::has_csc(stg, &*sg) {
        return Some(CscResolutionWithSpace {
            stg: stg.clone(),
            description: "CSC already holds; no insertion needed".to_owned(),
            num_states: sg.num_states(),
            space: Some(sg),
        });
    }
    insertion_sweep_from(stg, backend, &SweepOptions::default(), Some(&*sg))
        .candidates
        .into_iter()
        .next()
}

/// All acceptable single-signal insertions, best first.
///
/// Candidates are ranked by `(state count, synthesised literal cost,
/// transition ids)`: among equally small state graphs the insertion with
/// the cheapest logic wins. Several rankings can tie up to signal
/// polarity (the paper's `csc0` and its complement are both returned);
/// downstream architecture-specific validation picks between them (see
/// the flow driver).
#[must_use]
pub fn insertion_candidates(stg: &Stg) -> Vec<CscResolution> {
    insertion_candidates_with(stg, Backend::Explicit)
        .into_iter()
        .map(Into::into)
        .collect()
}

/// [`insertion_candidates`] over a chosen state-space backend.
///
/// The best candidate carries its validated state space
/// ([`CscResolutionWithSpace::space`]) so the flow driver does not
/// rebuild it before synthesis; runner-up candidates beyond
/// [`SweepOptions::keep_spaces`] carry `None` (keeping every swept space
/// alive would be O(T²) memory).
#[must_use]
pub fn insertion_candidates_with(stg: &Stg, backend: Backend) -> Vec<CscResolutionWithSpace> {
    insertion_sweep(stg, backend, &SweepOptions::default()).candidates
}

/// The full candidate sweep with explicit engine configuration; builds
/// the base state space itself when pruning needs it.
#[must_use]
pub fn insertion_sweep(stg: &Stg, backend: Backend, options: &SweepOptions) -> Sweep {
    insertion_sweep_from(stg, backend, options, None)
}

/// [`insertion_sweep`] seeded with the base specification's already-built
/// state space (the memoising entry point used by the flow driver: the
/// check stage's space feeds the pruner instead of being rebuilt).
///
/// Output is byte-identical for any `threads` setting and for pruned vs
/// unpruned runs; see [`SweepOptions`].
#[must_use]
pub fn insertion_sweep_from(
    stg: &Stg,
    backend: Backend,
    options: &SweepOptions,
    base: Option<&dyn StateSpace>,
) -> Sweep {
    let splittable: Vec<TransitionId> = stg
        .net()
        .transitions()
        .filter(|&t| {
            stg.label(t)
                .is_some_and(|l| stg.signal_kind(l.signal).is_non_input())
        })
        .collect();
    let mut pairs: Vec<(TransitionId, TransitionId)> =
        Vec::with_capacity(splittable.len() * splittable.len().saturating_sub(1));
    for &tp in &splittable {
        for &tm in &splittable {
            if tp != tm {
                pairs.push((tp, tm));
            }
        }
    }

    // The pruner wants the base space; reuse the caller's, build one
    // only when pruning is on and nothing was supplied. A base that
    // fails to build simply disables pruning (the sweep itself never
    // needed it).
    let owned_base: Option<Box<dyn StateSpace>> = match (&base, options.prune) {
        (None, true) => backend.build(stg).ok(),
        _ => None,
    };
    let base_ref: Option<&dyn StateSpace> = base.or(owned_base.as_deref());
    let pruner = if options.prune {
        base_ref.and_then(|space| ConflictPruner::new(stg, space))
    } else {
        None
    };

    type Key = (usize, usize, TransitionId, TransitionId);
    struct Acc {
        ranked: Vec<(Key, Stg)>,
        /// Local best spaces, sorted by key, truncated to `keep_spaces`.
        spaces: Vec<(Key, Box<dyn StateSpace>)>,
        ctx: BuildContext,
        scratch: PruneScratch,
        stats: SweepStats,
    }
    let keep = options.keep_spaces;
    let accs = par::par_fold(
        &pairs,
        options.threads,
        || Acc {
            ranked: Vec::new(),
            spaces: Vec::new(),
            ctx: BuildContext::default(),
            scratch: PruneScratch::default(),
            stats: SweepStats::default(),
        },
        |acc, _i, &(tp, tm)| {
            if let Some(pruner) = &pruner {
                if pruner.any_unseparated(&mut acc.scratch, tp, tm) {
                    acc.stats.pruned += 1;
                    return;
                }
            }
            acc.stats.evaluated += 1;
            let candidate = insert_state_signal(stg, tp, tm);
            let csg = match backend.build_bounded_in(&candidate, options.bound, &mut acc.ctx) {
                Ok(csg) => csg,
                Err(StgError::Reach(ReachError::StateLimit(_))) => {
                    acc.stats.skipped_by_bound += 1;
                    return;
                }
                Err(_) => return,
            };
            if !stg::encoding::has_csc(&candidate, &*csg) {
                return;
            }
            if csg.has_deadlock() {
                return;
            }
            if !stg::persistency::is_persistent(&candidate, &*csg) {
                return;
            }
            let states = csg.num_states();
            let Ok(equations) = crate::nextstate::all_equations(&candidate, &*csg) else {
                return;
            };
            let cost: usize = equations.iter().map(|e| e.cover.literal_count()).sum();
            let key = (states, cost, tp, tm);
            acc.stats.accepted += 1;
            acc.ranked.push((key, candidate));
            if keep > 0 {
                let at = acc.spaces.partition_point(|(k, _)| *k < key);
                if at < keep {
                    acc.spaces.insert(at, (key, csg));
                    acc.spaces.truncate(keep);
                }
            }
        },
    );

    // Deterministic merge: keys embed `(tp, tm)`, so the total order is
    // independent of how workers split the grid — the concatenated
    // ranking sorts to exactly the serial sweep's order, and the global
    // top-`keep_spaces` spaces are a subset of the workers' local tops.
    let mut stats = SweepStats::default();
    let mut ranked: Vec<(Key, Stg)> = Vec::new();
    let mut spaces: Vec<(Key, Box<dyn StateSpace>)> = Vec::new();
    for acc in accs {
        stats.absorb(acc.stats);
        ranked.extend(acc.ranked);
        spaces.extend(acc.spaces);
    }
    stats.grid = pairs.len();
    ranked.sort_by_key(|r| r.0);
    spaces.sort_by_key(|s| s.0);
    spaces.truncate(keep);

    let mut spaces = VecDeque::from(spaces);
    let candidates = ranked
        .into_iter()
        .map(|((num_states, cost, tp, tm), new_stg)| {
            let key = (num_states, cost, tp, tm);
            let space = match spaces.front() {
                Some((k, _)) if *k == key => spaces.pop_front().map(|(_, s)| s),
                _ => None,
            };
            CscResolutionWithSpace {
                description: format!(
                    "inserted csc signal: + before {}, - before {}",
                    stg.label_string(tp),
                    stg.label_string(tm)
                ),
                num_states,
                stg: new_stg,
                space,
            }
        })
        .collect();
    Sweep { candidates, stats }
}

/// Builds the STG with a fresh internal signal whose rising edge precedes
/// `before_plus` and whose falling edge precedes `before_minus` (the
/// transition-splitting insertion of §2.1/§3.1).
#[must_use]
pub fn insert_state_signal(
    stg: &Stg,
    before_plus: TransitionId,
    before_minus: TransitionId,
) -> Stg {
    // Rebuild the STG from scratch, mirroring nets and labels, adding the
    // new signal. Rebuilding keeps `StgBuilder` the only mutation path.
    let mut b = stg::StgBuilder::new(format!("{}-csc", stg.name()));
    // Signals.
    let mut signal_map = Vec::with_capacity(stg.num_signals());
    for s in stg.signals() {
        signal_map.push(b.add_signal(stg.signal_name(s), stg.signal_kind(s)));
    }
    let csc = b.add_signal(next_csc_name(stg), SignalKind::Internal);
    // Transitions.
    let net = stg.net();
    let mut t_map = Vec::with_capacity(net.num_transitions());
    for t in net.transitions() {
        let nt = match stg.label(t) {
            Some(l) => b.add_edge(signal_map[l.signal.index()], l.edge),
            None => b.add_dummy(net.transition_name(t)),
        };
        t_map.push(nt);
    }
    let csc_plus = b.add_edge(csc, SignalEdge::Rise);
    let csc_minus = b.add_edge(csc, SignalEdge::Fall);
    // Places and arcs. Input places of the split transitions are
    // redirected to the inserted edge; a fresh place then links it to the
    // original. Shared places (choice places — more than one consumer)
    // are left untouched so the insertion never competes with, and can
    // never disable, the other branch of a choice.
    for p in net.places() {
        let np = b.add_place(net.place_name(p), net.initial_tokens(p));
        let shared = net.place_postset(p).len() > 1;
        for &t in net.place_preset(p) {
            b.arc_tp(t_map[t.index()], np);
        }
        for &t in net.place_postset(p) {
            let target = if t == before_plus && !shared {
                csc_plus
            } else if t == before_minus && !shared {
                csc_minus
            } else {
                t_map[t.index()]
            };
            b.arc_pt(np, target);
        }
    }
    // Link the inserted edges to the originals.
    let link_p = b.add_place("csc_plus_link", 0);
    b.arc_tp(csc_plus, link_p);
    b.arc_pt(link_p, t_map[before_plus.index()]);
    let link_m = b.add_place("csc_minus_link", 0);
    b.arc_tp(csc_minus, link_m);
    b.arc_pt(link_m, t_map[before_minus.index()]);
    b.build()
}

fn next_csc_name(stg: &Stg) -> String {
    let mut i = 0;
    loop {
        let name = format!("csc{i}");
        if stg.signal_by_name(&name).is_none() {
            return name;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Concurrency-reduction sweep
// ---------------------------------------------------------------------

/// Attempts to restore CSC by concurrency reduction: adding one causal arc
/// `a → b` (with `b` non-input, so the environment is untouched) that
/// removes the conflicting states.
///
/// Accepts the first candidate (in deterministic transition order) whose
/// transformed STG is consistent, safe, CSC, deadlock-free,
/// output-persistent and whose state count shrinks.
#[must_use]
pub fn resolve_by_concurrency_reduction(stg: &Stg) -> Option<CscResolution> {
    resolve_by_concurrency_reduction_with(stg, Backend::Explicit).map(Into::into)
}

/// [`resolve_by_concurrency_reduction`] over a chosen state-space
/// backend; the accepted candidate carries its validated state space.
#[must_use]
pub fn resolve_by_concurrency_reduction_with(
    stg: &Stg,
    backend: Backend,
) -> Option<CscResolutionWithSpace> {
    let sg = backend.build(stg).ok()?;
    if stg::encoding::has_csc(stg, &*sg) {
        return Some(CscResolutionWithSpace {
            stg: stg.clone(),
            description: "CSC already holds; no reduction needed".to_owned(),
            num_states: sg.num_states(),
            space: Some(sg),
        });
    }
    concurrency_reduction_sweep(stg, backend, &SweepOptions::default(), Some(&*sg)).0
}

/// The ordering-arc sweep with explicit engine configuration.
///
/// Returns the first acceptable candidate in grid order — the same
/// winner the serial scan finds — along with deterministic sweep
/// diagnostics. The scan keeps the serial search's early exit in
/// parallel form: once some worker accepts grid index `w`, indices
/// beyond the best accepted one are skipped (a shared atomic
/// best-index), and the reported counters cover exactly the indices up
/// to the winner, so they are identical at any thread count. `base` is
/// the already-built state space of `stg` when the caller has one (the
/// state count to beat); it is built once here otherwise. The caller is
/// expected to have already established that CSC fails on the base.
#[must_use]
pub fn concurrency_reduction_sweep(
    stg: &Stg,
    backend: Backend,
    options: &SweepOptions,
    base: Option<&dyn StateSpace>,
) -> (Option<CscResolutionWithSpace>, SweepStats) {
    let owned_base: Option<Box<dyn StateSpace>> = match &base {
        Some(_) => None,
        None => backend.build(stg).ok(),
    };
    let Some(base_ref) = base.or(owned_base.as_deref()) else {
        return (None, SweepStats::default());
    };
    let base_states = base_ref.num_states();

    let transitions: Vec<TransitionId> = stg.net().transitions().collect();
    let mut pairs: Vec<(TransitionId, TransitionId)> = Vec::new();
    for &a in &transitions {
        for &b_t in &transitions {
            if a == b_t {
                continue;
            }
            // Only non-input transitions may be delayed.
            let delayable = stg
                .label(b_t)
                .is_some_and(|l| stg.signal_kind(l.signal).is_non_input());
            if delayable {
                pairs.push((a, b_t));
            }
        }
    }

    /// How one evaluated grid index ended (for deterministic counting).
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Outcome {
        Rejected,
        SkippedByBound,
        Accepted,
    }
    struct Acc {
        /// Lowest grid index accepted by this worker, with its artifacts.
        best: Option<(usize, CscResolutionWithSpace)>,
        /// Per-index outcomes; filtered to `index ≤ winner` at merge so
        /// racy evaluations beyond the winner never leak into stats.
        outcomes: Vec<(usize, Outcome)>,
        ctx: BuildContext,
    }
    // The early-exit signal: the lowest grid index accepted so far. It
    // only ever shrinks towards the final winner, and every index at or
    // below the final winner is always evaluated (the skip test can
    // only fire for indices above some accepted one), so the winner and
    // the ≤-winner counters are thread-independent.
    let best_seen = AtomicUsize::new(usize::MAX);
    let accs = par::par_fold(
        &pairs,
        options.threads,
        || Acc {
            best: None,
            outcomes: Vec::new(),
            ctx: BuildContext::default(),
        },
        |acc, i, &(a, b_t)| {
            if i > best_seen.load(Ordering::Relaxed) {
                return; // a better candidate is already accepted
            }
            let candidate = add_ordering_arc(stg, a, b_t);
            let csg = match backend.build_bounded_in(&candidate, options.bound, &mut acc.ctx) {
                Ok(csg) => csg,
                Err(StgError::Reach(ReachError::StateLimit(_))) => {
                    acc.outcomes.push((i, Outcome::SkippedByBound));
                    return;
                }
                Err(_) => {
                    acc.outcomes.push((i, Outcome::Rejected));
                    return;
                }
            };
            let acceptable = stg::encoding::has_csc(&candidate, &*csg)
                && !csg.has_deadlock()
                && stg::persistency::is_persistent(&candidate, &*csg)
                && csg.num_states() < base_states; // must be a reduction
            if !acceptable {
                acc.outcomes.push((i, Outcome::Rejected));
                return;
            }
            acc.outcomes.push((i, Outcome::Accepted));
            best_seen.fetch_min(i, Ordering::Relaxed);
            if acc.best.as_ref().is_none_or(|(bi, _)| i < *bi) {
                acc.best = Some((
                    i,
                    CscResolutionWithSpace {
                        description: format!(
                            "concurrency reduction: {} now waits for {}",
                            stg.label_string(b_t),
                            stg.label_string(a)
                        ),
                        num_states: csg.num_states(),
                        stg: candidate,
                        space: Some(csg),
                    },
                ));
            }
        },
    );

    let mut best: Option<(usize, CscResolutionWithSpace)> = None;
    let mut outcomes: Vec<(usize, Outcome)> = Vec::new();
    for acc in accs {
        outcomes.extend(acc.outcomes);
        if let Some((i, r)) = acc.best {
            if best.as_ref().is_none_or(|(bi, _)| i < *bi) {
                best = Some((i, r));
            }
        }
    }
    let winner_index = best.as_ref().map_or(usize::MAX, |(i, _)| *i);
    let mut stats = SweepStats {
        grid: pairs.len(),
        ..SweepStats::default()
    };
    for (i, outcome) in outcomes {
        if i > winner_index {
            continue; // evaluated only by losing a race with the winner
        }
        stats.evaluated += 1;
        match outcome {
            Outcome::Rejected => {}
            Outcome::SkippedByBound => stats.skipped_by_bound += 1,
            Outcome::Accepted => stats.accepted += 1,
        }
    }
    (best.map(|(_, r)| r), stats)
}

/// Adds a causal place `a → b`, marked so the *first* firing of `b` is
/// already permitted when `a` precedes it in the initial marking's future
/// (heuristic: unmarked; candidates that deadlock are rejected upstream).
#[must_use]
pub fn add_ordering_arc(stg: &Stg, a: TransitionId, b_t: TransitionId) -> Stg {
    let mut b = stg.clone().into_builder();
    b.connect(a, b_t);
    b.build()
}

// ---------------------------------------------------------------------
// Greedy multi-step searches
// ---------------------------------------------------------------------

/// Iterative multi-signal CSC resolution: inserts state signals one at a
/// time, each step picking the insertion that most reduces the number of
/// CSC-conflicting state pairs (ties broken by state count and synthesised
/// literal cost), until CSC holds or `max_signals` insertions were made.
///
/// Controllers like the READ+WRITE specification of Fig. 5 need more than
/// one state signal; this is the standard greedy loop around the
/// single-signal search.
#[must_use]
pub fn resolve_iteratively(stg: &Stg, max_signals: usize) -> Option<CscResolution> {
    resolve_iteratively_with(stg, max_signals, Backend::Explicit)
}

/// [`resolve_iteratively`] over a chosen state-space backend.
#[must_use]
pub fn resolve_iteratively_with(
    stg: &Stg,
    max_signals: usize,
    backend: Backend,
) -> Option<CscResolution> {
    resolve_iteratively_sweep(stg, max_signals, backend, &SweepOptions::default())
        .0
        .map(Into::into)
}

/// [`resolve_iteratively`] through the sweep engine: each greedy step
/// evaluates its insertion grid in parallel (pruned by conflict
/// locality) and carries the chosen candidate's state space into the
/// next step instead of rebuilding it.
#[must_use]
pub fn resolve_iteratively_sweep(
    stg: &Stg,
    max_signals: usize,
    backend: Backend,
    options: &SweepOptions,
) -> (Option<CscResolutionWithSpace>, SweepStats) {
    let mut stats = SweepStats::default();
    let mut current = stg.clone();
    let mut descriptions: Vec<String> = Vec::new();
    let mut carried: Option<Box<dyn StateSpace>> = None;
    let mut base_ctx = BuildContext::default();
    for _ in 0..=max_signals {
        let sg: Box<dyn StateSpace> = match carried.take() {
            Some(sg) => sg,
            None => match backend.build_bounded_in(&current, options.bound, &mut base_ctx) {
                Ok(sg) => sg,
                Err(e) => {
                    // A base specification over the bound is itself a
                    // bound skip — report it, don't silently give up.
                    if matches!(e, StgError::Reach(ReachError::StateLimit(_))) {
                        stats.skipped_by_bound += 1;
                    }
                    return (None, stats);
                }
            },
        };
        let conflicts = stg::encoding::csc_conflict_pair_count(&current, &*sg);
        if conflicts == 0 {
            return (
                Some(CscResolutionWithSpace {
                    num_states: sg.num_states(),
                    space: Some(sg),
                    stg: current,
                    description: if descriptions.is_empty() {
                        "CSC already holds; no insertion needed".to_owned()
                    } else {
                        descriptions.join("; ")
                    },
                }),
                stats,
            );
        }
        if descriptions.len() == max_signals {
            return (None, stats);
        }
        // Each step's move is keyed `(remaining conflicts, states,
        // tie-break on transition ids)` — a total order, so the parallel
        // minimum equals the serial scan's choice.
        type Key = (usize, usize, usize);
        let step = greedy_insertion_step::<Key>(
            &current,
            backend,
            options,
            &*sg,
            conflicts,
            |remaining, states, tp, tm| (remaining, states, tp.index() * 1000 + tm.index()),
        );
        stats.absorb(step.stats);
        let Some((_, _, cand, desc, space)) = step.best else {
            return (None, stats);
        };
        descriptions.push(desc);
        current = cand;
        carried = Some(space);
    }
    (None, stats)
}

/// The per-step insertion-grid evaluation shared by the greedy searches:
/// evaluates every `(t⁺, t⁻)` move in parallel (pruned: a move that
/// provably cannot separate *any* conflict cannot reduce the conflict
/// count — see [`ConflictPruner::all_unseparated`]) and returns the
/// progress-making move with the smallest key.
struct GreedyStep<K> {
    /// The winning move, when one exists.
    best: BestMove<K>,
    stats: SweepStats,
}

/// The best greedy move seen so far: `(key, grid index, transformed
/// STG, move description, the move's validated state space)`.
type BestMove<K> = Option<(K, usize, Stg, String, Box<dyn StateSpace>)>;

/// Keeps the move with the smallest `(key, grid index)` — the one
/// tie-break every greedy merge shares, so the parallel minimum always
/// reproduces the serial scan's choice.
fn merge_best_move<K: Ord + Copy>(best: &mut BestMove<K>, other: BestMove<K>) {
    if let Some(b) = other {
        if best
            .as_ref()
            .is_none_or(|(bk, bi, ..)| (b.0, b.1) < (*bk, *bi))
        {
            *best = Some(b);
        }
    }
}

fn greedy_insertion_step<K: Ord + Copy + Send>(
    current: &Stg,
    backend: Backend,
    options: &SweepOptions,
    sg: &dyn StateSpace,
    conflicts: usize,
    key_of: impl Fn(usize, usize, TransitionId, TransitionId) -> K + Sync,
) -> GreedyStep<K> {
    let splittable: Vec<TransitionId> = current
        .net()
        .transitions()
        .filter(|&t| {
            current
                .label(t)
                .is_some_and(|l| current.signal_kind(l.signal).is_non_input())
        })
        .collect();
    let mut pairs: Vec<(TransitionId, TransitionId)> = Vec::new();
    for &tp in &splittable {
        for &tm in &splittable {
            if tp != tm {
                pairs.push((tp, tm));
            }
        }
    }
    let pruner = if options.prune {
        ConflictPruner::new(current, sg)
    } else {
        None
    };

    struct Acc<K> {
        best: BestMove<K>,
        ctx: BuildContext,
        scratch: PruneScratch,
        stats: SweepStats,
    }
    let accs = par::par_fold(
        &pairs,
        options.threads,
        || Acc::<K> {
            best: None,
            ctx: BuildContext::default(),
            scratch: PruneScratch::default(),
            stats: SweepStats::default(),
        },
        |acc, i, &(tp, tm)| {
            if let Some(pruner) = &pruner {
                if pruner.all_unseparated(&mut acc.scratch, tp, tm) {
                    acc.stats.pruned += 1;
                    return;
                }
            }
            acc.stats.evaluated += 1;
            let candidate = insert_state_signal(current, tp, tm);
            let csg = match backend.build_bounded_in(&candidate, options.bound, &mut acc.ctx) {
                Ok(csg) => csg,
                Err(StgError::Reach(ReachError::StateLimit(_))) => {
                    acc.stats.skipped_by_bound += 1;
                    return;
                }
                Err(_) => return,
            };
            if csg.has_deadlock() {
                return;
            }
            if !stg::persistency::is_persistent(&candidate, &*csg) {
                return;
            }
            let remaining = stg::encoding::csc_conflict_pair_count(&candidate, &*csg);
            if remaining >= conflicts {
                return; // must make progress
            }
            acc.stats.accepted += 1;
            let key = key_of(remaining, csg.num_states(), tp, tm);
            if acc
                .best
                .as_ref()
                .is_none_or(|(bk, bi, ..)| (key, i) < (*bk, *bi))
            {
                let desc = format!(
                    "inserted csc signal: + before {}, - before {}",
                    current.label_string(tp),
                    current.label_string(tm)
                );
                acc.best = Some((key, i, candidate, desc, csg));
            }
        },
    );

    let mut stats = SweepStats::default();
    let mut best: BestMove<K> = None;
    for acc in accs {
        stats.absorb(acc.stats);
        merge_best_move(&mut best, acc.best);
    }
    stats.grid = pairs.len();
    GreedyStep { best, stats }
}

/// Mixed greedy CSC resolution: at every step considers both concurrency
/// reductions (ordering arcs) and state-signal insertions, applies the
/// candidate that removes the most CSC-conflicting pairs, and repeats
/// until CSC holds (or `max_steps` transformations were applied).
///
/// This combines the paper's two §2.1 methods; controllers with choice
/// (the READ+WRITE specification of Fig. 5) typically need a reduction
/// for the cross-branch conflicts and an insertion for the in-branch one.
#[must_use]
pub fn resolve_mixed(stg: &Stg, max_steps: usize) -> Option<CscResolution> {
    resolve_mixed_with(stg, max_steps, Backend::Explicit).map(Into::into)
}

/// [`resolve_mixed`] over a chosen state-space backend; the final
/// conflict-free specification carries its validated state space.
#[must_use]
pub fn resolve_mixed_with(
    stg: &Stg,
    max_steps: usize,
    backend: Backend,
) -> Option<CscResolutionWithSpace> {
    resolve_mixed_sweep(stg, max_steps, backend, &SweepOptions::default(), None).0
}

/// [`resolve_mixed`] through the sweep engine: every step's combined
/// move grid (ordering arcs first, then insertions — the serial scan
/// order) is evaluated in parallel, insertion moves are pruned by
/// conflict locality, and the chosen move's state space is carried into
/// the next step instead of being rebuilt. `base`, when given, is the
/// already-built state space of `stg` (moved in — it seeds the first
/// step the same way).
#[must_use]
pub fn resolve_mixed_sweep(
    stg: &Stg,
    max_steps: usize,
    backend: Backend,
    options: &SweepOptions,
    base: Option<Box<dyn StateSpace>>,
) -> (Option<CscResolutionWithSpace>, SweepStats) {
    /// One move of the combined grid, in serial scan order.
    #[derive(Clone, Copy)]
    enum Move {
        Arc(TransitionId, TransitionId),
        Insert(TransitionId, TransitionId),
    }

    let mut stats = SweepStats::default();
    let mut current = stg.clone();
    let mut descriptions: Vec<String> = Vec::new();
    let mut carried: Option<Box<dyn StateSpace>> = base;
    let mut base_ctx = BuildContext::default();
    for _ in 0..=max_steps {
        let sg: Box<dyn StateSpace> = match carried.take() {
            Some(sg) => sg,
            None => match backend.build_bounded_in(&current, options.bound, &mut base_ctx) {
                Ok(sg) => sg,
                Err(e) => {
                    // A base specification over the bound is itself a
                    // bound skip — report it, don't silently give up.
                    if matches!(e, StgError::Reach(ReachError::StateLimit(_))) {
                        stats.skipped_by_bound += 1;
                    }
                    return (None, stats);
                }
            },
        };
        let conflicts = stg::encoding::csc_conflict_pair_count(&current, &*sg);
        if conflicts == 0 {
            return (
                Some(CscResolutionWithSpace {
                    num_states: sg.num_states(),
                    space: Some(sg),
                    stg: current,
                    description: if descriptions.is_empty() {
                        "CSC already holds".to_owned()
                    } else {
                        descriptions.join("; ")
                    },
                }),
                stats,
            );
        }
        if descriptions.len() == max_steps {
            return (None, stats);
        }

        let transitions: Vec<TransitionId> = current.net().transitions().collect();
        let splittable: Vec<TransitionId> = transitions
            .iter()
            .copied()
            .filter(|&t| {
                current
                    .label(t)
                    .is_some_and(|l| current.signal_kind(l.signal).is_non_input())
            })
            .collect();
        let mut moves: Vec<Move> = Vec::new();
        for &a in &transitions {
            for &b_t in &splittable {
                if a != b_t {
                    moves.push(Move::Arc(a, b_t));
                }
            }
        }
        for &tp in &splittable {
            for &tm in &splittable {
                if tp != tm {
                    moves.push(Move::Insert(tp, tm));
                }
            }
        }
        let pruner = if options.prune {
            ConflictPruner::new(&current, &*sg)
        } else {
            None
        };

        // Moves are scored `(remaining conflicts, states)`; ties fall to
        // the earliest move in scan order, so the parallel minimum over
        // `(key, grid index)` reproduces the serial scan exactly.
        type Key = (usize, usize);
        struct Acc {
            best: BestMove<Key>,
            ctx: BuildContext,
            scratch: PruneScratch,
            stats: SweepStats,
        }
        let current_ref = &current;
        let accs = par::par_fold(
            &moves,
            options.threads,
            || Acc {
                best: None,
                ctx: BuildContext::default(),
                scratch: PruneScratch::default(),
                stats: SweepStats::default(),
            },
            |acc, i, m| {
                let (cand, desc) = match *m {
                    Move::Arc(a, b_t) => (
                        add_ordering_arc(current_ref, a, b_t),
                        format!(
                            "concurrency reduction: {} waits for {}",
                            current_ref.label_string(b_t),
                            current_ref.label_string(a)
                        ),
                    ),
                    Move::Insert(tp, tm) => {
                        if let Some(pruner) = &pruner {
                            if pruner.all_unseparated(&mut acc.scratch, tp, tm) {
                                acc.stats.pruned += 1;
                                return;
                            }
                        }
                        (
                            insert_state_signal(current_ref, tp, tm),
                            format!(
                                "inserted csc signal: + before {}, - before {}",
                                current_ref.label_string(tp),
                                current_ref.label_string(tm)
                            ),
                        )
                    }
                };
                acc.stats.evaluated += 1;
                let csg = match backend.build_bounded_in(&cand, options.bound, &mut acc.ctx) {
                    Ok(csg) => csg,
                    Err(StgError::Reach(ReachError::StateLimit(_))) => {
                        acc.stats.skipped_by_bound += 1;
                        return;
                    }
                    Err(_) => return,
                };
                if csg.has_deadlock() {
                    return;
                }
                if !stg::persistency::is_persistent(&cand, &*csg) {
                    return;
                }
                let rem = stg::encoding::csc_conflict_pair_count(&cand, &*csg);
                if rem >= conflicts {
                    return;
                }
                acc.stats.accepted += 1;
                let key = (rem, csg.num_states());
                if acc
                    .best
                    .as_ref()
                    .is_none_or(|(bk, bi, ..)| (key, i) < (*bk, *bi))
                {
                    acc.best = Some((key, i, cand, desc, csg));
                }
            },
        );

        let mut best: BestMove<Key> = None;
        let mut step_stats = SweepStats::default();
        for acc in accs {
            step_stats.absorb(acc.stats);
            merge_best_move(&mut best, acc.best);
        }
        step_stats.grid = moves.len();
        stats.absorb(step_stats);
        let Some((_, _, next, desc, space)) = best else {
            return (None, stats);
        };
        descriptions.push(desc);
        current = next;
        carried = Some(space);
    }
    (None, stats)
}
