//! Complete-state-coding resolution (§2.1, §3.1).
//!
//! The paper gives two methods for eliminating CSC conflicts:
//!
//! 1. *"inserting an additional state signal whose value should
//!    distinguish two conflict states"* — [`resolve_by_signal_insertion`]
//!    searches transition-splitting insertions of a fresh internal signal
//!    (Fig. 7 inserts `csc0+` right before `LDS+` and `csc0-` right before
//!    `D-`);
//! 2. *"concurrency reduction"* — [`resolve_by_concurrency_reduction`]
//!    adds an ordering arc that removes the conflicting state (the paper
//!    delays `DTACK-` until `LDS-` fires). *"The environment should
//!    usually stay untouched ... therefore delaying input signals is not
//!    allowed."*

use petri::TransitionId;
use stg::{Backend, SignalEdge, SignalKind, StateSpace, Stg};

/// Outcome of a successful CSC resolution.
#[derive(Debug, Clone)]
pub struct CscResolution {
    /// The transformed STG (CSC holds on its state graph).
    pub stg: Stg,
    /// Human-readable description of the applied transformation.
    pub description: String,
    /// State count of the new state graph.
    pub num_states: usize,
}

/// Outcome of a successful CSC resolution that carries the candidate's
/// already-built state space through to synthesis.
///
/// The search routines build and validate a full state space for every
/// candidate they rank; [`CscResolution`] used to drop that space, forcing
/// the flow driver to rebuild the winner's space from scratch before
/// synthesis. This sibling is deliberately **not** `Clone` (a
/// `Box<dyn StateSpace>` has no useful copy) so the space is moved, not
/// duplicated, on its way downstream.
#[derive(Debug)]
pub struct CscResolutionWithSpace {
    /// The transformed STG (CSC holds on its state space).
    pub stg: Stg,
    /// Human-readable description of the applied transformation.
    pub description: String,
    /// State count of the new state space.
    pub num_states: usize,
    /// The validated state space of `stg`, when the search still holds it
    /// (the ranking sweeps keep only the winner's space to bound memory).
    pub space: Option<Box<dyn StateSpace>>,
}

impl From<CscResolutionWithSpace> for CscResolution {
    fn from(r: CscResolutionWithSpace) -> Self {
        CscResolution {
            stg: r.stg,
            description: r.description,
            num_states: r.num_states,
        }
    }
}

impl From<CscResolution> for CscResolutionWithSpace {
    fn from(r: CscResolution) -> Self {
        CscResolutionWithSpace {
            stg: r.stg,
            description: r.description,
            num_states: r.num_states,
            space: None,
        }
    }
}

/// Attempts to restore CSC by inserting one internal state signal.
///
/// The search space is pairs `(t⁺, t⁻)` of non-input transitions: the new
/// signal's rising edge is inserted *before* `t⁺` (splitting all of its
/// input arcs) and its falling edge before `t⁻`. A candidate is accepted
/// when the transformed STG is consistent, safe, CSC, deadlock-free and
/// output-persistent. Among acceptable candidates the one with the fewest
/// states is returned (deterministic tie-break on transition ids).
///
/// Returns `None` when no single-signal insertion of this shape works —
/// larger controllers may need multiple signals; apply repeatedly.
#[must_use]
pub fn resolve_by_signal_insertion(stg: &Stg) -> Option<CscResolution> {
    resolve_by_signal_insertion_with(stg, Backend::Explicit)
}

/// [`resolve_by_signal_insertion`] over a chosen state-space backend.
#[must_use]
pub fn resolve_by_signal_insertion_with(stg: &Stg, backend: Backend) -> Option<CscResolution> {
    let sg = backend.build(stg).ok()?;
    if stg::encoding::has_csc(stg, &*sg) {
        return Some(CscResolution {
            stg: stg.clone(),
            description: "CSC already holds; no insertion needed".to_owned(),
            num_states: sg.num_states(),
        });
    }
    insertion_candidates_with(stg, backend)
        .into_iter()
        .next()
        .map(Into::into)
}

/// All acceptable single-signal insertions, best first.
///
/// Candidates are ranked by `(state count, synthesised literal cost,
/// transition ids)`: among equally small state graphs the insertion with
/// the cheapest logic wins. Several rankings can tie up to signal
/// polarity (the paper's `csc0` and its complement are both returned);
/// downstream architecture-specific validation picks between them (see
/// the flow driver).
#[must_use]
pub fn insertion_candidates(stg: &Stg) -> Vec<CscResolution> {
    insertion_candidates_with(stg, Backend::Explicit)
        .into_iter()
        .map(Into::into)
        .collect()
}

/// [`insertion_candidates`] over a chosen state-space backend.
///
/// The best candidate carries its validated state space
/// ([`CscResolutionWithSpace::space`]) so the flow driver does not
/// rebuild it before synthesis; the runner-up candidates carry `None`
/// (keeping every swept space alive would be O(T²) memory).
#[must_use]
pub fn insertion_candidates_with(stg: &Stg, backend: Backend) -> Vec<CscResolutionWithSpace> {
    let splittable: Vec<TransitionId> = stg
        .net()
        .transitions()
        .filter(|&t| {
            stg.label(t)
                .is_some_and(|l| stg.signal_kind(l.signal).is_non_input())
        })
        .collect();
    type Key = (usize, usize, TransitionId, TransitionId);
    let mut ranked: Vec<(Key, Stg)> = Vec::new();
    let mut best_space: Option<(Key, Box<dyn StateSpace>)> = None;
    for &tp in &splittable {
        for &tm in &splittable {
            if tp == tm {
                continue;
            }
            let candidate = insert_state_signal(stg, tp, tm);
            let Ok(csg) = backend.build_bounded(&candidate, 100_000) else {
                continue;
            };
            if !stg::encoding::has_csc(&candidate, &*csg) {
                continue;
            }
            if !csg.ts().deadlocks().is_empty() {
                continue;
            }
            if !stg::persistency::is_persistent(&candidate, &*csg) {
                continue;
            }
            let states = csg.num_states();
            let Ok(equations) = crate::nextstate::all_equations(&candidate, &*csg) else {
                continue;
            };
            let cost: usize = equations.iter().map(|e| e.cover.literal_count()).sum();
            let key = (states, cost, tp, tm);
            if best_space.as_ref().is_none_or(|(bk, _)| key < *bk) {
                best_space = Some((key, csg));
            }
            ranked.push((key, candidate));
        }
    }
    ranked.sort_by_key(|r| r.0);
    let mut winner_space = best_space
        .and_then(|(key, space)| (ranked.first().map(|r| r.0) == Some(key)).then_some(space));
    ranked
        .into_iter()
        .map(
            |((num_states, _, tp, tm), new_stg)| CscResolutionWithSpace {
                description: format!(
                    "inserted csc signal: + before {}, - before {}",
                    stg.label_string(tp),
                    stg.label_string(tm)
                ),
                num_states,
                stg: new_stg,
                space: winner_space.take(),
            },
        )
        .collect()
}

/// Builds the STG with a fresh internal signal whose rising edge precedes
/// `before_plus` and whose falling edge precedes `before_minus` (the
/// transition-splitting insertion of §2.1/§3.1).
#[must_use]
pub fn insert_state_signal(
    stg: &Stg,
    before_plus: TransitionId,
    before_minus: TransitionId,
) -> Stg {
    // Rebuild the STG from scratch, mirroring nets and labels, adding the
    // new signal. Rebuilding keeps `StgBuilder` the only mutation path.
    let mut b = stg::StgBuilder::new(format!("{}-csc", stg.name()));
    // Signals.
    let mut signal_map = Vec::with_capacity(stg.num_signals());
    for s in stg.signals() {
        signal_map.push(b.add_signal(stg.signal_name(s), stg.signal_kind(s)));
    }
    let csc = b.add_signal(next_csc_name(stg), SignalKind::Internal);
    // Transitions.
    let net = stg.net();
    let mut t_map = Vec::with_capacity(net.num_transitions());
    for t in net.transitions() {
        let nt = match stg.label(t) {
            Some(l) => b.add_edge(signal_map[l.signal.index()], l.edge),
            None => b.add_dummy(net.transition_name(t)),
        };
        t_map.push(nt);
    }
    let csc_plus = b.add_edge(csc, SignalEdge::Rise);
    let csc_minus = b.add_edge(csc, SignalEdge::Fall);
    // Places and arcs. Input places of the split transitions are
    // redirected to the inserted edge; a fresh place then links it to the
    // original. Shared places (choice places — more than one consumer)
    // are left untouched so the insertion never competes with, and can
    // never disable, the other branch of a choice.
    for p in net.places() {
        let np = b.add_place(net.place_name(p), net.initial_tokens(p));
        let shared = net.place_postset(p).len() > 1;
        for &t in net.place_preset(p) {
            b.arc_tp(t_map[t.index()], np);
        }
        for &t in net.place_postset(p) {
            let target = if t == before_plus && !shared {
                csc_plus
            } else if t == before_minus && !shared {
                csc_minus
            } else {
                t_map[t.index()]
            };
            b.arc_pt(np, target);
        }
    }
    // Link the inserted edges to the originals.
    let link_p = b.add_place("csc_plus_link", 0);
    b.arc_tp(csc_plus, link_p);
    b.arc_pt(link_p, t_map[before_plus.index()]);
    let link_m = b.add_place("csc_minus_link", 0);
    b.arc_tp(csc_minus, link_m);
    b.arc_pt(link_m, t_map[before_minus.index()]);
    b.build()
}

fn next_csc_name(stg: &Stg) -> String {
    let mut i = 0;
    loop {
        let name = format!("csc{i}");
        if stg.signal_by_name(&name).is_none() {
            return name;
        }
        i += 1;
    }
}

/// Attempts to restore CSC by concurrency reduction: adding one causal arc
/// `a → b` (with `b` non-input, so the environment is untouched) that
/// removes the conflicting states.
///
/// Accepts the first candidate (in deterministic transition order) whose
/// transformed STG is consistent, safe, CSC, deadlock-free,
/// output-persistent and whose language is a subset of the original's
/// (checked on determinised label traces).
#[must_use]
pub fn resolve_by_concurrency_reduction(stg: &Stg) -> Option<CscResolution> {
    resolve_by_concurrency_reduction_with(stg, Backend::Explicit).map(Into::into)
}

/// [`resolve_by_concurrency_reduction`] over a chosen state-space
/// backend; the accepted candidate carries its validated state space.
#[must_use]
pub fn resolve_by_concurrency_reduction_with(
    stg: &Stg,
    backend: Backend,
) -> Option<CscResolutionWithSpace> {
    let sg = backend.build(stg).ok()?;
    if stg::encoding::has_csc(stg, &*sg) {
        return Some(CscResolutionWithSpace {
            stg: stg.clone(),
            description: "CSC already holds; no reduction needed".to_owned(),
            num_states: sg.num_states(),
            space: Some(sg),
        });
    }
    let transitions: Vec<TransitionId> = stg.net().transitions().collect();
    for &a in &transitions {
        for &b_t in &transitions {
            if a == b_t {
                continue;
            }
            // Only non-input transitions may be delayed.
            let delayable = stg
                .label(b_t)
                .is_some_and(|l| stg.signal_kind(l.signal).is_non_input());
            if !delayable {
                continue;
            }
            let candidate = add_ordering_arc(stg, a, b_t);
            let Ok(csg) = backend.build_bounded(&candidate, 100_000) else {
                continue;
            };
            if !stg::encoding::has_csc(&candidate, &*csg) {
                continue;
            }
            if !csg.ts().deadlocks().is_empty() {
                continue;
            }
            if !stg::persistency::is_persistent(&candidate, &*csg) {
                continue;
            }
            if csg.num_states() >= sg.num_states() {
                continue; // not a reduction
            }
            return Some(CscResolutionWithSpace {
                description: format!(
                    "concurrency reduction: {} now waits for {}",
                    stg.label_string(b_t),
                    stg.label_string(a)
                ),
                num_states: csg.num_states(),
                stg: candidate,
                space: Some(csg),
            });
        }
    }
    None
}

/// Adds a causal place `a → b`, marked so the *first* firing of `b` is
/// already permitted when `a` precedes it in the initial marking's future
/// (heuristic: unmarked; candidates that deadlock are rejected upstream).
#[must_use]
pub fn add_ordering_arc(stg: &Stg, a: TransitionId, b_t: TransitionId) -> Stg {
    let mut b = stg.clone().into_builder();
    b.connect(a, b_t);
    b.build()
}

/// Iterative multi-signal CSC resolution: inserts state signals one at a
/// time, each step picking the insertion that most reduces the number of
/// CSC-conflicting state pairs (ties broken by state count and synthesised
/// literal cost), until CSC holds or `max_signals` insertions were made.
///
/// Controllers like the READ+WRITE specification of Fig. 5 need more than
/// one state signal; this is the standard greedy loop around the
/// single-signal search.
#[must_use]
pub fn resolve_iteratively(stg: &Stg, max_signals: usize) -> Option<CscResolution> {
    resolve_iteratively_with(stg, max_signals, Backend::Explicit)
}

/// [`resolve_iteratively`] over a chosen state-space backend.
#[must_use]
pub fn resolve_iteratively_with(
    stg: &Stg,
    max_signals: usize,
    backend: Backend,
) -> Option<CscResolution> {
    let mut current = stg.clone();
    let mut descriptions: Vec<String> = Vec::new();
    for _ in 0..max_signals {
        let sg = backend.build_bounded(&current, 200_000).ok()?;
        let conflicts = stg::encoding::csc_conflicts(&current, &*sg).len();
        if conflicts == 0 {
            return Some(CscResolution {
                stg: current,
                description: if descriptions.is_empty() {
                    "CSC already holds; no insertion needed".to_owned()
                } else {
                    descriptions.join("; ")
                },
                num_states: sg.num_states(),
            });
        }
        let splittable: Vec<TransitionId> = current
            .net()
            .transitions()
            .filter(|&t| {
                current
                    .label(t)
                    .is_some_and(|l| current.signal_kind(l.signal).is_non_input())
            })
            .collect();
        let mut best: Option<((usize, usize, usize), Stg, String)> = None;
        for &tp in &splittable {
            for &tm in &splittable {
                if tp == tm {
                    continue;
                }
                let candidate = insert_state_signal(&current, tp, tm);
                let Ok(csg) = backend.build_bounded(&candidate, 200_000) else {
                    continue;
                };
                if !csg.ts().deadlocks().is_empty() {
                    continue;
                }
                if !stg::persistency::is_persistent(&candidate, &*csg) {
                    continue;
                }
                let remaining = stg::encoding::csc_conflicts(&candidate, &*csg).len();
                if remaining >= conflicts {
                    continue; // must make progress
                }
                let key = (remaining, csg.num_states(), tp.index() * 1000 + tm.index());
                if best.as_ref().is_none_or(|(bk, _, _)| key < *bk) {
                    let desc = format!(
                        "inserted csc signal: + before {}, - before {}",
                        current.label_string(tp),
                        current.label_string(tm)
                    );
                    best = Some((key, candidate, desc));
                }
            }
        }
        let (_, next, desc) = best?;
        descriptions.push(desc);
        current = next;
    }
    // Out of budget: accept only if CSC now holds.
    let sg = backend.build_bounded(&current, 200_000).ok()?;
    if stg::encoding::has_csc(&current, &*sg) {
        Some(CscResolution {
            stg: current,
            description: descriptions.join("; "),
            num_states: sg.num_states(),
        })
    } else {
        None
    }
}

/// Mixed greedy CSC resolution: at every step considers both concurrency
/// reductions (ordering arcs) and state-signal insertions, applies the
/// candidate that removes the most CSC-conflicting pairs, and repeats
/// until CSC holds (or `max_steps` transformations were applied).
///
/// This combines the paper's two §2.1 methods; controllers with choice
/// (the READ+WRITE specification of Fig. 5) typically need a reduction
/// for the cross-branch conflicts and an insertion for the in-branch one.
#[must_use]
pub fn resolve_mixed(stg: &Stg, max_steps: usize) -> Option<CscResolution> {
    resolve_mixed_with(stg, max_steps, Backend::Explicit).map(Into::into)
}

/// [`resolve_mixed`] over a chosen state-space backend; the final
/// conflict-free specification carries its validated state space.
#[must_use]
pub fn resolve_mixed_with(
    stg: &Stg,
    max_steps: usize,
    backend: Backend,
) -> Option<CscResolutionWithSpace> {
    let mut current = stg.clone();
    let mut descriptions: Vec<String> = Vec::new();
    for _ in 0..=max_steps {
        let sg = backend.build_bounded(&current, 200_000).ok()?;
        let conflicts = stg::encoding::csc_conflicts(&current, &*sg).len();
        if conflicts == 0 {
            return Some(CscResolutionWithSpace {
                stg: current,
                description: if descriptions.is_empty() {
                    "CSC already holds".to_owned()
                } else {
                    descriptions.join("; ")
                },
                num_states: sg.num_states(),
                space: Some(sg),
            });
        }
        if descriptions.len() == max_steps {
            return None;
        }
        // Candidate moves, scored by (remaining conflicts, states).
        let mut best: Option<((usize, usize), Stg, String)> = None;
        let consider =
            |cand: Stg, desc: String, best: &mut Option<((usize, usize), Stg, String)>| {
                let Ok(csg) = backend.build_bounded(&cand, 200_000) else {
                    return;
                };
                if !csg.ts().deadlocks().is_empty() {
                    return;
                }
                if !stg::persistency::is_persistent(&cand, &*csg) {
                    return;
                }
                let rem = stg::encoding::csc_conflicts(&cand, &*csg).len();
                if rem >= conflicts {
                    return;
                }
                let key = (rem, csg.num_states());
                if best.as_ref().is_none_or(|(bk, _, _)| key < *bk) {
                    *best = Some((key, cand, desc));
                }
            };
        let transitions: Vec<TransitionId> = current.net().transitions().collect();
        let splittable: Vec<TransitionId> = transitions
            .iter()
            .copied()
            .filter(|&t| {
                current
                    .label(t)
                    .is_some_and(|l| current.signal_kind(l.signal).is_non_input())
            })
            .collect();
        for &a in &transitions {
            for &b_t in &splittable {
                if a == b_t {
                    continue;
                }
                let cand = add_ordering_arc(&current, a, b_t);
                let desc = format!(
                    "concurrency reduction: {} waits for {}",
                    current.label_string(b_t),
                    current.label_string(a)
                );
                consider(cand, desc, &mut best);
            }
        }
        for &tp in &splittable {
            for &tm in &splittable {
                if tp == tm {
                    continue;
                }
                let cand = insert_state_signal(&current, tp, tm);
                let desc = format!(
                    "inserted csc signal: + before {}, - before {}",
                    current.label_string(tp),
                    current.label_string(tm)
                );
                consider(cand, desc, &mut best);
            }
        }
        let (_, next, desc) = best?;
        descriptions.push(desc);
        current = next;
    }
    None
}
