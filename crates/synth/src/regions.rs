//! Excitation and quiescent regions (§3.2).
//!
//! *"Given a signal z, we can classify the states of the SG into four sets:
//! positive and negative excitation regions (ER(z+) and ER(z−)) and
//! positive and negative quiescent regions (QR(z+) and QR(z−))."*

use stg::{SignalEdge, SignalId, StateSpace, Stg};

/// The four-region classification of the state graph for one signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalRegions {
    /// The signal.
    pub signal: SignalId,
    /// States where `z = 0` and `z+` is enabled (`0*`).
    pub er_plus: Vec<usize>,
    /// States where `z = 1` and `z−` is enabled (`1*`).
    pub er_minus: Vec<usize>,
    /// Stable-1 states.
    pub qr_plus: Vec<usize>,
    /// Stable-0 states.
    pub qr_minus: Vec<usize>,
}

impl SignalRegions {
    /// The region of a particular state, as `(value, excited)`.
    #[must_use]
    pub fn classify_state(&self, state: usize) -> (bool, bool) {
        if self.er_plus.contains(&state) {
            (false, true)
        } else if self.er_minus.contains(&state) {
            (true, true)
        } else if self.qr_plus.contains(&state) {
            (true, false)
        } else {
            (false, false)
        }
    }

    /// States where the next-state function is 1: `ER(z+) ∪ QR(z+)`.
    #[must_use]
    pub fn on_states(&self) -> Vec<usize> {
        let mut v = self.er_plus.clone();
        v.extend(&self.qr_plus);
        v.sort_unstable();
        v
    }

    /// States where the next-state function is 0: `ER(z−) ∪ QR(z−)`.
    #[must_use]
    pub fn off_states(&self) -> Vec<usize> {
        let mut v = self.er_minus.clone();
        v.extend(&self.qr_minus);
        v.sort_unstable();
        v
    }
}

/// Computes the four regions of `signal` over the state graph.
#[must_use]
pub fn signal_regions<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    signal: SignalId,
) -> SignalRegions {
    let mut r = SignalRegions {
        signal,
        er_plus: Vec::new(),
        er_minus: Vec::new(),
        qr_plus: Vec::new(),
        qr_minus: Vec::new(),
    };
    for s in 0..sg.num_states() {
        let value = sg.value(s, signal);
        let excited_edge = sg
            .excitations(stg, s)
            .into_iter()
            .find(|&(_, sig, _)| sig == signal)
            .map(|(_, _, e)| e);
        match (value, excited_edge) {
            (false, Some(SignalEdge::Rise)) => r.er_plus.push(s),
            (true, Some(SignalEdge::Fall)) => r.er_minus.push(s),
            (true, _) => r.qr_plus.push(s),
            (false, _) => r.qr_minus.push(s),
        }
    }
    r
}

/// Regions for every non-input signal, in signal order.
#[must_use]
pub fn all_output_regions<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> Vec<SignalRegions> {
    stg.non_input_signals()
        .into_iter()
        .map(|s| signal_regions(stg, sg, s))
        .collect()
}
