//! Excitation and quiescent regions (§3.2).
//!
//! *"Given a signal z, we can classify the states of the SG into four sets:
//! positive and negative excitation regions (ER(z+) and ER(z−)) and
//! positive and negative quiescent regions (QR(z+) and QR(z−))."*
//!
//! Two granularities are provided: [`signal_region_sets`] keeps the four
//! regions as backend-owned [`StateSet`] handles (cube intersections on
//! the resident-BDD backend — nothing is enumerated), and
//! [`signal_regions`] materialises them into index lists for consumers
//! that genuinely walk states.

use stg::{SignalEdge, SignalId, StateSet, StateSpace, Stg};

/// The four-region classification of the state graph for one signal, as
/// set handles owned by the queried state space.
#[derive(Debug, Clone)]
pub struct SignalRegionSets {
    /// The signal.
    pub signal: SignalId,
    /// States where `z = 0` and `z+` is enabled (`0*`).
    pub er_plus: StateSet,
    /// States where `z = 1` and `z−` is enabled (`1*`).
    pub er_minus: StateSet,
    /// Stable-1 states.
    pub qr_plus: StateSet,
    /// Stable-0 states.
    pub qr_minus: StateSet,
}

impl SignalRegionSets {
    /// The on-set of the next-state function: `ER(z+) ∪ QR(z+)`.
    #[must_use]
    pub fn on_set<S: StateSpace + ?Sized>(&self, sg: &S) -> StateSet {
        sg.set_union(&self.er_plus, &self.qr_plus)
    }

    /// The off-set of the next-state function: `ER(z−) ∪ QR(z−)`.
    #[must_use]
    pub fn off_set<S: StateSpace + ?Sized>(&self, sg: &S) -> StateSet {
        sg.set_union(&self.er_minus, &self.qr_minus)
    }
}

/// The four regions of `signal` as set handles: excitation regions are
/// the signal's enabled-edge sets, quiescent regions the rest of each
/// value class. On the resident-BDD backend these are four cube
/// intersections over the characteristic function.
#[must_use]
pub fn signal_region_sets<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    signal: SignalId,
) -> SignalRegionSets {
    let er_plus_exc = sg.excitation_region(stg, signal, SignalEdge::Rise);
    let er_minus_exc = sg.excitation_region(stg, signal, SignalEdge::Fall);
    let on = sg.value_region(signal, true);
    let off = sg.value_region(signal, false);
    // A consistent space only excites z+ at value 0 (and z− at 1), but
    // intersecting keeps the classification exact on any input.
    let er_plus = sg.set_intersect(&er_plus_exc, &off);
    let er_minus = sg.set_intersect(&er_minus_exc, &on);
    let qr_plus = sg.set_minus(&on, &er_minus);
    let qr_minus = sg.set_minus(&off, &er_plus);
    SignalRegionSets {
        signal,
        er_plus,
        er_minus,
        qr_plus,
        qr_minus,
    }
}

/// The four-region classification of the state graph for one signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalRegions {
    /// The signal.
    pub signal: SignalId,
    /// States where `z = 0` and `z+` is enabled (`0*`).
    pub er_plus: Vec<usize>,
    /// States where `z = 1` and `z−` is enabled (`1*`).
    pub er_minus: Vec<usize>,
    /// Stable-1 states.
    pub qr_plus: Vec<usize>,
    /// Stable-0 states.
    pub qr_minus: Vec<usize>,
}

impl SignalRegions {
    /// The region of a particular state, as `(value, excited)`.
    #[must_use]
    pub fn classify_state(&self, state: usize) -> (bool, bool) {
        if self.er_plus.contains(&state) {
            (false, true)
        } else if self.er_minus.contains(&state) {
            (true, true)
        } else if self.qr_plus.contains(&state) {
            (true, false)
        } else {
            (false, false)
        }
    }

    /// States where the next-state function is 1: `ER(z+) ∪ QR(z+)`.
    #[must_use]
    pub fn on_states(&self) -> Vec<usize> {
        let mut v = self.er_plus.clone();
        v.extend(&self.qr_plus);
        v.sort_unstable();
        v
    }

    /// States where the next-state function is 0: `ER(z−) ∪ QR(z−)`.
    #[must_use]
    pub fn off_states(&self) -> Vec<usize> {
        let mut v = self.er_minus.clone();
        v.extend(&self.qr_minus);
        v.sort_unstable();
        v
    }
}

/// Computes the four regions of `signal` over the state graph, as
/// materialised index lists (ascending).
#[must_use]
pub fn signal_regions<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    signal: SignalId,
) -> SignalRegions {
    if sg.set_level_native() {
        let sets = signal_region_sets(stg, sg, signal);
        return SignalRegions {
            signal,
            er_plus: sg.set_states(&sets.er_plus, usize::MAX),
            er_minus: sg.set_states(&sets.er_minus, usize::MAX),
            qr_plus: sg.set_states(&sets.qr_plus, usize::MAX),
            qr_minus: sg.set_states(&sets.qr_minus, usize::MAX),
        };
    }
    // Explicit backends: one classification pass.
    let mut r = SignalRegions {
        signal,
        er_plus: Vec::new(),
        er_minus: Vec::new(),
        qr_plus: Vec::new(),
        qr_minus: Vec::new(),
    };
    for s in 0..sg.num_states() {
        let value = sg.value(s, signal);
        let excited_edge = sg
            .excitations(stg, s)
            .into_iter()
            .find(|&(_, sig, _)| sig == signal)
            .map(|(_, _, e)| e);
        match (value, excited_edge) {
            (false, Some(SignalEdge::Rise)) => r.er_plus.push(s),
            (true, Some(SignalEdge::Fall)) => r.er_minus.push(s),
            (true, _) => r.qr_plus.push(s),
            (false, _) => r.qr_minus.push(s),
        }
    }
    r
}

/// Regions for every non-input signal, in signal order.
#[must_use]
pub fn all_output_regions<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> Vec<SignalRegions> {
    stg.non_input_signals()
        .into_iter()
        .map(|s| signal_regions(stg, sg, s))
        .collect()
}
