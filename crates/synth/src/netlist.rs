//! Gate-level netlist IR shared by synthesis, verification and simulation.

use std::collections::HashMap;
use std::fmt;

use boolmin::Expr;

/// Identifier of a net (wire) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Index into the netlist's net table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. The caller must ensure the index
    /// is in range for the netlist it is used with.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        NetId(u32::try_from(i).expect("net index fits u32"))
    }
}

/// The behaviour of one gate.
///
/// `Complex` covers all combinational gates (INV, AND, OR, AOI, …) as an
/// [`Expr`] over the gate's input positions — §3.2's "one atomic complex
/// gate". The two sequential elements of Fig. 8 are first-class:
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateKind {
    /// Combinational: next output = `expr(inputs)`; variable `i` of the
    /// expression refers to `inputs[i]`.
    Complex(Expr),
    /// Muller C-element (§3.2: *"a popular asynchronous latch with the
    /// next state function c = ab + c(a + b)"*). Exactly two inputs.
    CElement,
    /// Reset-dominant set/reset latch (Fig. 8b): `q' = ¬R · (S + q)`.
    /// Inputs are `[S, R]`.
    SrLatch,
}

impl GateKind {
    /// Human-readable operator name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            GateKind::Complex(_) => "complex",
            GateKind::CElement => "C",
            GateKind::SrLatch => "SR",
        }
    }
}

/// One gate: a driven output net, a kind, and ordered input nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The net this gate drives.
    pub output: NetId,
    /// Behaviour.
    pub kind: GateKind,
    /// Ordered inputs (positions match `Complex` expression variables).
    pub inputs: Vec<NetId>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct NetInfo {
    name: String,
    /// Index of the driving gate, or `None` for primary inputs.
    driver: Option<usize>,
}

/// A gate-level netlist: named nets, each either a primary input or driven
/// by exactly one gate.
///
/// # Example
///
/// ```
/// use boolmin::Expr;
/// use synth::{GateKind, Netlist};
///
/// let mut n = Netlist::new();
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let and = Expr::and(vec![Expr::Var(0), Expr::Var(1)]);
/// let y = n.add_gate("y", GateKind::Complex(and), vec![a, b]);
/// let mut values = vec![true, true, false];
/// assert!(n.gate_excited(&values, n.driver_of(y).unwrap()));
/// values[y.index()] = true;
/// assert!(n.is_stable(&values));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    nets: Vec<NetInfo>,
    gates: Vec<Gate>,
    by_name: HashMap<String, NetId>,
}

impl Netlist {
    /// An empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Declares a primary input net.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        self.add_net(name.into(), None)
    }

    /// Adds a gate driving a fresh net named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the name is taken, or if the input count does not match
    /// the kind (C/SR need exactly two).
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        inputs: Vec<NetId>,
    ) -> NetId {
        match kind {
            GateKind::CElement | GateKind::SrLatch => {
                assert_eq!(inputs.len(), 2, "{} gates take two inputs", kind.name());
            }
            GateKind::Complex(ref e) => {
                let max = e.support().into_iter().max().map_or(0, |v| v + 1);
                assert!(
                    max <= inputs.len(),
                    "expression references input {max} but only {} inputs given",
                    inputs.len()
                );
            }
        }
        let gate_idx = self.gates.len();
        let out = self.add_net(name.into(), Some(gate_idx));
        self.gates.push(Gate {
            output: out,
            kind,
            inputs,
        });
        out
    }

    fn add_net(&mut self, name: String, driver: Option<usize>) -> NetId {
        assert!(
            !self.by_name.contains_key(&name),
            "net name {name:?} already in use"
        );
        let id = NetId(u32::try_from(self.nets.len()).expect("too many nets"));
        self.by_name.insert(name.clone(), id);
        self.nets.push(NetInfo { name, driver });
        id
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of gates.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gates.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Name of a net.
    #[must_use]
    pub fn net_name(&self, n: NetId) -> &str {
        &self.nets[n.index()].name
    }

    /// Net lookup by name.
    #[must_use]
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// All primary input nets.
    #[must_use]
    pub fn primary_inputs(&self) -> Vec<NetId> {
        (0..self.nets.len())
            .filter(|&i| self.nets[i].driver.is_none())
            .map(|i| NetId(i as u32))
            .collect()
    }

    /// Index of the gate driving `net`, or `None` for primary inputs.
    #[must_use]
    pub fn driver_of(&self, net: NetId) -> Option<usize> {
        self.nets[net.index()].driver
    }

    /// Next value of gate `g` under the current net values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the net count.
    #[must_use]
    pub fn next_value(&self, values: &[bool], g: usize) -> bool {
        let gate = &self.gates[g];
        let inputs: Vec<bool> = gate.inputs.iter().map(|n| values[n.index()]).collect();
        let q = values[gate.output.index()];
        match &gate.kind {
            GateKind::Complex(e) => e.eval(&inputs),
            GateKind::CElement => {
                let (a, b) = (inputs[0], inputs[1]);
                (a && b) || (q && (a || b))
            }
            GateKind::SrLatch => {
                let (s, r) = (inputs[0], inputs[1]);
                !r && (s || q)
            }
        }
    }

    /// `true` if gate `g`'s output disagrees with its next value (the gate
    /// is *excited* in the Muller model).
    #[must_use]
    pub fn gate_excited(&self, values: &[bool], g: usize) -> bool {
        self.next_value(values, g) != values[self.gates[g].output.index()]
    }

    /// All excited gate indices.
    #[must_use]
    pub fn excited_gates(&self, values: &[bool]) -> Vec<usize> {
        (0..self.gates.len())
            .filter(|&g| self.gate_excited(values, g))
            .collect()
    }

    /// `true` if no gate is excited.
    #[must_use]
    pub fn is_stable(&self, values: &[bool]) -> bool {
        self.excited_gates(values).is_empty()
    }

    /// Total literal count over all combinational gates plus 2 per latch —
    /// a rough area metric for the ablation benchmarks.
    #[must_use]
    pub fn literal_cost(&self) -> usize {
        self.gates
            .iter()
            .map(|g| match &g.kind {
                GateKind::Complex(e) => e.literal_count(),
                GateKind::CElement | GateKind::SrLatch => 2,
            })
            .sum()
    }

    /// Maximum fan-in over all gates.
    #[must_use]
    pub fn max_fanin(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).max().unwrap_or(0)
    }

    /// A canonical, content-complete text form for digesting: every
    /// net in id order — primary inputs as `input <name>`, gates as
    /// their `describe()` line. Two netlists with equal canonical text
    /// are structurally identical (names, kinds, expressions and pin
    /// order all included); the verify engine's incremental cone cache
    /// keys on it.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for i in 0..self.nets.len() {
            if self.nets[i].driver.is_none() {
                let _ = writeln!(s, "input {}", self.nets[i].name);
            }
        }
        s.push_str(&self.describe());
        s
    }

    /// Pretty multi-line description, one gate per line:
    /// `y = complex(a, b): a b`.
    #[must_use]
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for g in &self.gates {
            let in_names: Vec<String> = g
                .inputs
                .iter()
                .map(|n| self.net_name(*n).to_owned())
                .collect();
            match &g.kind {
                GateKind::Complex(e) => {
                    let _ = writeln!(
                        s,
                        "{} = {}",
                        self.net_name(g.output),
                        e.to_string_named(&in_names)
                    );
                }
                GateKind::CElement => {
                    let _ = writeln!(
                        s,
                        "{} = C({}, {})",
                        self.net_name(g.output),
                        in_names[0],
                        in_names[1]
                    );
                }
                GateKind::SrLatch => {
                    let _ = writeln!(
                        s,
                        "{} = SR(set={}, reset={})",
                        self.net_name(g.output),
                        in_names[0],
                        in_names[1]
                    );
                }
            }
        }
        s
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}
