//! Scoped work-stealing parallelism shared by the CSC candidate sweep
//! and the flow driver's `run_batch`.
//!
//! Both callers have the same shape: a list of independent work items, a
//! per-item evaluation that is pure (no shared mutable state), and a
//! deterministic merge. The utilities here only distribute the items —
//! workers steal indices off one atomic cursor, so an expensive item
//! never serialises the cheap ones behind it — and leave the merge to
//! the caller, which is what keeps parallel output byte-identical to
//! the serial run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hard ceiling on workers per parallel call. The sweeps are CPU-bound
/// (nothing is gained beyond core count), and the synthesis service
/// accepts client-supplied thread counts — a hostile or mistyped
/// `csc_threads` must not translate into an unbounded thread spawn.
pub const MAX_WORKERS: usize = 64;

/// Resolves a requested worker count: `0` means one worker per
/// available core; any other value is clamped to [`MAX_WORKERS`].
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .min(MAX_WORKERS)
    } else {
        requested.min(MAX_WORKERS)
    }
}

/// Maps `f` over `items` on `threads` scoped workers (0 = all cores),
/// returning results in input order.
///
/// `f` receives `(index, item)`. With one worker (or one item) the map
/// runs inline on the calling thread — no spawn, same semantics.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let n = items.len();
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                slots.lock().expect("no panics while holding the lock")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker threads joined")
        .into_iter()
        .map(|slot| slot.expect("every slot filled by a worker"))
        .collect()
}

/// Folds `items` into per-worker accumulators on `threads` scoped
/// workers (0 = all cores).
///
/// Each worker steals indices off a shared cursor and folds its items
/// into a private accumulator created by `init`; the accumulators are
/// returned in no particular order. The caller's merge must therefore
/// be insensitive to how items were distributed — e.g. concatenate and
/// sort by a total key, sum counters, or take a global minimum.
///
/// This is the sweep-shaped primitive: accumulators can hold state that
/// is expensive to keep per item (a shared BDD manager, the best-so-far
/// candidate space) without every item's result staying alive.
pub fn par_fold<T, A, I, F>(items: &[T], threads: usize, init: I, fold: F) -> Vec<A>
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &T) + Sync,
{
    let workers = resolve_threads(threads).min(items.len());
    if workers <= 1 {
        let mut acc = init();
        for (i, t) in items.iter().enumerate() {
            fold(&mut acc, i, t);
        }
        return vec![acc];
    }
    let n = items.len();
    let cursor = AtomicUsize::new(0);
    let accs: Mutex<Vec<A>> = Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut acc = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    fold(&mut acc, i, &items[i]);
                }
                accs.lock()
                    .expect("no panics while holding the lock")
                    .push(acc);
            });
        }
    });
    accs.into_inner().expect("worker threads joined")
}

#[cfg(test)]
mod tests {
    use super::{par_fold, par_map, resolve_threads};

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 0] {
            let out = par_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 0, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u8], 0, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn fold_covers_every_item_exactly_once() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 5, 0] {
            let accs = par_fold(&items, threads, Vec::new, |acc: &mut Vec<usize>, _, &x| {
                acc.push(x);
            });
            let mut all: Vec<usize> = accs.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, items, "threads={threads}");
        }
    }

    #[test]
    fn zero_resolves_to_at_least_one_worker() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn hostile_thread_requests_are_clamped() {
        assert_eq!(resolve_threads(1_000_000), super::MAX_WORKERS);
        assert!(resolve_threads(0) <= super::MAX_WORKERS);
    }
}
