//! Complex-gate synthesis (§3.2): one atomic gate per non-input signal.
//!
//! *"A well known result in the theory of asynchronous circuits is that any
//! circuit implementing the next-state function of each signal with only
//! one atomic complex gate is speed independent."*

use boolmin::Expr;
use stg::{SignalId, StateSpace, Stg};

use crate::netlist::{GateKind, NetId, Netlist};
use crate::nextstate::{all_equations, Equation, SynthesisError};

/// A synthesised speed-independent circuit: equations plus the
/// corresponding netlist of atomic complex gates (with feedback where the
/// function depends on the implemented signal itself).
#[derive(Debug, Clone)]
pub struct ComplexGateCircuit {
    equations: Vec<Equation>,
    netlist: Netlist,
    /// Net of each signal (indexed by signal id).
    signal_nets: Vec<NetId>,
}

impl ComplexGateCircuit {
    /// The minimised equations, in signal order.
    #[must_use]
    pub fn equations(&self) -> &[Equation] {
        &self.equations
    }

    /// The equation for `signal`, if it is a non-input.
    #[must_use]
    pub fn equation(&self, signal: SignalId) -> Option<&Equation> {
        self.equations.iter().find(|e| e.signal == signal)
    }

    /// The netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The net carrying `signal`.
    #[must_use]
    pub fn signal_net(&self, signal: SignalId) -> NetId {
        self.signal_nets[signal.index()]
    }

    /// Renders all equations with signal names, one per line.
    #[must_use]
    pub fn display_equations(&self, stg: &Stg) -> String {
        self.equations
            .iter()
            .map(|e| e.display(stg))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Synthesises the complex-gate implementation of an STG whose state graph
/// satisfies CSC.
///
/// # Errors
///
/// Propagates [`SynthesisError::CscConflict`] when the state graph is not
/// CSC — resolve conflicts first (see [`crate::csc`]).
pub fn synthesize_complex_gates<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
) -> Result<ComplexGateCircuit, SynthesisError> {
    let equations = all_equations(stg, sg)?;
    let mut netlist = Netlist::new();
    // Nets: one per signal, inputs first (declared as primary), non-inputs
    // get gates in a second pass so feedback works.
    let mut signal_nets: Vec<Option<NetId>> = vec![None; stg.num_signals()];
    for s in stg.signals() {
        if !stg.signal_kind(s).is_non_input() {
            signal_nets[s.index()] = Some(netlist.add_input(stg.signal_name(s)));
        }
    }
    // Pre-allocate output nets by adding gates in two phases is not
    // possible (a gate needs its input nets); instead declare non-input
    // nets as inputs of a *builder* pass, then rebuild. Simpler: compute
    // the support order and create gates with placeholder inputs resolved
    // by name at the end. We avoid that complexity by creating all
    // non-input nets as gates whose inputs may include nets created later:
    // NetIds are dense and predictable, so reserve them first.
    //
    // Reserve: create each non-input gate with empty inputs, patch after.
    // `Netlist` has no patching API by design; instead synthesise in
    // topological-free form: create gates in signal order, but reference
    // input nets by pre-computed ids. To know ids up front, create the
    // non-input nets as primary inputs in a scratch netlist first is
    // overkill — the net id layout below is: inputs in declaration order,
    // then one net per non-input in signal order.
    let num_inputs = signal_nets.iter().filter(|n| n.is_some()).count();
    let mut next_id = num_inputs as u32;
    for s in stg.signals() {
        if stg.signal_kind(s).is_non_input() {
            signal_nets[s.index()] = Some(crate::netlist::NetId(next_id));
            next_id += 1;
        }
    }
    let resolved: Vec<NetId> = signal_nets
        .iter()
        .map(|n| n.expect("every signal got a net"))
        .collect();
    for eq in &equations {
        // Gate inputs: the support signals of the cover, in signal order.
        let support: Vec<usize> = (0..stg.num_signals())
            .filter(|&v| {
                eq.cover
                    .cubes()
                    .iter()
                    .any(|c| c.literal(v) != boolmin::Literal::DontCare)
            })
            .collect();
        // Remap the cover expression onto input positions.
        let expr = remap_expr(&Expr::from_cover(&eq.cover), &support);
        let inputs: Vec<NetId> = support.iter().map(|&v| resolved[v]).collect();
        let out = netlist.add_gate(stg.signal_name(eq.signal), GateKind::Complex(expr), inputs);
        debug_assert_eq!(out, resolved[eq.signal.index()], "net id layout must match");
    }
    Ok(ComplexGateCircuit {
        equations,
        netlist,
        signal_nets: resolved,
    })
}

/// Rewrites expression variables (signal indices) into positions of the
/// `support` list.
fn remap_expr(e: &Expr, support: &[usize]) -> Expr {
    match e {
        Expr::Const(b) => Expr::Const(*b),
        Expr::Var(v) => {
            let pos = support
                .iter()
                .position(|&s| s == *v)
                .expect("support covers all used variables");
            Expr::Var(pos)
        }
        Expr::Not(inner) => Expr::not(remap_expr(inner, support)),
        Expr::And(parts) => Expr::and(parts.iter().map(|p| remap_expr(p, support)).collect()),
        Expr::Or(parts) => Expr::or(parts.iter().map(|p| remap_expr(p, support)).collect()),
    }
}

/// Checks that a circuit's stable points agree with the SG: in every state
/// of the SG, each gate's next value equals the signal's next-state
/// function value (1 on `ER+∪QR+`). A quick sanity check used by tests;
/// full speed-independence is the `verify` crate's job.
#[must_use]
pub fn circuit_matches_sg<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    circuit: &ComplexGateCircuit,
) -> bool {
    for s in 0..sg.num_states() {
        // Net values = signal values (net ids are a permutation of
        // signals; build the value vector by net index).
        let mut values = vec![false; circuit.netlist().num_nets()];
        for sig in stg.signals() {
            values[circuit.signal_net(sig).index()] = sg.value(s, sig);
        }
        for eq in circuit.equations() {
            let g = circuit
                .netlist()
                .driver_of(circuit.signal_net(eq.signal))
                .expect("non-input signals are driven");
            let expect = {
                let regions = crate::regions::signal_regions(stg, sg, eq.signal);
                regions.on_states().contains(&s)
            };
            if circuit.netlist().next_value(&values, g) != expect {
                return false;
            }
        }
    }
    true
}
