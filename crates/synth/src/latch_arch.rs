//! Latch-based architectures (§3.4, Fig. 8): set/reset networks driving a
//! C-element (Fig. 8a) or a reset-dominant RS latch (Fig. 8b), under the
//! *monotonous cover* requirement that makes the two-level decomposition
//! hazard-free.

use boolmin::{minimize_exact, Cover, Cube, Expr, IncompleteFunction};
use stg::{SignalId, StateSpace, Stg};

use crate::netlist::{GateKind, NetId, Netlist};
use crate::nextstate::SynthesisError;
use crate::regions::signal_regions;

/// Which sequential element closes the feedback loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatchStyle {
    /// Muller C-element with inputs `(S, ¬R)` — Fig. 8a.
    CElement,
    /// Reset-dominant RS latch with inputs `(S, R)` — Fig. 8b.
    RsLatch,
}

/// The set/reset covers of one signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetResetCovers {
    /// The signal.
    pub signal: SignalId,
    /// Minimised set network: 1 on `ER(z+)`, free on `QR(z+)`.
    pub set: Cover,
    /// Minimised reset network: 1 on `ER(z−)`, free on `QR(z−)`.
    pub reset: Cover,
}

impl SetResetCovers {
    /// Renders as two lines `set(z) = …` / `reset(z) = …`.
    #[must_use]
    pub fn display(&self, stg: &Stg) -> String {
        let names = stg.signal_names();
        format!(
            "set({z}) = {s}\nreset({z}) = {r}",
            z = stg.signal_name(self.signal),
            s = self.set.to_expr_string(&names),
            r = self.reset.to_expr_string(&names)
        )
    }
}

/// A latch-architecture circuit for a whole STG.
#[derive(Debug, Clone)]
pub struct LatchCircuit {
    /// The style used.
    pub style: LatchStyle,
    /// Per-signal covers, in non-input signal order.
    pub covers: Vec<SetResetCovers>,
    netlist: Netlist,
    signal_nets: Vec<NetId>,
}

impl LatchCircuit {
    /// The netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The net carrying `signal`.
    #[must_use]
    pub fn signal_net(&self, signal: SignalId) -> NetId {
        self.signal_nets[signal.index()]
    }
}

/// Derives the minimised set and reset covers of one signal.
///
/// # Errors
///
/// [`SynthesisError`] on inputs or CSC conflicts (a state code required
/// both inside and outside an excitation region).
pub fn set_reset_covers<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    signal: SignalId,
) -> Result<SetResetCovers, SynthesisError> {
    if !stg.signal_kind(signal).is_non_input() {
        return Err(SynthesisError::InputSignal {
            signal: stg.signal_name(signal).to_owned(),
        });
    }
    let n = sg.num_signals();
    let regions = signal_regions(stg, sg, signal);
    let code_cover = |states: &[usize]| -> Cover {
        let mut c = Cover::from_cubes(
            n,
            states
                .iter()
                .map(|&s| Cube::from_minterm(sg.code(s)))
                .collect(),
        );
        c.remove_contained();
        c
    };
    let er_p = code_cover(&regions.er_plus);
    let er_m = code_cover(&regions.er_minus);
    let qr_p = code_cover(&regions.qr_plus);
    let qr_m = code_cover(&regions.qr_minus);
    let unreachable = er_p.union(&er_m).union(&qr_p).union(&qr_m).complement();

    let conflict = |on: &Cover, off: &Cover| -> Option<String> {
        let overlap = on.intersect(off);
        overlap.cubes().first().map(|c| {
            c.minterms()[0]
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect()
        })
    };
    // Set network: on = ER(z+), off = ER(z−) ∪ QR(z−), dc = QR(z+) ∪ unreachable.
    let set_off = er_m.union(&qr_m);
    if let Some(code) = conflict(&er_p, &set_off) {
        return Err(SynthesisError::CscConflict {
            signal: stg.signal_name(signal).to_owned(),
            code,
        });
    }
    let set_fn = IncompleteFunction::new(er_p.clone(), qr_p.union(&unreachable));
    // Reset network: on = ER(z−), off = ER(z+) ∪ QR(z+), dc = QR(z−) ∪ unreachable.
    let reset_off = er_p.union(&qr_p);
    if let Some(code) = conflict(&er_m, &reset_off) {
        return Err(SynthesisError::CscConflict {
            signal: stg.signal_name(signal).to_owned(),
            code,
        });
    }
    let reset_fn = IncompleteFunction::new(er_m, qr_m.union(&unreachable));
    Ok(SetResetCovers {
        signal,
        set: minimize_exact(&set_fn),
        reset: minimize_exact(&reset_fn),
    })
}

/// Synthesises the latch-architecture circuit for all non-input signals.
///
/// For the C-element style each signal gets `z = C(S, R')`; for the RS
/// style `z = SR(S, R)` (reset dominant). Single-cube covers are wired
/// straight into the latch without an intermediate gate name when they are
/// single literals.
///
/// # Errors
///
/// Propagates the first per-signal failure from [`set_reset_covers`].
pub fn synthesize_latch_circuit<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    style: LatchStyle,
) -> Result<LatchCircuit, SynthesisError> {
    let mut covers = Vec::new();
    for s in stg.non_input_signals() {
        covers.push(set_reset_covers(stg, sg, s)?);
    }
    let mut netlist = Netlist::new();
    let mut signal_nets: Vec<Option<NetId>> = vec![None; stg.num_signals()];
    for s in stg.signals() {
        if !stg.signal_kind(s).is_non_input() {
            signal_nets[s.index()] = Some(netlist.add_input(stg.signal_name(s)));
        }
    }
    // Pre-assign net ids for the latch outputs: they follow the inputs and
    // the per-signal network gates. To keep ids simple, create the
    // networks first with feedback referencing the future latch nets via a
    // reservation pass mirroring complex_gate.rs's layout: we instead
    // create networks that may reference latch outputs, so reserve all
    // latch output ids after counting network gates.
    //
    // Layout: [inputs][for each signal: set-net?, resetish-net?][latches].
    let mut plan: Vec<(SignalId, bool, bool)> = Vec::new(); // needs set gate, needs reset gate
    for c in &covers {
        let needs_set = !is_single_literal(&c.set);
        // The C-element takes ¬R, so a reset gate (inverter at least) is
        // always emitted in that style.
        let needs_reset = match style {
            LatchStyle::CElement => true,
            LatchStyle::RsLatch => !is_single_literal(&c.reset),
        };
        plan.push((c.signal, needs_set, needs_reset));
    }
    let num_inputs = netlist.num_nets();
    let network_gates: usize = plan
        .iter()
        .map(|&(_, s, r)| usize::from(s) + usize::from(r))
        .sum();
    for (latch_net, c) in (num_inputs + network_gates..).zip(covers.iter()) {
        signal_nets[c.signal.index()] = Some(crate::netlist::NetId(latch_net as u32));
    }
    // Emit network gates.
    let mut set_nets: Vec<NetId> = Vec::new();
    let mut reset_nets: Vec<NetId> = Vec::new();
    for c in &covers {
        let name = stg.signal_name(c.signal);
        let set_net = if is_single_literal(&c.set) {
            literal_net(&signal_nets, &c.set)
        } else {
            let (expr, inputs) = cover_gate(stg, &signal_nets, &c.set);
            netlist.add_gate(format!("{name}_set"), GateKind::Complex(expr), inputs)
        };
        set_nets.push(set_net);
        let reset_net = match style {
            LatchStyle::CElement => {
                // C-element takes ¬R: emit the complemented network.
                let (expr, inputs) = cover_gate(stg, &signal_nets, &c.reset);
                netlist.add_gate(
                    format!("{name}_rstn"),
                    GateKind::Complex(Expr::not(expr)),
                    inputs,
                )
            }
            LatchStyle::RsLatch => {
                if is_single_literal(&c.reset) {
                    literal_net(&signal_nets, &c.reset)
                } else {
                    let (expr, inputs) = cover_gate(stg, &signal_nets, &c.reset);
                    netlist.add_gate(format!("{name}_rst"), GateKind::Complex(expr), inputs)
                }
            }
        };
        reset_nets.push(reset_net);
    }
    // Emit latches.
    for (i, c) in covers.iter().enumerate() {
        let kind = match style {
            LatchStyle::CElement => GateKind::CElement,
            LatchStyle::RsLatch => GateKind::SrLatch,
        };
        let out = netlist.add_gate(
            stg.signal_name(c.signal),
            kind,
            vec![set_nets[i], reset_nets[i]],
        );
        assert_eq!(
            out,
            signal_nets[c.signal.index()].expect("reserved"),
            "net id reservation must match emission order"
        );
    }
    Ok(LatchCircuit {
        style,
        covers,
        netlist,
        signal_nets: signal_nets
            .into_iter()
            .map(|n| n.expect("assigned"))
            .collect(),
    })
}

fn is_single_literal(c: &Cover) -> bool {
    c.cubes().len() == 1 && c.cubes()[0].literal_count() == 1 && {
        // Only a *positive* single literal can be wired directly.
        c.cubes()[0]
            .literals()
            .all(|(_, l)| l == boolmin::Literal::One)
    }
}

fn literal_net(signal_nets: &[Option<NetId>], cover: &Cover) -> NetId {
    let (v, _) = cover.cubes()[0].literals().next().expect("single literal");
    signal_nets[v].expect("signal net exists")
}

/// Builds `(expr over positions, ordered input nets)` for a cover.
fn cover_gate(stg: &Stg, signal_nets: &[Option<NetId>], cover: &Cover) -> (Expr, Vec<NetId>) {
    let support: Vec<usize> = (0..stg.num_signals())
        .filter(|&v| {
            cover
                .cubes()
                .iter()
                .any(|c| c.literal(v) != boolmin::Literal::DontCare)
        })
        .collect();
    let expr = remap(&Expr::from_cover(cover), &support);
    let inputs = support
        .iter()
        .map(|&v| signal_nets[v].expect("signal net exists"))
        .collect();
    (expr, inputs)
}

fn remap(e: &Expr, support: &[usize]) -> Expr {
    match e {
        Expr::Const(b) => Expr::Const(*b),
        Expr::Var(v) => Expr::Var(support.iter().position(|&s| s == *v).expect("in support")),
        Expr::Not(inner) => Expr::not(remap(inner, support)),
        Expr::And(p) => Expr::and(p.iter().map(|x| remap(x, support)).collect()),
        Expr::Or(p) => Expr::or(p.iter().map(|x| remap(x, support)).collect()),
    }
}

/// A monotonous-cover violation: a set/reset cube glitching inside an
/// excitation region (§3.4's requirement for hazard-free two-level +
/// latch decomposition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonotonicViolation {
    /// The signal whose network glitches.
    pub signal: SignalId,
    /// `true` if the set network, `false` if the reset network.
    pub in_set_network: bool,
    /// The SG arc (from-state, to-state) where a cube turned off while the
    /// excitation region was still active.
    pub arc: (usize, usize),
}

/// Checks the monotonous-cover requirement: within `ER(z+)` no set-cover
/// cube may switch from 1 to 0 before `z+` fires (and dually for reset).
#[must_use]
pub fn monotonic_violations<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    covers: &[SetResetCovers],
) -> Vec<MonotonicViolation> {
    let mut out = Vec::new();
    for c in covers {
        let regions = signal_regions(stg, sg, c.signal);
        for (in_set, cover, er) in [
            (true, &c.set, &regions.er_plus),
            (false, &c.reset, &regions.er_minus),
        ] {
            // Region membership as a set: the arc scan below tests every
            // SG arc against it, so a linear `contains` per endpoint
            // turns the check quadratic on big regions.
            let er: std::collections::HashSet<usize> = er.iter().copied().collect();
            for (from, _t, to) in sg.ts().arcs() {
                if er.contains(from) && er.contains(to) {
                    let vf = cover.covers_minterm(sg.code(*from));
                    let vt = cover.covers_minterm(sg.code(*to));
                    if vf && !vt {
                        out.push(MonotonicViolation {
                            signal: c.signal,
                            in_set_network: in_set,
                            arc: (*from, *to),
                        });
                    }
                }
            }
        }
    }
    out
}

impl LatchCircuit {
    /// The *atomic equivalent* of this latch circuit: one complex gate per
    /// signal computing `S ∨ (q ∧ ¬R)` directly over the signal nets.
    ///
    /// §3.2's correctness argument is stated for atomic gates; the
    /// two-level-network + latch decomposition is hazard-free **iff** the
    /// covers are monotonous (§3.4). Verification therefore checks the
    /// atomic equivalent with the strict Muller-model checker and the
    /// networks with [`monotonic_violations`] — together these certify the
    /// latch implementation without flagging the benign set/reset network
    /// de-excitations that the monotonous-cover condition licenses.
    ///
    /// Returns the netlist and the per-signal net mapping.
    #[must_use]
    pub fn atomic_netlist(&self, stg: &Stg) -> (Netlist, Vec<NetId>) {
        let mut netlist = Netlist::new();
        let mut signal_nets: Vec<Option<NetId>> = vec![None; stg.num_signals()];
        for s in stg.signals() {
            if !stg.signal_kind(s).is_non_input() {
                signal_nets[s.index()] = Some(netlist.add_input(stg.signal_name(s)));
            }
        }
        let num_inputs = netlist.num_nets();
        for (k, c) in self.covers.iter().enumerate() {
            signal_nets[c.signal.index()] = Some(crate::netlist::NetId((num_inputs + k) as u32));
        }
        for c in &self.covers {
            // Support: signals used by either cover, plus the signal itself
            // (the latch state q).
            let mut support: Vec<usize> = (0..stg.num_signals())
                .filter(|&v| {
                    c.set
                        .cubes()
                        .iter()
                        .chain(c.reset.cubes())
                        .any(|cc| cc.literal(v) != boolmin::Literal::DontCare)
                })
                .collect();
            if !support.contains(&c.signal.index()) {
                support.push(c.signal.index());
                support.sort_unstable();
            }
            let q_pos = support
                .iter()
                .position(|&v| v == c.signal.index())
                .expect("q in support");
            let set_expr = remap(&Expr::from_cover(&c.set), &support);
            let reset_expr = remap(&Expr::from_cover(&c.reset), &support);
            let hold = Expr::and(vec![Expr::Var(q_pos), Expr::not(reset_expr)]);
            let next = Expr::or(vec![set_expr, hold]);
            let inputs: Vec<NetId> = support
                .iter()
                .map(|&v| signal_nets[v].expect("net assigned"))
                .collect();
            let out = netlist.add_gate(stg.signal_name(c.signal), GateKind::Complex(next), inputs);
            debug_assert_eq!(out, signal_nets[c.signal.index()].expect("reserved"));
        }
        (
            netlist,
            signal_nets
                .into_iter()
                .map(|n| n.expect("assigned"))
                .collect(),
        )
    }
}
