//! Next-state function derivation and minimisation (§3.2).
//!
//! The next-state function of signal `z` is 1 on `ER(z+) ∪ QR(z+)`, 0 on
//! `ER(z−) ∪ QR(z−)`, and don't-care on binary codes that label no state
//! of the SG (*"s can be considered as a don't care condition for boolean
//! minimization"*).

use std::fmt;

use boolmin::{minimize_exact, minimize_heuristic, Cover, Cube, IncompleteFunction};
use stg::{SignalId, StateSpace, Stg};

use crate::regions::signal_region_sets;

/// Why next-state derivation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// Two states with the same code disagree on the function value: the
    /// SG violates Complete State Coding for this signal (§2.1's conflict).
    CscConflict {
        /// The signal whose function is contradictory.
        signal: String,
        /// The shared binary code, as a 0/1 string.
        code: String,
    },
    /// The signal is an input: inputs are driven by the environment and
    /// have no next-state function.
    InputSignal {
        /// The signal name.
        signal: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::CscConflict { signal, code } => {
                write!(f, "CSC conflict on signal {signal} at code {code}")
            }
            SynthesisError::InputSignal { signal } => {
                write!(f, "signal {signal} is an input; nothing to synthesise")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// A synthesised logic equation for one signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Equation {
    /// The implemented signal.
    pub signal: SignalId,
    /// Minimised sum-of-products over the signal variables.
    pub cover: Cover,
    /// The incompletely specified function the cover implements.
    pub function: IncompleteFunction,
}

impl Equation {
    /// Renders as `z = <sop>` with signal names.
    #[must_use]
    pub fn display(&self, stg: &Stg) -> String {
        let names = stg.signal_names();
        format!(
            "{} = {}",
            stg.signal_name(self.signal),
            self.cover.to_expr_string(&names)
        )
    }
}

/// Derives the incompletely specified next-state function of `signal` from
/// the state graph (§3.2's table).
///
/// # Errors
///
/// [`SynthesisError::InputSignal`] for inputs;
/// [`SynthesisError::CscConflict`] if two equal-coded states imply
/// different function values.
pub fn derive_function<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    signal: SignalId,
) -> Result<IncompleteFunction, SynthesisError> {
    if !stg.signal_kind(signal).is_non_input() {
        return Err(SynthesisError::InputSignal {
            signal: stg.signal_name(signal).to_owned(),
        });
    }
    let n = sg.num_signals();
    // Set-level derivation: the function is defined by the *codes* of
    // `ER(z+) ∪ QR(z+)` (on) and `ER(z−) ∪ QR(z−)` (off) — the resident
    // backend projects them straight out of the characteristic function,
    // never touching individual states; explicit backends enumerate the
    // region sets (each distinct code once, in first-occurrence order,
    // exactly what the old per-state cube list reduced to).
    let regions = signal_region_sets(stg, sg, signal);
    // Canonical (lexicographic) cube order: `set_codes` ordering is
    // backend-specific and exact minimisation breaks cover-size ties by
    // input order, so unsorted codes could synthesise different (equally
    // minimal) equations per backend.
    let mut on_codes = sg.set_codes(&regions.on_set(sg));
    on_codes.sort_unstable();
    let mut off_codes = sg.set_codes(&regions.off_set(sg));
    off_codes.sort_unstable();
    // Detect contradictions: same code required both on and off.
    let off_lookup: std::collections::HashSet<&Vec<bool>> = off_codes.iter().collect();
    if let Some(code) = on_codes.iter().find(|c| off_lookup.contains(c)) {
        return Err(SynthesisError::CscConflict {
            signal: stg.signal_name(signal).to_owned(),
            code: code.iter().map(|&b| if b { '1' } else { '0' }).collect(),
        });
    }
    let on_cubes: Vec<Cube> = on_codes.iter().map(|c| Cube::from_minterm(c)).collect();
    let off_cubes: Vec<Cube> = off_codes.iter().map(|c| Cube::from_minterm(c)).collect();
    let mut on = Cover::from_cubes(n, on_cubes);
    on.remove_contained();
    let mut off = Cover::from_cubes(n, off_cubes);
    off.remove_contained();
    // dc = ¬(on ∪ off): all unreachable codes.
    let dc = on.union(&off).complement();
    Ok(IncompleteFunction::new(on, dc))
}

/// Derives and exactly minimises the equation of one signal.
///
/// # Errors
///
/// See [`derive_function`].
pub fn equation_exact<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    signal: SignalId,
) -> Result<Equation, SynthesisError> {
    let function = derive_function(stg, sg, signal)?;
    let cover = minimize_exact(&function);
    Ok(Equation {
        signal,
        cover,
        function,
    })
}

/// Derives and heuristically minimises the equation of one signal (for
/// larger controllers where exact covering is too slow).
///
/// # Errors
///
/// See [`derive_function`].
pub fn equation_heuristic<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    signal: SignalId,
) -> Result<Equation, SynthesisError> {
    let function = derive_function(stg, sg, signal)?;
    let cover = minimize_heuristic(&function);
    Ok(Equation {
        signal,
        cover,
        function,
    })
}

/// Equations for all non-input signals (exact minimisation).
///
/// # Errors
///
/// Fails on the first CSC conflict, identifying the offending signal.
pub fn all_equations<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
) -> Result<Vec<Equation>, SynthesisError> {
    stg.non_input_signals()
        .into_iter()
        .map(|s| equation_exact(stg, sg, s))
        .collect()
}
