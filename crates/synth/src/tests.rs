//! Unit tests for the synthesis crate, anchored to §3 of the paper.

use stg::examples::{toggle, vme_read, vme_read_csc};
use stg::StateGraph;

use crate::complex_gate::{circuit_matches_sg, synthesize_complex_gates};
use crate::csc::{resolve_by_concurrency_reduction, resolve_by_signal_insertion};
use crate::decompose::decompose;
use crate::latch_arch::{
    monotonic_violations, set_reset_covers, synthesize_latch_circuit, LatchStyle,
};
use crate::library::{map_to_library, Library};
use crate::netlist::{GateKind, Netlist};
use crate::nextstate::{all_equations, derive_function, equation_exact, SynthesisError};
use crate::regions::signal_regions;

fn vme_csc_sg() -> (stg::Stg, StateGraph) {
    let s = vme_read_csc();
    let sg = StateGraph::build(&s).unwrap();
    (s, sg)
}

#[test]
fn regions_partition_the_state_graph() {
    let (stg, sg) = vme_csc_sg();
    for s in stg.non_input_signals() {
        let r = signal_regions(&stg, &sg, s);
        let total = r.er_plus.len() + r.er_minus.len() + r.qr_plus.len() + r.qr_minus.len();
        assert_eq!(total, sg.num_states(), "regions partition states");
    }
}

#[test]
fn next_state_function_lds_matches_paper_table() {
    // §3.2's table gives f_LDS at several states of Fig. 7's SG.
    let (stg, sg) = vme_csc_sg();
    let lds = stg.signal_by_name("LDS").unwrap();
    let f = derive_function(&stg, &sg, lds).unwrap();
    // Signal order: DSr, DTACK, LDTACK, LDS, D, csc0.
    // State 100001 (DSr high, csc0 high): ER(LDS+) => f = 1.
    assert_eq!(
        f.value(&[true, false, false, false, false, true]),
        Some(true)
    );
    // State 101111: QR(LDS+) => 1.
    assert_eq!(f.value(&[true, false, true, true, true, true]), Some(true));
    // State 101100 (LDS high, csc0 low): ER(LDS-) => 0.
    assert_eq!(
        f.value(&[true, false, true, true, false, false]),
        Some(false)
    );
    // State 000000: QR(LDS-) => 0.
    assert_eq!(
        f.value(&[false, false, false, false, false, false]),
        Some(false)
    );
}

#[test]
fn equations_match_section_3_2() {
    // D = LDTACK csc0; LDS = D + csc0; DTACK = D;
    // csc0 = DSr (csc0 + LDTACK').
    let (stg, sg) = vme_csc_sg();
    let names = stg.signal_names();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let get = |n: &str| {
        let sig = stg.signal_by_name(n).unwrap();
        circuit.equation(sig).unwrap().cover.to_expr_string(&names)
    };
    assert_eq!(get("D"), "LDTACK csc0");
    assert_eq!(get("DTACK"), "D");
    assert_eq!(get("LDS"), "D + csc0");
    // csc0 = DSr csc0 + DSr LDTACK' (the factored form of the paper).
    let csc0 = get("csc0");
    assert!(
        csc0 == "DSr csc0 + DSr LDTACK'" || csc0 == "DSr LDTACK' + DSr csc0",
        "csc0 = {csc0}"
    );
}

#[test]
fn complex_gate_circuit_is_consistent_with_sg() {
    let (stg, sg) = vme_csc_sg();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    assert!(circuit_matches_sg(&stg, &sg, &circuit));
    // Three output gates + one internal gate.
    assert_eq!(circuit.netlist().num_gates(), 4);
}

#[test]
fn synthesis_rejects_csc_conflicts() {
    let stg = vme_read();
    let sg = StateGraph::build(&stg).unwrap();
    let lds = stg.signal_by_name("LDS").unwrap();
    match equation_exact(&stg, &sg, lds) {
        Err(SynthesisError::CscConflict { code, .. }) => assert_eq!(code, "10110"),
        other => panic!("expected CSC conflict, got {other:?}"),
    }
}

#[test]
fn csc_insertion_fixes_vme_read() {
    let stg = vme_read();
    let res = resolve_by_signal_insertion(&stg).expect("a single csc signal suffices");
    let sg = StateGraph::build(&res.stg).unwrap();
    assert!(stg::encoding::has_csc(&res.stg, &sg));
    assert_eq!(res.num_states, 16, "Fig. 7's SG has 16 states");
    // The whole flow must now synthesise.
    let circuit = synthesize_complex_gates(&res.stg, &sg).unwrap();
    assert!(circuit_matches_sg(&res.stg, &sg, &circuit));
}

#[test]
fn concurrency_reduction_fixes_vme_read() {
    // §2.1: "signal transition DTACK- can be delayed until LDS- fires".
    let stg = vme_read();
    let res = resolve_by_concurrency_reduction(&stg).expect("a reduction exists");
    let sg = StateGraph::build(&res.stg).unwrap();
    assert!(stg::encoding::has_csc(&res.stg, &sg));
    assert!(res.num_states < 14, "reduction removes states");
    assert!(
        res.description.contains("DTACK-") || res.description.contains("LDS-"),
        "unexpected reduction: {}",
        res.description
    );
}

#[test]
fn csc_resolution_on_already_clean_stg_is_identity() {
    let stg = vme_read_csc();
    let res = resolve_by_signal_insertion(&stg).unwrap();
    assert!(res.description.contains("already holds"));
    assert_eq!(res.num_states, 16);
}

#[test]
fn latch_architectures_build_for_vme() {
    let (stg, sg) = vme_csc_sg();
    for style in [LatchStyle::CElement, LatchStyle::RsLatch] {
        let circ = synthesize_latch_circuit(&stg, &sg, style).unwrap();
        assert_eq!(circ.covers.len(), 4); // DTACK, LDS, D, csc0
                                          // Latches exist for every non-input signal.
        let latches = circ
            .netlist()
            .gates()
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Complex(_)))
            .count();
        assert_eq!(latches, 4);
        let violations = monotonic_violations(&stg, &sg, &circ.covers);
        assert!(violations.is_empty(), "{violations:?}");
    }
}

#[test]
fn set_reset_covers_of_csc0() {
    // From csc0 = DSr(csc0 + LDTACK'): set = DSr LDTACK', reset = DSr'.
    let (stg, sg) = vme_csc_sg();
    let names = stg.signal_names();
    let csc0 = stg.signal_by_name("csc0").unwrap();
    let c = set_reset_covers(&stg, &sg, csc0).unwrap();
    assert_eq!(c.set.to_expr_string(&names), "DSr LDTACK'");
    assert_eq!(c.reset.to_expr_string(&names), "DSr'");
}

#[test]
fn toggle_synthesis_end_to_end() {
    let stg = toggle();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    // x follows a: the equation is x = a.
    let names = stg.signal_names();
    assert_eq!(circuit.equations()[0].cover.to_expr_string(&names), "a");
}

#[test]
fn decomposition_bounds_fanin_and_shares_gates() {
    let (stg, sg) = vme_csc_sg();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let dec = decompose(&stg, &circuit, 2);
    assert!(dec.netlist().max_fanin() <= 2);
    // Fig. 9a introduces one shared internal net (map0) for this control.
    assert!(!dec.new_nets.is_empty());
    // Functional check: in every SG state, gate stable values must agree
    // with the complex-gate circuit when internal nets are settled — the
    // stable next-value of each output gate must match the equation value.
    for s in 0..sg.num_states() {
        let mut values = vec![false; dec.netlist().num_nets()];
        for sig in stg.signals() {
            values[dec.signal_net(sig).index()] = sg.value(s, sig);
        }
        // Settle internal nets (they are combinational over signals).
        for _ in 0..dec.netlist().num_gates() {
            for g in 0..dec.netlist().num_gates() {
                let out = dec.netlist().gates()[g].output;
                if stg.signals().all(|sig| dec.signal_net(sig) != out) {
                    values[out.index()] = dec.netlist().next_value(&values, g);
                }
            }
        }
        for eq in circuit.equations() {
            let g = dec.netlist().driver_of(dec.signal_net(eq.signal)).unwrap();
            let expect = eq.cover.covers_minterm(&sg.state(s).code);
            assert_eq!(
                dec.netlist().next_value(&values, g),
                expect,
                "signal {} at state {s}",
                stg.signal_name(eq.signal)
            );
        }
    }
}

#[test]
fn library_mapping_two_input() {
    let (stg, sg) = vme_csc_sg();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let dec = decompose(&stg, &circuit, 2);
    let lib = Library::two_input();
    let mapping = map_to_library(dec.netlist(), &lib).expect("decomposed netlist maps");
    assert_eq!(mapping.num_cells(), dec.netlist().num_gates());
    assert!(mapping.area() > 0);
}

#[test]
fn library_rejects_wide_gates() {
    let (stg, sg) = vme_csc_sg();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    // The undedecomposed csc0 gate has fan-in 3.
    let lib = Library::two_input();
    let result = map_to_library(circuit.netlist(), &lib);
    assert!(result.is_err(), "complex gates exceed a 2-input library");
    // The standard library takes the complex gates directly.
    let std_lib = Library::standard();
    assert!(map_to_library(circuit.netlist(), &std_lib).is_ok());
}

#[test]
fn netlist_eval_c_element_and_sr() {
    let mut n = Netlist::new();
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_gate("c", GateKind::CElement, vec![a, b]);
    let q = n.add_gate("q", GateKind::SrLatch, vec![a, b]);
    // C: rises only when both high, holds otherwise.
    let mut v = vec![true, true, false, false];
    assert!(n.next_value(&v, 0));
    v = vec![true, false, true, false];
    assert!(n.next_value(&v, 0), "C holds 1 while inputs differ");
    v = vec![false, false, true, false];
    assert!(!n.next_value(&v, 0), "C falls when both low");
    // SR (reset dominant): set wins only without reset.
    v = vec![true, false, false, false];
    assert!(n.next_value(&v, 1));
    v = vec![true, true, false, true];
    assert!(!n.next_value(&v, 1), "reset dominates");
    let _ = (c, q);
}

#[test]
fn all_equations_cover_every_non_input() {
    let (stg, sg) = vme_csc_sg();
    let eqs = all_equations(&stg, &sg).unwrap();
    assert_eq!(eqs.len(), stg.non_input_signals().len());
}

#[test]
fn mixed_resolution_handles_choice_spec() {
    // The READ+WRITE controller (Fig. 5) needs a concurrency reduction
    // plus a state signal; resolve_mixed finds both greedily.
    let spec = stg::examples::vme_read_write();
    let r = crate::csc::resolve_mixed(&spec, 5).expect("mixed strategy resolves Fig. 5");
    let sg = StateGraph::build(&r.stg).unwrap();
    assert!(stg::encoding::has_csc(&r.stg, &sg));
    assert!(
        r.description.contains(';'),
        "two steps expected: {}",
        r.description
    );
}

#[test]
fn mixed_resolution_identity_on_clean_spec() {
    let spec = vme_read_csc();
    let r = crate::csc::resolve_mixed(&spec, 3).unwrap();
    assert!(r.description.contains("already holds"));
}

#[test]
fn iterative_resolution_on_read_cycle() {
    let spec = vme_read();
    let r = crate::csc::resolve_iteratively(&spec, 3).expect("one signal suffices");
    let sg = StateGraph::build(&r.stg).unwrap();
    assert!(stg::encoding::has_csc(&r.stg, &sg));
    assert_eq!(r.stg.num_signals(), 6, "exactly one signal added");
}

#[test]
fn insertion_candidates_are_ranked_and_valid() {
    let spec = vme_read();
    let candidates = crate::csc::insertion_candidates(&spec);
    assert!(candidates.len() >= 2, "both polarities of csc0 exist");
    // Best-first by state count.
    for w in candidates.windows(2) {
        assert!(w[0].num_states <= w[1].num_states);
    }
    // Every candidate actually has CSC.
    for c in candidates.iter().take(4) {
        let sg = StateGraph::build(&c.stg).unwrap();
        assert!(stg::encoding::has_csc(&c.stg, &sg), "{}", c.description);
    }
}

#[test]
fn atomic_netlist_matches_latch_semantics() {
    // In every SG state the atomic gate's next value equals the latch
    // next value computed from the set/reset networks.
    let (stg, sg) = vme_csc_sg();
    for style in [LatchStyle::CElement, LatchStyle::RsLatch] {
        let circ = synthesize_latch_circuit(&stg, &sg, style).unwrap();
        let (atomic, nets) = circ.atomic_netlist(&stg);
        for s in 0..sg.num_states() {
            let mut values = vec![false; atomic.num_nets()];
            for sig in stg.signals() {
                values[nets[sig.index()].index()] = sg.value(s, sig);
            }
            for c in &circ.covers {
                let g = atomic.driver_of(nets[c.signal.index()]).unwrap();
                let code = &sg.state(s).code;
                let set = c.set.covers_minterm(code);
                let reset = c.reset.covers_minterm(code);
                let q = sg.value(s, c.signal);
                let expect = set || (q && !reset);
                assert_eq!(
                    atomic.next_value(&values, g),
                    expect,
                    "{} at s{s}",
                    stg.signal_name(c.signal)
                );
            }
        }
    }
}
