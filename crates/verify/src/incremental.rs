//! Incremental re-verification for the decomposed repair loop.
//!
//! The Fig. 9 flow verifies *variants* of one circuit over and over:
//! the naive decomposition, the resubstituted repair, the final probe
//! of whichever variant won, and — across the CSC candidate loop —
//! each candidate's own sequence of variants. The monolithic checker
//! treats every call as a cold start. [`IncrementalVerifier`] memoises
//! the three parts of that work that survive from one call to the
//! next, keyed by content digests ([`stg::canon::keyed_digest`] over
//! the specification plus [`synth::Netlist::canonical_text`]):
//!
//! * **whole-circuit verdicts** — re-verifying a byte-identical circuit
//!   (the pipeline's final probe of an already-probed variant, warm
//!   service traffic) returns the cached report without exploring
//!   anything;
//! * **the spec side of the composition** — the engine's spec tracker
//!   (interned markings or explicit ids, plus each spec state's sorted
//!   enabled arcs) depends only on the specification, so one tracker
//!   per spec serves every circuit variant: re-verification after a
//!   gate change re-explores the composed product but never re-derives
//!   the token game;
//! * **settled-internal fixed points** — the initial composed state
//!   settles the internal (`mapN`) nets to their combinational fixed
//!   point, which depends only on the internal gates; resubstitution
//!   rewrites output gates and keeps the internals, so the repair's
//!   re-verification reuses the memoised settle.
//!
//! An earlier design verified each output *cone* separately under a
//! spec-driven environment (classic assume–guarantee). That is
//! deliberately **not** what this module does: the spec-driven
//! environment over-approximates the other gates and rejects exactly
//! the multiple-acknowledgment repairs (Fig. 9a) this flow exists to
//! certify — the environment no longer waits for the internal nets
//! whose acknowledgment makes the repair hazard-free. The memoisation
//! above is sound instead: every report is byte-identical to the
//! monolithic engine's (`tests/verify_parity.rs` asserts it), so
//! [`crate::VerifyOptions::incremental`] never changes flow output,
//! only the work done to produce it.

use std::collections::HashMap;

use stg::canon::{keyed_digest, Digest};
use stg::{StateSpace, Stg};
use synth::{NetId, Netlist};

use crate::circuit::VerificationReport;
use crate::engine::{explore, settle_initial, unsettled_report, SpecTracker, VerifyOptions};

/// Cache counters of one [`IncrementalVerifier`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Whole-circuit verdicts served from the report cache.
    pub full_hits: usize,
    /// Whole-circuit verifications actually explored.
    pub full_misses: usize,
    /// Settled-internal initial fixed points served from the cache.
    pub settle_hits: usize,
    /// Settled-internal initial fixed points computed.
    pub settle_misses: usize,
    /// Verifications that reused an existing spec tracker.
    pub tracker_reuses: usize,
}

/// A memoising re-verifier. Keep one instance alive across the
/// verify/resubstitute/candidate loop; create a fresh one per flow run
/// (entries are content-addressed, so sharing wider is safe but
/// unbounded).
#[derive(Debug, Default)]
pub struct IncrementalVerifier {
    fulls: HashMap<Digest, VerificationReport>,
    settles: HashMap<Digest, Option<Vec<bool>>>,
    trackers: HashMap<Digest, SpecTracker>,
    stats: IncrementalStats,
}

impl IncrementalVerifier {
    /// A verifier with empty caches.
    #[must_use]
    pub fn new() -> Self {
        IncrementalVerifier::default()
    }

    /// Cache counters so far.
    #[must_use]
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Verifies `netlist` against `stg`, reusing every memoised
    /// artifact that still applies. Same contract — and byte-identical
    /// reports — as [`crate::verify_with`].
    ///
    /// # Panics
    ///
    /// See [`crate::verify_circuit`].
    pub fn verify<S: StateSpace + ?Sized>(
        &mut self,
        stg: &Stg,
        sg: &S,
        netlist: &Netlist,
        signal_nets: &[NetId],
        options: &VerifyOptions,
    ) -> VerificationReport {
        assert!(signal_nets.len() >= stg.num_signals());
        let bound = options.bound.to_string();
        let binding = signal_binding(netlist, stg, signal_nets);

        // Whole-circuit verdict.
        let circuit_text = netlist.canonical_text() + &binding;
        let full_key = keyed_digest(
            stg,
            &[
                "verify-full",
                options.strategy.name(),
                &bound,
                &circuit_text,
            ],
        );
        if let Some(report) = self.fulls.get(&full_key) {
            self.stats.full_hits += 1;
            return report.clone();
        }
        self.stats.full_misses += 1;

        // Settled-internal fixed point: keyed by the internal gates,
        // the net-id layout (the settled vector is indexed by net id)
        // and the signal binding — but *not* the output gates' logic,
        // so output-gate rewrites (resubstitution keeps the layout and
        // the internals) hit.
        let layout: String = (0..netlist.num_nets())
            .map(|n| format!("{}\n", netlist.net_name(NetId::from_index(n))))
            .collect();
        let settle_key = keyed_digest(
            stg,
            &[
                "verify-settle",
                &layout,
                &internals_text(netlist, stg, signal_nets),
                &binding,
            ],
        );
        let init = match self.settles.get(&settle_key) {
            Some(init) => {
                self.stats.settle_hits += 1;
                init.clone()
            }
            None => {
                self.stats.settle_misses += 1;
                let init = settle_initial(stg, sg, netlist, signal_nets);
                self.settles.insert(settle_key, init.clone());
                init
            }
        };
        let Some(init) = init else {
            let report = unsettled_report();
            self.fulls.insert(full_key, report.clone());
            return report;
        };

        // Spec tracker: one per (spec, strategy, backend) — the spec
        // side of the composition is derived once per flow, not once
        // per circuit variant.
        let tracker_key = keyed_digest(
            stg,
            &[
                "verify-tracker",
                options.strategy.name(),
                sg.backend().name(),
            ],
        );
        let tracker = match self.trackers.entry(tracker_key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.stats.tracker_reuses += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(SpecTracker::new(options.strategy, sg))
            }
        };

        let report = explore(stg, sg, netlist, signal_nets, options, tracker, init);
        self.fulls.insert(full_key, report.clone());
        report
    }
}

/// The signal → net binding, canonically.
fn signal_binding(netlist: &Netlist, stg: &Stg, signal_nets: &[NetId]) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for s in stg.signals() {
        let _ = writeln!(
            text,
            "signal {} -> {}",
            stg.signal_name(s),
            netlist.net_name(signal_nets[s.index()])
        );
    }
    text
}

/// Canonical text of the *internal* (non-signal-driving) gates — the
/// part of the circuit the settled-initial fixed point depends on.
fn internals_text(netlist: &Netlist, stg: &Stg, signal_nets: &[NetId]) -> String {
    use std::fmt::Write as _;
    let is_signal_net = {
        let mut v = vec![false; netlist.num_nets()];
        for s in stg.signals() {
            v[signal_nets[s.index()].index()] = true;
        }
        v
    };
    let mut text = String::new();
    for gate in netlist.gates() {
        if is_signal_net[gate.output.index()] {
            continue;
        }
        let inputs: Vec<&str> = gate.inputs.iter().map(|n| netlist.net_name(*n)).collect();
        let _ = writeln!(
            text,
            "{} = {}({})",
            netlist.net_name(gate.output),
            gate.kind.name(),
            inputs.join(",")
        );
        if let synth::GateKind::Complex(e) = &gate.kind {
            let _ = writeln!(text, "  expr {e:?}");
        }
    }
    text
}
