//! Report types of the Muller-model composition checker, plus the
//! classic `verify_circuit` entry points (thin wrappers over
//! [`crate::engine`]).

use std::fmt;

use stg::{StateSpace, Stg};
use synth::{NetId, Netlist};

use crate::engine::{verify_with, VerifyOptions};

/// A decoded composed state, attached to every hazard and conformance
/// witness so reports are actionable straight from the CLI/JSON output
/// (no opaque internal state indices to chase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessState {
    /// Every net's value at the offending composed state, in net-id
    /// order (signals and decomposition internals alike).
    pub nets: Vec<(String, bool)>,
    /// The specification code at that state — the projection of the net
    /// values onto the signal nets, as a `0`/`1` string in signal
    /// order.
    pub spec_code: String,
}

impl fmt::Display for WitnessState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "code {} [", self.spec_code)?;
        for (i, (name, value)) in self.nets.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{name}={}", u8::from(*value))?;
        }
        f.write_str("]")
    }
}

/// A semimodularity (hazard) witness: gate `gate_output` was excited,
/// the event in `caused_by` fired, and the gate lost its excitation
/// without switching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardWitness {
    /// Index of the composed state (exploration order).
    pub state: usize,
    /// The de-excited gate's output net name.
    pub gate_output: String,
    /// Description of the event that caused the de-excitation.
    pub caused_by: String,
    /// The decoded composed state the hazard was observed in.
    pub witness: WitnessState,
}

/// A conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The circuit switched a specification signal the spec did not allow
    /// in that state.
    UnexpectedOutput {
        /// Net name of the offending signal.
        signal: String,
        /// Composed state index.
        state: usize,
        /// The decoded composed state.
        witness: WitnessState,
    },
    /// A stable circuit state (no excited gate) while the specification
    /// still expects non-input activity.
    OutputStuck {
        /// Composed state index.
        state: usize,
        /// The expected-but-unproducible spec labels.
        expected: Vec<String>,
        /// The decoded composed state.
        witness: WitnessState,
    },
    /// Internal nets failed to settle from the initial signal values.
    UnsettledInitialState,
    /// The exploration hit the composed-state limit
    /// ([`crate::VerifyOptions::bound`]); the run is *bounded*, not
    /// failed — the pipeline surfaces it as a distinct `FlowEvent`.
    StateLimit(usize),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnexpectedOutput {
                signal,
                state,
                witness,
            } => {
                write!(
                    f,
                    "unexpected output transition on {signal} in composed state {state} ({witness})"
                )
            }
            Violation::OutputStuck {
                state,
                expected,
                witness,
            } => {
                write!(
                    f,
                    "circuit stable in state {state} ({witness}) but spec expects {}",
                    expected.join(", ")
                )
            }
            Violation::UnsettledInitialState => {
                write!(f, "internal nets oscillate before any input arrives")
            }
            Violation::StateLimit(n) => write!(f, "state limit {n} exceeded"),
        }
    }
}

/// Outcome of the composed exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationReport {
    /// Hazards (semimodularity violations).
    pub hazards: Vec<HazardWitness>,
    /// Conformance violations.
    pub violations: Vec<Violation>,
    /// Number of composed states explored (under the incremental
    /// engine: summed over the explored cones).
    pub states_explored: usize,
}

impl VerificationReport {
    /// `true` if the circuit is speed-independent and conformant.
    #[must_use]
    pub fn is_speed_independent(&self) -> bool {
        self.hazards.is_empty() && self.violations.is_empty()
    }

    /// `true` when the exploration was cut by the state bound — the
    /// verdict is then *inconclusive*, not a proven failure.
    #[must_use]
    pub fn hit_state_limit(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::StateLimit(_)))
    }

    /// A one-line summary.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_speed_independent() {
            format!(
                "speed-independent: OK ({} composed states)",
                self.states_explored
            )
        } else {
            format!(
                "FAILED: {} hazard(s), {} conformance violation(s) over {} states",
                self.hazards.len(),
                self.violations.len(),
                self.states_explored
            )
        }
    }
}

/// Verifies a netlist against its STG specification by exhaustive
/// exploration of the composed state space, under the default
/// [`VerifyOptions`] (composed spec tracking, 500 000-state bound).
///
/// `signal_nets[i]` must be the net carrying signal `i` of the STG;
/// non-input signals must be gate outputs, inputs must be primary inputs.
/// Additional nets (decomposition internals) are unconstrained by the
/// spec but participate in the semimodularity check.
///
/// # Panics
///
/// Panics if `signal_nets` is shorter than the STG's signal count.
#[must_use]
pub fn verify_circuit<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    netlist: &Netlist,
    signal_nets: &[NetId],
) -> VerificationReport {
    verify_with(stg, sg, netlist, signal_nets, &VerifyOptions::default())
}

/// [`verify_circuit`] with an explicit composed-state limit.
///
/// # Panics
///
/// See [`verify_circuit`].
#[must_use]
pub fn verify_circuit_bounded<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    netlist: &Netlist,
    signal_nets: &[NetId],
    max_states: usize,
) -> VerificationReport {
    verify_with(
        stg,
        sg,
        netlist,
        signal_nets,
        &VerifyOptions::default().with_bound(max_states),
    )
}
