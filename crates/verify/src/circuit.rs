//! Muller-model composition of a netlist with its STG environment.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use petri::TransitionId;
use stg::{SignalKind, StateSpace, Stg};
use synth::{NetId, Netlist};

/// One composed state: specification state (index into the spec state
/// graph) plus the boolean value of every net.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CircuitState {
    /// Index into the specification state graph.
    pub spec_state: usize,
    /// Net values, indexed by net id.
    pub values: Vec<bool>,
}

/// An event of the composed system, for witness reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// The environment fired a specification input transition.
    Input(TransitionId),
    /// Gate `g` switched its output.
    Gate(usize),
}

/// A semimodularity (hazard) witness: gate `gate` was excited, event
/// `by` fired, and the gate lost its excitation without switching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardWitness {
    /// Index of the composed state (exploration order).
    pub state: usize,
    /// The de-excited gate's output net name.
    pub gate_output: String,
    /// Description of the event that caused the de-excitation.
    pub caused_by: String,
}

/// A conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The circuit switched a specification signal the spec did not allow
    /// in that state.
    UnexpectedOutput {
        /// Net name of the offending signal.
        signal: String,
        /// Composed state index.
        state: usize,
    },
    /// A stable circuit state (no excited gate) while the specification
    /// still expects non-input activity.
    OutputStuck {
        /// Composed state index.
        state: usize,
        /// The expected-but-unproducible spec labels.
        expected: Vec<String>,
    },
    /// Internal nets failed to settle from the initial signal values.
    UnsettledInitialState,
    /// The exploration hit the state limit.
    StateLimit(usize),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnexpectedOutput { signal, state } => {
                write!(
                    f,
                    "unexpected output transition on {signal} in composed state {state}"
                )
            }
            Violation::OutputStuck { state, expected } => {
                write!(
                    f,
                    "circuit stable in state {state} but spec expects {}",
                    expected.join(", ")
                )
            }
            Violation::UnsettledInitialState => {
                write!(f, "internal nets oscillate before any input arrives")
            }
            Violation::StateLimit(n) => write!(f, "state limit {n} exceeded"),
        }
    }
}

/// Outcome of the composed exploration.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Hazards (semimodularity violations).
    pub hazards: Vec<HazardWitness>,
    /// Conformance violations.
    pub violations: Vec<Violation>,
    /// Number of composed states explored.
    pub states_explored: usize,
}

impl VerificationReport {
    /// `true` if the circuit is speed-independent and conformant.
    #[must_use]
    pub fn is_speed_independent(&self) -> bool {
        self.hazards.is_empty() && self.violations.is_empty()
    }

    /// A one-line summary.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_speed_independent() {
            format!(
                "speed-independent: OK ({} composed states)",
                self.states_explored
            )
        } else {
            format!(
                "FAILED: {} hazard(s), {} conformance violation(s) over {} states",
                self.hazards.len(),
                self.violations.len(),
                self.states_explored
            )
        }
    }
}

/// Verifies a netlist against its STG specification by exhaustive
/// exploration of the composed state space.
///
/// `signal_nets[i]` must be the net carrying signal `i` of the STG;
/// non-input signals must be gate outputs, inputs must be primary inputs.
/// Additional nets (decomposition internals) are unconstrained by the
/// spec but participate in the semimodularity check.
///
/// # Panics
///
/// Panics if `signal_nets` is shorter than the STG's signal count.
#[must_use]
pub fn verify_circuit<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    netlist: &Netlist,
    signal_nets: &[NetId],
) -> VerificationReport {
    verify_circuit_bounded(stg, sg, netlist, signal_nets, 500_000)
}

/// [`verify_circuit`] with an explicit composed-state limit.
///
/// # Panics
///
/// See [`verify_circuit`].
#[must_use]
pub fn verify_circuit_bounded<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    netlist: &Netlist,
    signal_nets: &[NetId],
    max_states: usize,
) -> VerificationReport {
    assert!(signal_nets.len() >= stg.num_signals());
    let mut report = VerificationReport {
        hazards: Vec::new(),
        violations: Vec::new(),
        states_explored: 0,
    };
    // Which net corresponds to which signal (reverse map), and which nets
    // are spec-tracked non-inputs.
    let mut net_signal: Vec<Option<stg::SignalId>> = vec![None; netlist.num_nets()];
    for s in stg.signals() {
        net_signal[signal_nets[s.index()].index()] = Some(s);
    }

    // Initial values: signals from the SG, internals settled.
    let mut init = vec![false; netlist.num_nets()];
    for s in stg.signals() {
        init[signal_nets[s.index()].index()] = sg.value(0, s);
    }
    if !settle_internals(netlist, &net_signal, &mut init) {
        report.violations.push(Violation::UnsettledInitialState);
        return report;
    }

    let start = CircuitState {
        spec_state: 0,
        values: init,
    };
    let mut index: HashMap<CircuitState, usize> = HashMap::new();
    index.insert(start.clone(), 0);
    let mut states = vec![start];
    let mut queue = VecDeque::new();
    queue.push_back(0usize);

    while let Some(si) = queue.pop_front() {
        let state = states[si].clone();
        let events = enabled_events(stg, sg, netlist, &net_signal, &state);
        // Conformance: stability vs expected outputs.
        let gate_events: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::Gate(_)))
            .collect();
        if gate_events.is_empty() {
            let expected: Vec<String> = sg
                .ts()
                .enabled_labels(state.spec_state)
                .into_iter()
                .filter(|&t| {
                    stg.label(t)
                        .is_some_and(|l| stg.signal_kind(l.signal).is_non_input())
                })
                .map(|t| stg.label_string(t))
                .collect();
            if !expected.is_empty() {
                report.violations.push(Violation::OutputStuck {
                    state: si,
                    expected,
                });
            }
        }
        // Fire each event; check conformance and semimodularity.
        let excited_before = netlist.excited_gates(&state.values);
        for event in &events {
            let Some(next) = apply_event(stg, sg, netlist, &net_signal, &state, event) else {
                // An excited spec-tracked gate with no matching spec arc.
                if let Event::Gate(g) = event {
                    let name = netlist.net_name(netlist.gates()[*g].output).to_owned();
                    report.violations.push(Violation::UnexpectedOutput {
                        signal: name,
                        state: si,
                    });
                }
                continue;
            };
            // Semimodularity: every gate excited before (other than the
            // one that fired) must stay excited.
            for &g in &excited_before {
                if let Event::Gate(fg) = event {
                    if *fg == g {
                        continue;
                    }
                }
                if !netlist.gate_excited(&next.values, g) {
                    report.hazards.push(HazardWitness {
                        state: si,
                        gate_output: netlist.net_name(netlist.gates()[g].output).to_owned(),
                        caused_by: describe_event(stg, netlist, event),
                    });
                }
            }
            // Enqueue.
            if !index.contains_key(&next) {
                if states.len() >= max_states {
                    report.violations.push(Violation::StateLimit(max_states));
                    report.states_explored = states.len();
                    return report;
                }
                index.insert(next.clone(), states.len());
                queue.push_back(states.len());
                states.push(next);
            }
        }
    }
    report.states_explored = states.len();
    // Deduplicate hazard witnesses by (gate, cause) to keep reports short.
    report.hazards.sort_by(|a, b| {
        (&a.gate_output, &a.caused_by, a.state).cmp(&(&b.gate_output, &b.caused_by, b.state))
    });
    report
        .hazards
        .dedup_by(|a, b| a.gate_output == b.gate_output && a.caused_by == b.caused_by);
    report
}

/// Settles all internal (non-signal) nets; `false` if they oscillate.
fn settle_internals(
    netlist: &Netlist,
    net_signal: &[Option<stg::SignalId>],
    values: &mut [bool],
) -> bool {
    for _ in 0..=netlist.num_gates() {
        let mut changed = false;
        for g in 0..netlist.num_gates() {
            let out = netlist.gates()[g].output;
            if net_signal[out.index()].is_none() {
                let nv = netlist.next_value(values, g);
                if values[out.index()] != nv {
                    values[out.index()] = nv;
                    changed = true;
                }
            }
        }
        if !changed {
            return true;
        }
    }
    false
}

fn enabled_events<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    netlist: &Netlist,
    _net_signal: &[Option<stg::SignalId>],
    state: &CircuitState,
) -> Vec<Event> {
    let mut events = Vec::new();
    // Environment: spec-enabled input transitions.
    for t in sg.ts().enabled_labels(state.spec_state) {
        if stg
            .label(t)
            .is_some_and(|l| stg.signal_kind(l.signal) == SignalKind::Input)
        {
            events.push(Event::Input(t));
        }
    }
    // Circuit: excited gates.
    for g in netlist.excited_gates(&state.values) {
        events.push(Event::Gate(g));
    }
    events
}

/// Applies an event; `None` when a spec-tracked gate fires without a
/// matching specification arc (conformance failure).
fn apply_event<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    netlist: &Netlist,
    net_signal: &[Option<stg::SignalId>],
    state: &CircuitState,
    event: &Event,
) -> Option<CircuitState> {
    match event {
        Event::Input(t) => {
            let next_spec = sg.successor(state.spec_state, *t).expect("enabled");
            let label = stg.label(*t).expect("input transitions are labelled");
            let mut values = state.values.clone();
            // Find the input net of this signal.
            let net = (0..values.len())
                .find(|&i| net_signal[i] == Some(label.signal))
                .expect("signal has a net");
            values[net] = label.edge.value_after();
            Some(CircuitState {
                spec_state: next_spec,
                values,
            })
        }
        Event::Gate(g) => {
            let out = netlist.gates()[*g].output;
            let new_value = !state.values[out.index()];
            let mut values = state.values.clone();
            values[out.index()] = new_value;
            match net_signal[out.index()] {
                None => Some(CircuitState {
                    spec_state: state.spec_state,
                    values,
                }),
                Some(sig) => {
                    // The spec must allow this edge here.
                    let arc = sg
                        .ts()
                        .enabled_labels(state.spec_state)
                        .into_iter()
                        .find(|&t| {
                            stg.label(t).is_some_and(|l| {
                                l.signal == sig && l.edge.value_after() == new_value
                            })
                        })?;
                    let next_spec = sg.successor(state.spec_state, arc).expect("enabled");
                    Some(CircuitState {
                        spec_state: next_spec,
                        values,
                    })
                }
            }
        }
    }
}

fn describe_event(stg: &Stg, netlist: &Netlist, event: &Event) -> String {
    match event {
        Event::Input(t) => format!("input {}", stg.label_string(*t)),
        Event::Gate(g) => {
            format!("gate {}", netlist.net_name(netlist.gates()[*g].output))
        }
    }
}
