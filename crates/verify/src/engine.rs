//! The composed-space verification engine.
//!
//! One breadth-first core explores the Muller-model composition of a
//! gate netlist with its STG environment over a *packed* state
//! representation — bit-packed net values plus an interned spec-state
//! id — and two interchangeable spec trackers decide how the
//! specification side of each composed state is followed:
//!
//! * [`VerifyStrategy::ExplicitBfs`] — the seed behaviour: the spec is
//!   tracked by its dense state-graph id through the per-state
//!   [`StateSpace::ts`] transition structure. Requires a materialising
//!   backend.
//! * [`VerifyStrategy::Composed`] — the spec is tracked as a
//!   `(marking, code)` pair: markings are interned on the fly and
//!   successors come from replaying the Petri-net token game, so the
//!   strategy runs against *any* backend — including resident
//!   [`stg::SymbolicSetSpace`] spaces far above the materialise limit,
//!   which only contribute their [`StateSpace::initial_marking`] and
//!   [`StateSpace::initial_values`]. (The code half of the pair needs
//!   no storage of its own: along every composed path the values of the
//!   signal nets *are* the spec code, by the consistency invariant.)
//!
//! Both strategies enumerate events in transition-id order, so they
//! explore the identical composed space in the identical order: reports
//! and `states_explored` are byte-for-byte equal (asserted by
//! `tests/verify_parity.rs`).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::str::FromStr;

use petri::{Marking, TransitionId};
use stg::{SignalId, SignalKind, StateSpace, Stg};
use synth::{NetId, Netlist};

use crate::circuit::{HazardWitness, VerificationReport, Violation, WitnessState};

/// One spec state's enabled `(transition, successor)` arcs, sorted by
/// transition id.
type SpecArcs = Box<[(TransitionId, u32)]>;

/// The default composed-state limit of [`crate::verify_circuit`] (the
/// seed's hard-coded `500_000`, now configurable per run through
/// [`VerifyOptions::bound`] and salted into the flow's result-cache
/// key).
pub const DEFAULT_VERIFY_BOUND: usize = 500_000;

/// How the specification side of the composed exploration is tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyStrategy {
    /// Track the spec by explicit state-graph ids over
    /// [`StateSpace::ts`] (the seed behaviour; needs a materialising
    /// backend).
    ExplicitBfs,
    /// Track the spec as interned `(marking, code)` pairs via the token
    /// game — backend-agnostic, the default.
    #[default]
    Composed,
}

impl VerifyStrategy {
    /// The strategy's canonical CLI/protocol name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VerifyStrategy::ExplicitBfs => "explicit",
            VerifyStrategy::Composed => "composed",
        }
    }
}

impl fmt::Display for VerifyStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for VerifyStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "explicit" | "explicit-bfs" => Ok(VerifyStrategy::ExplicitBfs),
            "composed" => Ok(VerifyStrategy::Composed),
            other => Err(format!(
                "unknown verify strategy {other:?} (expected \"explicit\" or \"composed\")"
            )),
        }
    }
}

/// Configuration of one verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Composed-state limit; hitting it reports
    /// [`Violation::StateLimit`] (and the pipeline additionally emits a
    /// bounded-verification `FlowEvent`, so an inconclusive bounded run
    /// is never conflated with a real failure).
    pub bound: usize,
    /// Spec-tracking strategy. Output-neutral (parity-tested), so it
    /// stays out of result-cache keys, like the CSC sweep's thread
    /// count.
    pub strategy: VerifyStrategy,
    /// Route the flow's verification through the memoising
    /// [`crate::IncrementalVerifier`]: identical circuits are served
    /// from a digest-keyed report cache, and the spec tracker plus the
    /// settled-internal initial fixed point are reused across circuit
    /// variants. Reports are byte-identical to the monolithic engine's
    /// (parity-tested), so this flag — like the strategy — stays out of
    /// result-cache keys.
    pub incremental: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            bound: DEFAULT_VERIFY_BOUND,
            strategy: VerifyStrategy::default(),
            incremental: false,
        }
    }
}

impl VerifyOptions {
    /// This configuration with a different bound.
    #[must_use]
    pub fn with_bound(mut self, bound: usize) -> Self {
        self.bound = bound;
        self
    }

    /// This configuration with a different strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: VerifyStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// This configuration with the incremental engine toggled.
    #[must_use]
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }
}

/// Verifies `netlist` against `stg` under explicit options. The
/// engine-level entry point behind [`crate::verify_circuit`]; see that
/// function for the contract on `signal_nets`.
///
/// This always runs one full exploration — the memoising incremental
/// layer needs state across calls and lives in
/// [`crate::IncrementalVerifier`].
///
/// # Panics
///
/// Panics if `signal_nets` is shorter than the STG's signal count, and
/// — for [`VerifyStrategy::ExplicitBfs`] only — when the backend cannot
/// serve the per-state `ts()` view (resident spaces above the
/// materialise limit).
#[must_use]
pub fn verify_with<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    netlist: &Netlist,
    signal_nets: &[NetId],
    options: &VerifyOptions,
) -> VerificationReport {
    let Some(init) = settle_initial(stg, sg, netlist, signal_nets) else {
        return unsettled_report();
    };
    let mut tracker = SpecTracker::new(options.strategy, sg);
    explore(stg, sg, netlist, signal_nets, options, &mut tracker, init)
}

/// The report of a circuit whose internal nets oscillate before any
/// input arrives.
pub(crate) fn unsettled_report() -> VerificationReport {
    VerificationReport {
        hazards: Vec::new(),
        violations: vec![Violation::UnsettledInitialState],
        states_explored: 0,
    }
}

/// The initial composed net values: signal nets from the space's
/// initial code, internal nets settled to their combinational fixed
/// point. `None` when the internals oscillate. This fixed point depends
/// only on the specification's initial values and the internal gates —
/// not on the output gates — which is exactly what lets
/// [`crate::IncrementalVerifier`] reuse it across circuit variants that
/// only rewired their outputs.
pub(crate) fn settle_initial<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    netlist: &Netlist,
    signal_nets: &[NetId],
) -> Option<Vec<bool>> {
    let mut net_signal: Vec<Option<SignalId>> = vec![None; netlist.num_nets()];
    for s in stg.signals() {
        net_signal[signal_nets[s.index()].index()] = Some(s);
    }
    let mut init = vec![false; netlist.num_nets()];
    let initial_values = sg.initial_values();
    for s in stg.signals() {
        init[signal_nets[s.index()].index()] = initial_values[s.index()];
    }
    settle_internals(netlist, &net_signal, &mut init).then_some(init)
}

/// A hazard recorded during exploration, before dedup and witness
/// decoding.
struct RawHazard {
    state: u32,
    gate: usize,
    caused_by: String,
}

/// A violation recorded during exploration, before witness decoding.
enum RawViolation {
    UnexpectedOutput { signal: String, state: u32 },
    OutputStuck { state: u32, expected: Vec<String> },
    StateLimit(usize),
}

/// One composed exploration from a pre-settled initial state, over a
/// (possibly reused) spec tracker. Spec-driven (environment) events are
/// the input-signal transitions; every other signal must be driven by a
/// gate of `netlist`.
pub(crate) fn explore<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    netlist: &Netlist,
    signal_nets: &[NetId],
    options: &VerifyOptions,
    tracker: &mut SpecTracker,
    init: Vec<bool>,
) -> VerificationReport {
    assert!(signal_nets.len() >= stg.num_signals());
    let mut hazards: Vec<RawHazard> = Vec::new();
    let mut violations: Vec<RawViolation> = Vec::new();
    // Reverse map: which net carries which signal.
    let mut net_signal: Vec<Option<SignalId>> = vec![None; netlist.num_nets()];
    for s in stg.signals() {
        net_signal[signal_nets[s.index()].index()] = Some(s);
    }
    let env: Vec<bool> = stg
        .signals()
        .map(|s| stg.signal_kind(s) == SignalKind::Input)
        .collect();

    let mut arena = StateArena::new(netlist.num_nets());
    let start = arena.intern(tracker.initial(), &init);
    debug_assert_eq!(start, 0);
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(0);

    'bfs: while let Some(si) = queue.pop_front() {
        let (spec, values) = arena.unpack(si);
        let arcs = tracker.arcs(stg, sg, spec);
        let excited = netlist.excited_gates(&values);

        // Conformance: stability vs expected (gate-tracked) activity.
        if excited.is_empty() {
            let expected: Vec<String> = arcs
                .iter()
                .filter_map(|&(t, _)| {
                    stg.label(t)
                        .filter(|l| !env[l.signal.index()])
                        .map(|_| stg.label_string(t))
                })
                .collect();
            if !expected.is_empty() {
                violations.push(RawViolation::OutputStuck {
                    state: si,
                    expected,
                });
            }
        }

        // Semimodularity for one applied event: every gate excited
        // before it (other than the one that fired) must stay excited.
        let check_hazards = |hazards: &mut Vec<RawHazard>,
                             fired: Option<usize>,
                             next: &[bool],
                             cause: &dyn Fn() -> String| {
            for &g in &excited {
                if Some(g) == fired {
                    continue;
                }
                if !netlist.gate_excited(next, g) {
                    hazards.push(RawHazard {
                        state: si,
                        gate: g,
                        caused_by: cause(),
                    });
                }
            }
        };

        // Environment events first, then gates — both in id order, so
        // the two strategies discover states identically.
        for &(t, succ) in arcs {
            let Some(label) = stg.label(t) else { continue };
            if !env[label.signal.index()] {
                continue;
            }
            let mut next = values.clone();
            next[signal_nets[label.signal.index()].index()] = label.edge.value_after();
            check_hazards(&mut hazards, None, &next, &|| {
                format!("input {}", stg.label_string(t))
            });
            if !enqueue(
                &mut arena,
                &mut queue,
                &mut violations,
                succ,
                &next,
                options.bound,
            ) {
                break 'bfs;
            }
        }
        for &g in &excited {
            let out = netlist.gates()[g].output;
            let new_value = !values[out.index()];
            let mut next = values.clone();
            next[out.index()] = new_value;
            let next_spec = match net_signal[out.index()] {
                None => spec,
                Some(sig) => {
                    // The spec must allow this edge here (first matching
                    // transition in id order — both trackers agree).
                    let arc = arcs.iter().find(|&&(t, _)| {
                        stg.label(t)
                            .is_some_and(|l| l.signal == sig && l.edge.value_after() == new_value)
                    });
                    match arc {
                        Some(&(_, succ)) => succ,
                        None => {
                            violations.push(RawViolation::UnexpectedOutput {
                                signal: netlist.net_name(out).to_owned(),
                                state: si,
                            });
                            continue;
                        }
                    }
                }
            };
            check_hazards(&mut hazards, Some(g), &next, &|| {
                format!("gate {}", netlist.net_name(out))
            });
            if !enqueue(
                &mut arena,
                &mut queue,
                &mut violations,
                next_spec,
                &next,
                options.bound,
            ) {
                break 'bfs;
            }
        }
    }

    // Deduplicate hazards by (gate, cause) — the first (lowest-state)
    // witness of each class survives — then decode witnesses once per
    // surviving entry.
    hazards.sort_by(|a, b| {
        let an = netlist.net_name(netlist.gates()[a.gate].output);
        let bn = netlist.net_name(netlist.gates()[b.gate].output);
        (an, &a.caused_by, a.state).cmp(&(bn, &b.caused_by, b.state))
    });
    hazards.dedup_by(|a, b| a.gate == b.gate && a.caused_by == b.caused_by);
    let witness = |state: u32| arena.witness(stg, netlist, signal_nets, state);
    VerificationReport {
        hazards: hazards
            .into_iter()
            .map(|h| HazardWitness {
                state: h.state as usize,
                gate_output: netlist.net_name(netlist.gates()[h.gate].output).to_owned(),
                caused_by: h.caused_by,
                witness: witness(h.state),
            })
            .collect(),
        violations: violations
            .into_iter()
            .map(|v| match v {
                RawViolation::UnexpectedOutput { signal, state } => Violation::UnexpectedOutput {
                    signal,
                    state: state as usize,
                    witness: witness(state),
                },
                RawViolation::OutputStuck { state, expected } => Violation::OutputStuck {
                    state: state as usize,
                    expected,
                    witness: witness(state),
                },
                RawViolation::StateLimit(n) => Violation::StateLimit(n),
            })
            .collect(),
        states_explored: arena.len(),
    }
}

/// Interns and enqueues a successor; `false` when the bound was hit
/// (the caller stops exploring and reports what it has).
fn enqueue(
    arena: &mut StateArena,
    queue: &mut VecDeque<u32>,
    violations: &mut Vec<RawViolation>,
    spec: u32,
    values: &[bool],
    bound: usize,
) -> bool {
    match arena.intern_bounded(spec, values, bound) {
        Ok(Some(idx)) => {
            queue.push_back(idx);
            true
        }
        Ok(None) => true,
        Err(()) => {
            violations.push(RawViolation::StateLimit(bound));
            false
        }
    }
}

/// Settles all internal (non-signal) nets; `false` if they oscillate.
pub(crate) fn settle_internals(
    netlist: &Netlist,
    net_signal: &[Option<SignalId>],
    values: &mut [bool],
) -> bool {
    for _ in 0..=netlist.num_gates() {
        let mut changed = false;
        for g in 0..netlist.num_gates() {
            let out = netlist.gates()[g].output;
            if net_signal[out.index()].is_none() {
                let nv = netlist.next_value(values, g);
                if values[out.index()] != nv {
                    values[out.index()] = nv;
                    changed = true;
                }
            }
        }
        if !changed {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Packed composed-state arena
// ---------------------------------------------------------------------

/// Interned composed states: each state is one boxed `[u64]` of
/// `1 + ⌈nets/64⌉` words — the spec-state id followed by the bit-packed
/// net values. No per-state `Vec<bool>` survives the exploration.
struct StateArena {
    num_nets: usize,
    words: usize,
    index: HashMap<Box<[u64]>, u32>,
    states: Vec<Box<[u64]>>,
}

impl StateArena {
    fn new(num_nets: usize) -> Self {
        StateArena {
            num_nets,
            words: num_nets.div_ceil(64),
            index: HashMap::new(),
            states: Vec::new(),
        }
    }

    fn key(&self, spec: u32, values: &[bool]) -> Box<[u64]> {
        let mut key = vec![0u64; 1 + self.words];
        key[0] = u64::from(spec);
        for (i, &v) in values.iter().enumerate() {
            if v {
                key[1 + i / 64] |= 1u64 << (i % 64);
            }
        }
        key.into_boxed_slice()
    }

    /// Interns the (always fresh) start state.
    fn intern(&mut self, spec: u32, values: &[bool]) -> u32 {
        self.intern_bounded(spec, values, usize::MAX)
            .expect("no bound")
            .expect("start state is fresh")
    }

    /// Interns a state unless it is already known, building (and
    /// hashing) the packed key exactly once: `Ok(Some(idx))` for a new
    /// state, `Ok(None)` for a known one, `Err(())` when interning
    /// would exceed `bound`.
    fn intern_bounded(
        &mut self,
        spec: u32,
        values: &[bool],
        bound: usize,
    ) -> Result<Option<u32>, ()> {
        let key = self.key(spec, values);
        if self.index.contains_key(&key) {
            return Ok(None);
        }
        if self.states.len() >= bound {
            return Err(());
        }
        let idx = u32::try_from(self.states.len()).expect("composed space fits u32");
        self.index.insert(key.clone(), idx);
        self.states.push(key);
        Ok(Some(idx))
    }

    fn len(&self) -> usize {
        self.states.len()
    }

    /// The spec id and unpacked net values of state `i`.
    fn unpack(&self, i: u32) -> (u32, Vec<bool>) {
        let key = &self.states[i as usize];
        let spec = u32::try_from(key[0]).expect("spec id fits u32");
        let mut values = Vec::with_capacity(self.num_nets);
        for n in 0..self.num_nets {
            values.push(key[1 + n / 64] >> (n % 64) & 1 == 1);
        }
        (spec, values)
    }

    /// Decodes state `i` into a reportable witness: every net's value
    /// plus the spec-signal code (the projection of the net values onto
    /// the signal nets — identical to the spec code by the consistency
    /// invariant, so no backend decode is needed).
    fn witness(&self, stg: &Stg, netlist: &Netlist, signal_nets: &[NetId], i: u32) -> WitnessState {
        let (_, values) = self.unpack(i);
        let nets = (0..netlist.num_nets())
            .map(|n| (netlist.net_name(NetId::from_index(n)).to_owned(), values[n]))
            .collect();
        let spec_code = stg
            .signals()
            .map(|s| {
                if values[signal_nets[s.index()].index()] {
                    '1'
                } else {
                    '0'
                }
            })
            .collect();
        WitnessState { nets, spec_code }
    }
}

// ---------------------------------------------------------------------
// Spec trackers
// ---------------------------------------------------------------------

/// The specification side of the composed exploration: dense spec-state
/// ids plus, per id, the enabled `(transition, successor)` arcs sorted
/// by transition id.
#[derive(Debug)]
pub(crate) enum SpecTracker {
    /// Ids are the materialised backend's own state indices; arcs come
    /// from its `ts()` view.
    Explicit { arcs: HashMap<u32, SpecArcs> },
    /// Ids intern reachable markings in discovery order; arcs come from
    /// replaying the token game, lazily, one spec state at a time.
    Marking {
        index: HashMap<Marking, u32>,
        markings: Vec<Marking>,
        arcs: Vec<Option<SpecArcs>>,
    },
}

impl SpecTracker {
    /// A fresh tracker for one strategy over one space. Trackers are
    /// circuit-independent — [`crate::IncrementalVerifier`] keeps one
    /// per specification and reuses it across every circuit variant it
    /// verifies, so the spec side of the composition is derived once.
    pub(crate) fn new<S: StateSpace + ?Sized>(strategy: VerifyStrategy, sg: &S) -> Self {
        match strategy {
            VerifyStrategy::ExplicitBfs => SpecTracker::explicit(),
            VerifyStrategy::Composed => SpecTracker::marking(sg.initial_marking()),
        }
    }

    fn explicit() -> Self {
        SpecTracker::Explicit {
            arcs: HashMap::new(),
        }
    }

    fn marking(initial: Marking) -> Self {
        let mut index = HashMap::new();
        index.insert(initial.clone(), 0);
        SpecTracker::Marking {
            index,
            markings: vec![initial],
            arcs: vec![None],
        }
    }

    fn initial(&mut self) -> u32 {
        0
    }

    /// The enabled arcs of spec state `s`, sorted by transition id
    /// (computed once per spec state, then served from the cache).
    fn arcs<S: StateSpace + ?Sized>(
        &mut self,
        stg: &Stg,
        sg: &S,
        s: u32,
    ) -> &[(TransitionId, u32)] {
        match self {
            SpecTracker::Explicit { arcs } => arcs.entry(s).or_insert_with(|| {
                let mut out: Vec<(TransitionId, u32)> = sg
                    .ts()
                    .successors(s as usize)
                    .map(|(&t, to)| (t, u32::try_from(to).expect("spec state fits u32")))
                    .collect();
                out.sort_by_key(|&(t, _)| t);
                out.dedup_by_key(|&mut (t, _)| t);
                out.into_boxed_slice()
            }),
            SpecTracker::Marking {
                index,
                markings,
                arcs,
            } => {
                if arcs[s as usize].is_none() {
                    let net = stg.net();
                    let marking = markings[s as usize].clone();
                    let mut out = Vec::new();
                    for t in net.transitions() {
                        // The canonical firing rule — the same token game
                        // every other consumer replays.
                        let Some(next) = net.fire(&marking, t) else {
                            continue;
                        };
                        let succ = match index.get(&next) {
                            Some(&id) => id,
                            None => {
                                let id =
                                    u32::try_from(markings.len()).expect("spec state fits u32");
                                index.insert(next.clone(), id);
                                markings.push(next);
                                arcs.push(None);
                                id
                            }
                        };
                        out.push((t, succ));
                    }
                    arcs[s as usize] = Some(out.into_boxed_slice());
                }
                arcs[s as usize].as_ref().expect("just filled")
            }
        }
    }
}
