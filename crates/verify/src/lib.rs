//! Implementation verification (§2.1: *"After design is done ... it is
//! often desirable to check that the implementation is correct with
//! respect to the given specification"*).
//!
//! The core is the Muller-model composition of a gate [`synth::Netlist`]
//! with its STG environment: the joint state space of (specification
//! state, net values) is explored exhaustively, checking
//!
//! * **semimodularity** — an excited gate must never be de-excited by
//!   another event firing first (this is exactly the absence of hazards
//!   under the unbounded gate-delay model, §2.1's persistency argument
//!   lifted to the implementation);
//! * **conformance** — the circuit only produces output edges the
//!   specification allows, and reaches no stable state while the
//!   specification still requires outputs.
//!
//! Together these make the circuit *speed-independent* with respect to its
//! environment. The Fig. 9 experiment (accepting decomposition (a),
//! rejecting (b)) runs on this checker.
//!
//! The checker is an [`engine`] over packed composed states with two
//! spec-tracking strategies ([`VerifyStrategy`]): the explicit
//! state-graph walk of the seed, and a backend-agnostic `(marking,
//! code)` composition that runs against resident symbolic state spaces
//! far above the materialise limit. [`IncrementalVerifier`] adds the
//! memoising per-cone mode the decomposed repair loop re-verifies
//! through.

mod circuit;
mod engine;
mod incremental;

pub use circuit::{
    verify_circuit, verify_circuit_bounded, HazardWitness, VerificationReport, Violation,
    WitnessState,
};
pub use engine::{verify_with, VerifyOptions, VerifyStrategy, DEFAULT_VERIFY_BOUND};
pub use incremental::{IncrementalStats, IncrementalVerifier};

#[cfg(test)]
mod tests;
