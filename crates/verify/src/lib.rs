//! Implementation verification (§2.1: *"After design is done ... it is
//! often desirable to check that the implementation is correct with
//! respect to the given specification"*).
//!
//! The core is the Muller-model composition of a gate [`synth::Netlist`]
//! with its STG environment: the joint state space of (specification
//! marking, net values) is explored exhaustively, checking
//!
//! * **semimodularity** — an excited gate must never be de-excited by
//!   another event firing first (this is exactly the absence of hazards
//!   under the unbounded gate-delay model, §2.1's persistency argument
//!   lifted to the implementation);
//! * **conformance** — the circuit only produces output edges the
//!   specification allows, and reaches no stable state while the
//!   specification still requires outputs.
//!
//! Together these make the circuit *speed-independent* with respect to its
//! environment. The Fig. 9 experiment (accepting decomposition (a),
//! rejecting (b)) runs on this checker.

mod circuit;

pub use circuit::{verify_circuit, CircuitState, HazardWitness, VerificationReport, Violation};

#[cfg(test)]
mod tests;
