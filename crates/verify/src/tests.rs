//! Verification tests: Fig. 8 circuits accepted, Fig. 9b-style
//! decompositions rejected.

use boolmin::Expr;
use stg::examples::{toggle, vme_read_csc};
use stg::StateGraph;
use synth::complex_gate::synthesize_complex_gates;
use synth::decompose::{decompose, resubstitute};
use synth::latch_arch::{synthesize_latch_circuit, LatchStyle};
use synth::{GateKind, NetId, Netlist};

use crate::verify_circuit;

fn signal_nets_of<C>(
    stg: &stg::Stg,
    net_of: impl Fn(stg::SignalId) -> NetId,
    _c: &C,
) -> Vec<NetId> {
    stg.signals().map(net_of).collect()
}

#[test]
fn complex_gate_vme_is_speed_independent() {
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let nets = signal_nets_of(&stg, |s| circuit.signal_net(s), &circuit);
    let report = verify_circuit(&stg, &sg, circuit.netlist(), &nets);
    assert!(report.is_speed_independent(), "{}", report.summary());
}

#[test]
fn latch_architectures_are_speed_independent() {
    // Fig. 8: both the C-element and the RS-latch implementations are
    // hazard-free — certified per §3.4 by (a) the strict Muller-model
    // check on the atomic equivalent and (b) the monotonous-cover
    // condition on the set/reset networks.
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    for style in [LatchStyle::CElement, LatchStyle::RsLatch] {
        let circ = synthesize_latch_circuit(&stg, &sg, style).unwrap();
        let (atomic, nets) = circ.atomic_netlist(&stg);
        let report = verify_circuit(&stg, &sg, &atomic, &nets);
        assert!(
            report.is_speed_independent(),
            "style {style:?}: {}",
            report.summary()
        );
        let violations = synth::latch_arch::monotonic_violations(&stg, &sg, &circ.covers);
        assert!(violations.is_empty(), "style {style:?}: {violations:?}");
    }
}

#[test]
fn naive_decomposition_is_hazardous_fig9b() {
    // The naive two-input decomposition keeps D = LDTACK·csc0 and uses
    // map0 = csc0 + LDTACK' only inside csc0 — the paper's Fig. 9b shape.
    // map0's falling edge is never acknowledged: hazard.
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let dec = decompose(&stg, &circuit, 2);
    let nets = signal_nets_of(&stg, |s| dec.signal_net(s), &dec);
    let report = verify_circuit(&stg, &sg, dec.netlist(), &nets);
    assert!(
        !report.hazards.is_empty(),
        "expected a hazard: {}",
        report.summary()
    );
    assert!(report
        .hazards
        .iter()
        .any(|h| h.gate_output.starts_with("map")));
}

#[test]
fn resubstituted_decomposition_is_speed_independent_fig9a() {
    // Resubstitution rewrites D = LDTACK·map0, giving map0 the multiple
    // acknowledgment of Fig. 9a; the checker accepts it.
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let dec = decompose(&stg, &circuit, 2);
    let resub = resubstitute(&stg, &sg, &dec);
    let nets = signal_nets_of(&stg, |s| resub.signal_net(s), &resub);
    let report = verify_circuit(&stg, &sg, resub.netlist(), &nets);
    assert!(report.is_speed_independent(), "{}", report.summary());
    // The D gate now reads map0.
    let d_net = resub.signal_net(stg.signal_by_name("D").unwrap());
    let d_gate = resub.netlist().driver_of(d_net).unwrap();
    let input_names: Vec<&str> = resub.netlist().gates()[d_gate]
        .inputs
        .iter()
        .map(|n| resub.netlist().net_name(*n))
        .collect();
    assert!(
        input_names.iter().any(|n| n.starts_with("map")),
        "D should be fed by the shared map net: {input_names:?}"
    );
}

#[test]
fn wrong_gate_is_rejected() {
    // Implement toggle's x with an inverter instead of a buffer: the
    // circuit immediately produces x+ when the spec does not allow it.
    let stg = toggle();
    let sg = StateGraph::build(&stg).unwrap();
    let mut n = Netlist::new();
    let a = n.add_input("a");
    let not = Expr::not(Expr::Var(0));
    let x = n.add_gate("x", GateKind::Complex(not), vec![a]);
    let report = verify_circuit(&stg, &sg, &n, &[a, x]);
    assert!(!report.is_speed_independent());
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, crate::Violation::UnexpectedOutput { .. })));
}

#[test]
fn stuck_circuit_is_rejected() {
    // Implement x as constant 0: the spec expects x+ after a+, but the
    // circuit never produces it.
    let stg = toggle();
    let sg = StateGraph::build(&stg).unwrap();
    let mut n = Netlist::new();
    let a = n.add_input("a");
    let x = n.add_gate("x", GateKind::Complex(Expr::Const(false)), vec![]);
    let report = verify_circuit(&stg, &sg, &n, &[a, x]);
    assert!(!report.is_speed_independent());
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, crate::Violation::OutputStuck { .. })));
}

#[test]
fn correct_toggle_accepted() {
    let stg = toggle();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let nets: Vec<NetId> = stg.signals().map(|s| circuit.signal_net(s)).collect();
    let report = verify_circuit(&stg, &sg, circuit.netlist(), &nets);
    assert!(report.is_speed_independent(), "{}", report.summary());
}

// ---------------------------------------------------------------------
// Engine strategies and the incremental per-cone verifier
// ---------------------------------------------------------------------

use crate::{verify_with, IncrementalVerifier, VerifyOptions, VerifyStrategy};

fn both_strategies(
    stg: &stg::Stg,
    netlist: &Netlist,
    nets: &[NetId],
) -> (crate::VerificationReport, crate::VerificationReport) {
    let sg = StateGraph::build(stg).unwrap();
    let explicit = verify_with(
        stg,
        &sg,
        netlist,
        nets,
        &VerifyOptions::default().with_strategy(VerifyStrategy::ExplicitBfs),
    );
    let composed = verify_with(
        stg,
        &sg,
        netlist,
        nets,
        &VerifyOptions::default().with_strategy(VerifyStrategy::Composed),
    );
    (explicit, composed)
}

#[test]
fn strategies_explore_identically_on_passing_and_failing_circuits() {
    // Passing: the complex-gate VME circuit. Failing: its naive
    // decomposition (Fig. 9b). Reports — hazards, violations, decoded
    // witnesses, states_explored — must be byte-for-byte equal.
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let nets = signal_nets_of(&stg, |s| circuit.signal_net(s), &circuit);
    let (explicit, composed) = both_strategies(&stg, circuit.netlist(), &nets);
    assert!(explicit.is_speed_independent());
    assert_eq!(explicit, composed, "passing circuit");

    let dec = decompose(&stg, &circuit, 2);
    let dnets = signal_nets_of(&stg, |s| dec.signal_net(s), &dec);
    let (explicit, composed) = both_strategies(&stg, dec.netlist(), &dnets);
    assert!(!explicit.is_speed_independent());
    assert_eq!(explicit, composed, "failing circuit");
}

#[test]
fn bound_hit_is_reported_identically_by_both_strategies() {
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let nets = signal_nets_of(&stg, |s| circuit.signal_net(s), &circuit);
    for strategy in [VerifyStrategy::ExplicitBfs, VerifyStrategy::Composed] {
        let report = verify_with(
            &stg,
            &sg,
            circuit.netlist(),
            &nets,
            &VerifyOptions::default()
                .with_bound(5)
                .with_strategy(strategy),
        );
        assert!(report.hit_state_limit(), "{strategy}: bound must be hit");
        assert_eq!(report.states_explored, 5, "{strategy}");
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, crate::Violation::StateLimit(5))),
            "{strategy}"
        );
    }
}

#[test]
fn witnesses_decode_the_offending_state() {
    // The inverter-for-buffer circuit produces x+ when the spec does
    // not allow it; the violation must carry the decoded composed state
    // instead of an opaque index.
    let stg = toggle();
    let sg = StateGraph::build(&stg).unwrap();
    let mut n = Netlist::new();
    let a = n.add_input("a");
    let not = Expr::not(Expr::Var(0));
    let x = n.add_gate("x", GateKind::Complex(not), vec![a]);
    let report = verify_circuit(&stg, &sg, &n, &[a, x]);
    let witness = report
        .violations
        .iter()
        .find_map(|v| match v {
            crate::Violation::UnexpectedOutput { witness, .. } => Some(witness),
            _ => None,
        })
        .expect("unexpected-output violation");
    assert_eq!(witness.nets.len(), 2, "one entry per net");
    assert_eq!(witness.nets[0].0, "a");
    assert_eq!(witness.nets[1].0, "x");
    assert_eq!(witness.spec_code.len(), stg.num_signals());
    // Display is self-contained (code + net values).
    let text = report.violations[0].to_string();
    assert!(text.contains("code"), "{text}");
    assert!(text.contains("a="), "{text}");
}

#[test]
fn incremental_is_byte_identical_to_monolithic() {
    // Fig. 9a (resubstituted, hazard-free) and Fig. 9b (naive,
    // hazardous) through the memoising verifier: reports equal the
    // monolithic engine's exactly, and repeats are pure cache hits.
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let dec = decompose(&stg, &circuit, 2);
    let dnets = signal_nets_of(&stg, |s| dec.signal_net(s), &dec);
    let resub = resubstitute(&stg, &sg, &dec);
    let rnets = signal_nets_of(&stg, |s| resub.signal_net(s), &resub);

    let options = VerifyOptions::default().with_incremental(true);
    let mut verifier = IncrementalVerifier::new();
    let naive_inc = verifier.verify(&stg, &sg, dec.netlist(), &dnets, &options);
    let naive_mono = verify_with(&stg, &sg, dec.netlist(), &dnets, &VerifyOptions::default());
    assert_eq!(naive_inc, naive_mono, "9b byte-identical");
    assert!(!naive_inc.is_speed_independent());

    let resub_inc = verifier.verify(&stg, &sg, resub.netlist(), &rnets, &options);
    let resub_mono = verify_with(
        &stg,
        &sg,
        resub.netlist(),
        &rnets,
        &VerifyOptions::default(),
    );
    assert_eq!(resub_inc, resub_mono, "9a byte-identical");
    assert!(resub_inc.is_speed_independent(), "{}", resub_inc.summary());

    // Re-verifying the identical circuit (the pipeline's final probe
    // of an already-probed variant) is a pure cache hit.
    let before = verifier.stats();
    let again = verifier.verify(&stg, &sg, resub.netlist(), &rnets, &options);
    assert_eq!(again, resub_inc);
    let after = verifier.stats();
    assert_eq!(
        after.full_hits,
        before.full_hits + 1,
        "probe re-verify is a full hit"
    );
    assert_eq!(after.full_misses, before.full_misses, "nothing re-explored");
}

#[test]
fn incremental_reuses_spec_side_and_settles_across_variants() {
    // The naive decomposition and its resubstituted repair share the
    // specification and the internal (mapN) gates: the second verify
    // must reuse the memoised spec tracker and the settled-internal
    // fixed point even though the output gates changed.
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let dec = decompose(&stg, &circuit, 2);
    let dnets = signal_nets_of(&stg, |s| dec.signal_net(s), &dec);
    let resub = resubstitute(&stg, &sg, &dec);
    let rnets = signal_nets_of(&stg, |s| resub.signal_net(s), &resub);

    let options = VerifyOptions::default().with_incremental(true);
    let mut verifier = IncrementalVerifier::new();
    let _ = verifier.verify(&stg, &sg, dec.netlist(), &dnets, &options);
    let cold = verifier.stats();
    assert_eq!(cold.settle_misses, 1);
    assert_eq!(cold.tracker_reuses, 0);

    let repaired = verifier.verify(&stg, &sg, resub.netlist(), &rnets, &options);
    assert!(repaired.is_speed_independent());
    let warm = verifier.stats();
    assert_eq!(warm.full_misses, 2, "different circuit: report not shared");
    assert_eq!(
        warm.settle_hits, 1,
        "unchanged internals: settled fixed point reused ({warm:?})"
    );
    assert_eq!(
        warm.tracker_reuses, 1,
        "same spec: token game derived once ({warm:?})"
    );
}
