//! Verification tests: Fig. 8 circuits accepted, Fig. 9b-style
//! decompositions rejected.

use boolmin::Expr;
use stg::examples::{toggle, vme_read_csc};
use stg::StateGraph;
use synth::complex_gate::synthesize_complex_gates;
use synth::decompose::{decompose, resubstitute};
use synth::latch_arch::{synthesize_latch_circuit, LatchStyle};
use synth::{GateKind, NetId, Netlist};

use crate::verify_circuit;

fn signal_nets_of<C>(
    stg: &stg::Stg,
    net_of: impl Fn(stg::SignalId) -> NetId,
    _c: &C,
) -> Vec<NetId> {
    stg.signals().map(net_of).collect()
}

#[test]
fn complex_gate_vme_is_speed_independent() {
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let nets = signal_nets_of(&stg, |s| circuit.signal_net(s), &circuit);
    let report = verify_circuit(&stg, &sg, circuit.netlist(), &nets);
    assert!(report.is_speed_independent(), "{}", report.summary());
}

#[test]
fn latch_architectures_are_speed_independent() {
    // Fig. 8: both the C-element and the RS-latch implementations are
    // hazard-free — certified per §3.4 by (a) the strict Muller-model
    // check on the atomic equivalent and (b) the monotonous-cover
    // condition on the set/reset networks.
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    for style in [LatchStyle::CElement, LatchStyle::RsLatch] {
        let circ = synthesize_latch_circuit(&stg, &sg, style).unwrap();
        let (atomic, nets) = circ.atomic_netlist(&stg);
        let report = verify_circuit(&stg, &sg, &atomic, &nets);
        assert!(
            report.is_speed_independent(),
            "style {style:?}: {}",
            report.summary()
        );
        let violations = synth::latch_arch::monotonic_violations(&stg, &sg, &circ.covers);
        assert!(violations.is_empty(), "style {style:?}: {violations:?}");
    }
}

#[test]
fn naive_decomposition_is_hazardous_fig9b() {
    // The naive two-input decomposition keeps D = LDTACK·csc0 and uses
    // map0 = csc0 + LDTACK' only inside csc0 — the paper's Fig. 9b shape.
    // map0's falling edge is never acknowledged: hazard.
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let dec = decompose(&stg, &circuit, 2);
    let nets = signal_nets_of(&stg, |s| dec.signal_net(s), &dec);
    let report = verify_circuit(&stg, &sg, dec.netlist(), &nets);
    assert!(
        !report.hazards.is_empty(),
        "expected a hazard: {}",
        report.summary()
    );
    assert!(report
        .hazards
        .iter()
        .any(|h| h.gate_output.starts_with("map")));
}

#[test]
fn resubstituted_decomposition_is_speed_independent_fig9a() {
    // Resubstitution rewrites D = LDTACK·map0, giving map0 the multiple
    // acknowledgment of Fig. 9a; the checker accepts it.
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let dec = decompose(&stg, &circuit, 2);
    let resub = resubstitute(&stg, &sg, &dec);
    let nets = signal_nets_of(&stg, |s| resub.signal_net(s), &resub);
    let report = verify_circuit(&stg, &sg, resub.netlist(), &nets);
    assert!(report.is_speed_independent(), "{}", report.summary());
    // The D gate now reads map0.
    let d_net = resub.signal_net(stg.signal_by_name("D").unwrap());
    let d_gate = resub.netlist().driver_of(d_net).unwrap();
    let input_names: Vec<&str> = resub.netlist().gates()[d_gate]
        .inputs
        .iter()
        .map(|n| resub.netlist().net_name(*n))
        .collect();
    assert!(
        input_names.iter().any(|n| n.starts_with("map")),
        "D should be fed by the shared map net: {input_names:?}"
    );
}

#[test]
fn wrong_gate_is_rejected() {
    // Implement toggle's x with an inverter instead of a buffer: the
    // circuit immediately produces x+ when the spec does not allow it.
    let stg = toggle();
    let sg = StateGraph::build(&stg).unwrap();
    let mut n = Netlist::new();
    let a = n.add_input("a");
    let not = Expr::not(Expr::Var(0));
    let x = n.add_gate("x", GateKind::Complex(not), vec![a]);
    let report = verify_circuit(&stg, &sg, &n, &[a, x]);
    assert!(!report.is_speed_independent());
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, crate::Violation::UnexpectedOutput { .. })));
}

#[test]
fn stuck_circuit_is_rejected() {
    // Implement x as constant 0: the spec expects x+ after a+, but the
    // circuit never produces it.
    let stg = toggle();
    let sg = StateGraph::build(&stg).unwrap();
    let mut n = Netlist::new();
    let a = n.add_input("a");
    let x = n.add_gate("x", GateKind::Complex(Expr::Const(false)), vec![]);
    let report = verify_circuit(&stg, &sg, &n, &[a, x]);
    assert!(!report.is_speed_independent());
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, crate::Violation::OutputStuck { .. })));
}

#[test]
fn correct_toggle_accepted() {
    let stg = toggle();
    let sg = StateGraph::build(&stg).unwrap();
    let circuit = synthesize_complex_gates(&stg, &sg).unwrap();
    let nets: Vec<NetId> = stg.signals().map(|s| circuit.signal_net(s)).collect();
    let report = verify_circuit(&stg, &sg, circuit.netlist(), &nets);
    assert!(report.is_speed_independent(), "{}", report.summary());
}
