//! End-to-end service tests over real TCP sockets: warm-cache hits on
//! repeated submissions, concurrent independent clients, cancellation,
//! status — and the overload behaviours: saturation with load shedding
//! and retry convergence, per-client quotas, bounded request lines and
//! weighted queue-depth observability.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use asyncsynth::{Json, SynthesisOptions};
use server::client::{self, ClientOptions};
use server::protocol::{Priority, Request, Response};
use server::service::{Server, ServerConfig};

struct TestServer {
    addr: String,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
    cache_root: Option<std::path::PathBuf>,
}

/// Boots a server with a per-test cache directory and otherwise-default
/// admission limits.
fn boot(tag: &str, workers: usize) -> TestServer {
    let cache_root = std::env::temp_dir().join(format!(
        "asyncsynth-service-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_root);
    boot_with(&ServerConfig {
        workers,
        cache_dir: Some(cache_root),
        ..ServerConfig::default()
    })
}

fn boot_with(config: &ServerConfig) -> TestServer {
    let server = Server::bind("127.0.0.1:0", config).expect("server binds an ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        cache_root: config.cache_dir.clone(),
    }
}

impl TestServer {
    fn shutdown(self) {
        let _ = client::request(&self.addr, &Request::Shutdown, |_| {});
        let _ = self.handle.join();
        if let Some(cache_root) = &self.cache_root {
            let _ = std::fs::remove_dir_all(cache_root);
        }
    }
}

fn spec_text(build: fn() -> stg::Stg) -> String {
    stg::parse::write_g(&build())
}

/// A specification whose pipeline run takes hundreds of milliseconds —
/// long enough that admission decisions made while it occupies a worker
/// are deterministic, short enough for tests.
fn slow_spec_text() -> String {
    stg::parse::write_g(&corpus::generators::paralleliser(4, false))
}

/// A raw NDJSON connection: reader half plus writable stream, for tests
/// that drive several requests over one connection.
fn raw_connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (reader, stream)
}

fn send_request(stream: &mut TcpStream, request: &Request) {
    let mut line = request.render();
    line.push('\n');
    stream.write_all(line.as_bytes()).expect("send request");
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed while awaiting a response");
        if !line.trim().is_empty() {
            return Response::parse_line(&line).expect("well-formed response");
        }
    }
}

/// Polls `status` until some job is running (the window in which
/// admission decisions about a busy worker are deterministic).
fn wait_until_running(addr: &str) {
    for _ in 0..5000 {
        if let Ok(Response::Status { running, .. }) =
            client::request(addr, &Request::Status, |_| {})
        {
            if running >= 1 {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("no job ever started running");
}

#[test]
fn second_submission_is_a_cache_hit_with_identical_bytes() {
    let server = boot("cache-hit", 2);
    let spec = spec_text(stg::examples::vme_read);

    let mut first_events: Vec<String> = Vec::new();
    let first = client::submit_synth(
        &server.addr,
        &spec,
        &SynthesisOptions::default(),
        true,
        |response| {
            if let Response::Event { message, .. } = response {
                first_events.push(message.clone());
            }
        },
    )
    .expect("first submission succeeds");
    let Response::Result {
        cache: first_cache,
        summary: first_summary,
        ..
    } = first
    else {
        panic!("expected a result, got {first:?}");
    };
    assert_eq!(first_cache, "miss");
    assert!(
        first_events.iter().any(|e| e.contains("state space built")),
        "cold run synthesises: {first_events:?}"
    );

    let mut second_events: Vec<String> = Vec::new();
    let second = client::submit_synth(
        &server.addr,
        &spec,
        &SynthesisOptions::default(),
        true,
        |response| {
            if let Response::Event { message, .. } = response {
                second_events.push(message.clone());
            }
        },
    )
    .expect("second submission succeeds");
    let Response::Result {
        cache: second_cache,
        summary: second_summary,
        ..
    } = second
    else {
        panic!("expected a result, got {second:?}");
    };
    assert_eq!(second_cache, "hit", "same spec twice → warm hit");
    assert_eq!(
        second_summary.render(),
        first_summary.render(),
        "cache hit returns byte-identical results"
    );
    assert!(
        second_events.iter().all(|e| e.starts_with("cache hit")),
        "no synthesis stage re-runs on the hit: {second_events:?}"
    );

    server.shutdown();
}

#[test]
fn concurrent_clients_get_independent_correct_results() {
    let server = boot("concurrent", 4);
    // Five clients, four distinct controllers (two clients share the
    // toggle spec, racing on one cache slot).
    let workload: Vec<fn() -> stg::Stg> = vec![
        stg::examples::vme_read,
        stg::examples::vme_read_csc,
        stg::examples::vme_read_write,
        stg::examples::toggle,
        stg::examples::toggle,
    ];
    let expected_models: Vec<String> = workload
        .iter()
        .map(|build| build().name().to_owned())
        .collect();

    let addr = Arc::new(server.addr.clone());
    let results: Vec<(String, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = workload
            .iter()
            .map(|build| {
                let addr = Arc::clone(&addr);
                let text = spec_text(*build);
                scope.spawn(move || {
                    let response = client::submit_synth(
                        &addr,
                        &text,
                        &SynthesisOptions::default(),
                        false,
                        |_| {},
                    )
                    .expect("concurrent submission succeeds");
                    match response {
                        Response::Result { cache, summary, .. } => (cache, summary),
                        other => panic!("expected result, got {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for ((_cache, summary), submitted_model) in results.iter().zip(&expected_models) {
        let model = summary
            .get("model")
            .and_then(Json::as_str)
            .expect("summary has a model");
        // CSC repair may rename the model (`-csc` suffix); the result
        // must still belong to the spec this client submitted.
        assert!(
            model.starts_with(submitted_model.trim_end_matches("-csc")),
            "result {model:?} does not match submission {submitted_model:?}"
        );
        assert_eq!(
            summary.get("verification").and_then(Json::as_str),
            Some("passed"),
            "every client's circuit verifies: {summary}"
        );
    }
    // The duplicated toggle submissions must agree byte-for-byte.
    assert_eq!(results[3].1.render(), results[4].1.render());

    // Status reflects the drained queue and the configured pool.
    let status = client::request(&server.addr, &Request::Status, |_| {}).expect("status answered");
    match status {
        Response::Status {
            queued,
            queue_jobs,
            queue_capacity,
            running,
            completed,
            cancelled,
            panicked,
            shed,
            workers,
            cache,
        } => {
            assert_eq!(queued, 0);
            assert_eq!(queue_jobs, 0);
            assert_eq!(queue_capacity, ServerConfig::default().queue_capacity);
            assert_eq!(running, 0);
            assert_eq!(completed, 5);
            assert_eq!(cancelled, 0);
            assert_eq!(panicked, 0);
            assert_eq!(shed, 0);
            assert_eq!(workers, 4);
            let stats = cache.expect("cache configured");
            assert!(stats.stores >= 4, "{stats:?}");
        }
        other => panic!("expected status, got {other:?}"),
    }

    // The metrics export agrees with the drained status snapshot and
    // carries the request counters only the protocol loop sees.
    let metrics =
        client::request(&server.addr, &Request::Metrics, |_| {}).expect("metrics answered");
    match metrics {
        Response::Metrics { counters, gauges } => {
            assert_eq!(counters.get("jobs_completed"), Some(5));
            assert_eq!(counters.get("jobs_cancelled"), Some(0));
            assert_eq!(counters.get("worker_panics"), Some(0));
            assert_eq!(counters.get("shed_total"), Some(0));
            assert_eq!(counters.get("requests_synth"), Some(5));
            assert_eq!(counters.get("requests_status"), Some(1));
            assert_eq!(counters.get("requests_metrics"), Some(1));
            assert!(counters.get("cache_stores").unwrap_or(0) >= 4);
            assert_eq!(gauges.get("queue_depth"), Some(0));
            assert_eq!(gauges.get("queue_jobs"), Some(0));
            assert_eq!(
                gauges.get("queue_capacity").map(|n| n as usize),
                Some(ServerConfig::default().queue_capacity)
            );
            assert_eq!(gauges.get("queue_depth_high"), Some(0));
            assert_eq!(gauges.get("queue_depth_normal"), Some(0));
            assert_eq!(gauges.get("queue_depth_low"), Some(0));
            assert_eq!(gauges.get("jobs_running"), Some(0));
            assert_eq!(gauges.get("workers"), Some(4));
            assert!(gauges.get("cache_hit_permille").is_some());
        }
        other => panic!("expected metrics, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn malformed_requests_and_bad_specs_are_rejected_without_killing_the_server() {
    let server = boot("errors", 1);

    let err = client::request(
        &server.addr,
        &Request::Synth {
            spec_text: "this is not a .g file".to_owned(),
            options: SynthesisOptions::default(),
            priority: Priority::Normal,
            events: false,
        },
        |_| {},
    )
    .expect_err("bad spec is rejected");
    assert!(err.contains("bad specification"), "{err}");

    // The server still works afterwards.
    let response = client::submit_synth(
        &server.addr,
        &spec_text(stg::examples::toggle),
        &SynthesisOptions::default(),
        false,
        |_| {},
    )
    .expect("server survives bad input");
    assert!(matches!(response, Response::Result { .. }));

    server.shutdown();
}

#[test]
fn corpus_batch_submission_warms_the_cache_and_reports_per_spec_failures() {
    let server = boot("batch", 2);
    // A miniature corpus directory: two synthesisable controllers plus
    // an arbiter, whose output choice is non-persistent by design — its
    // entry must fail without failing the batch.
    let texts: Vec<String> = vec![
        spec_text(stg::examples::vme_read),
        spec_text(stg::examples::toggle),
        stg::parse::write_g(&corpus::generators::arbiter(2)),
    ];

    let cold = client::submit_batch(&server.addr, &texts, &SynthesisOptions::default(), |_| {})
        .expect("cold batch succeeds");
    let Response::BatchResult { results, .. } = &cold else {
        panic!("expected batch_result, got {cold:?}");
    };
    assert_eq!(results.len(), 3, "one entry per submitted spec, in order");
    for (entry, expected_model) in results.iter().zip(["vme-read", "toggle", "arbiter-2"]) {
        assert_eq!(
            entry.get("model").and_then(Json::as_str),
            Some(expected_model)
        );
        assert_eq!(
            entry.get("cache").and_then(Json::as_str),
            Some("miss"),
            "cold batch misses: {entry}"
        );
    }
    assert_eq!(
        results[0]
            .get("summary")
            .and_then(|s| s.get("verification"))
            .and_then(Json::as_str),
        Some("passed")
    );
    assert!(results[1].get("summary").is_some());
    let arbiter_error = results[2]
        .get("error")
        .and_then(Json::as_str)
        .expect("arbiter entry carries its pipeline error");
    assert!(
        arbiter_error.contains("implementab"),
        "the arbiter fails the §2.1 check: {arbiter_error}"
    );

    // The batch warmed the shared result cache: a plain synth submission
    // of a batch member is a byte-identical hit…
    let single = client::submit_synth(
        &server.addr,
        &texts[0],
        &SynthesisOptions::default(),
        false,
        |_| {},
    )
    .expect("single submission succeeds");
    let Response::Result { cache, summary, .. } = &single else {
        panic!("expected result, got {single:?}");
    };
    assert_eq!(cache, "hit", "batch-stored entries serve synth jobs");
    assert_eq!(
        summary.render(),
        results[0].get("summary").expect("stored summary").render()
    );

    // …and a repeated batch serves its successes from the cache while
    // re-running (and re-failing) the arbiter.
    let warm = client::submit_batch(&server.addr, &texts, &SynthesisOptions::default(), |_| {})
        .expect("warm batch succeeds");
    let Response::BatchResult { results: warm, .. } = &warm else {
        panic!("expected batch_result");
    };
    assert_eq!(warm[0].get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(warm[1].get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(warm[2].get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(
        warm[0].get("summary").expect("summary").render(),
        results[0].get("summary").expect("summary").render(),
        "warm hits are byte-identical to the cold run"
    );

    server.shutdown();
}

#[test]
fn cancel_of_unknown_job_reports_not_found() {
    let server = boot("cancel", 1);
    let response = client::request(&server.addr, &Request::Cancel { job: 9999 }, |_| {})
        .expect("cancel answered");
    match response {
        Response::Cancelled { job, found } => {
            assert_eq!(job, 9999);
            assert!(!found);
        }
        other => panic!("expected cancelled ack, got {other:?}"),
    }
    server.shutdown();
}

// -------------------------------------------------------------------
// Overload robustness
// -------------------------------------------------------------------

/// Saturation: many concurrent submitters against a tiny weighted
/// capacity. Every request gets exactly one terminal reply (the client
/// call returns exactly once, success or failure), retries converge —
/// rejected-then-retried submissions eventually succeed and serve from
/// the cache byte-identically — and the queue never grows past its
/// bound.
#[test]
fn saturation_sheds_then_retries_converge_onto_the_cache() {
    let cache_root = std::env::temp_dir().join(format!(
        "asyncsynth-service-test-{}-saturation",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_root);
    let server = boot_with(&ServerConfig {
        workers: 2,
        cache_dir: Some(cache_root),
        queue_capacity: 2,
        max_jobs_per_client: 0,
        ..ServerConfig::default()
    });
    let spec = spec_text(stg::examples::toggle);

    // Prime the cache so the saturating wave races on admission, not on
    // duplicated synthesis work.
    let primed = client::submit_synth(
        &server.addr,
        &spec,
        &SynthesisOptions::default(),
        false,
        |_| {},
    )
    .expect("priming submission succeeds");
    let Response::Result {
        summary: primed_summary,
        ..
    } = primed
    else {
        panic!("expected a result, got {primed:?}");
    };
    let expected = primed_summary.render();

    let submitters = 12;
    let retry_policy = ClientOptions {
        retries: 500,
        backoff_ms: 1,
        max_backoff_ms: 20,
        ..ClientOptions::default()
    };
    let addr = Arc::new(server.addr.clone());
    let outcomes: Vec<(Response, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..submitters)
            .map(|_| {
                let addr = Arc::clone(&addr);
                let spec = spec.clone();
                scope.spawn(move || {
                    let mut rejections = 0u64;
                    let response = client::submit_synth_with(
                        &addr,
                        &spec,
                        &SynthesisOptions::default(),
                        Priority::Normal,
                        &retry_policy,
                        false,
                        |response| {
                            if let Response::Rejected {
                                reason,
                                retry_after_ms,
                                ..
                            } = response
                            {
                                assert_eq!(reason, "queue_full");
                                assert!(*retry_after_ms >= 25, "hint present: {retry_after_ms}");
                                rejections += 1;
                            }
                        },
                    )
                    .expect("every saturating submitter eventually succeeds");
                    (response, rejections)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .collect()
    });

    // Exactly one terminal reply per request, all byte-identical hits.
    assert_eq!(outcomes.len(), submitters);
    for (response, _) in &outcomes {
        let Response::Result { cache, summary, .. } = response else {
            panic!("expected a result, got {response:?}");
        };
        assert_eq!(cache, "hit", "retried submissions land on the cache");
        assert_eq!(summary.render(), expected, "admission never changes bytes");
    }

    // The books balance: every admitted job completed, every shed
    // submission is counted, and the queue drained within its bound.
    let status = client::request(&server.addr, &Request::Status, |_| {}).expect("status answered");
    let Response::Status {
        queued,
        queue_jobs,
        queue_capacity,
        completed,
        shed,
        ..
    } = status
    else {
        panic!("expected status, got {status:?}");
    };
    assert_eq!(queued, 0);
    assert_eq!(queue_jobs, 0);
    assert_eq!(queue_capacity, 2);
    assert_eq!(completed, submitters as u64 + 1);
    let client_rejections: u64 = outcomes.iter().map(|(_, n)| n).sum();
    assert_eq!(
        shed, client_rejections,
        "server-side shed count matches the rejections clients observed"
    );

    server.shutdown();
}

/// Deterministic queue-full shedding on a capacity-1 queue: while a
/// long batch occupies the only worker, a second job fills the queue
/// and a third is rejected with the documented depth and backoff hint —
/// and every submission on the connection still gets exactly one
/// terminal reply.
#[test]
fn full_queue_rejects_with_depth_and_retry_hint() {
    let server = boot_with(&ServerConfig {
        workers: 1,
        cache_dir: None,
        queue_capacity: 1,
        max_jobs_per_client: 0,
        ..ServerConfig::default()
    });
    let (mut reader, mut stream) = raw_connect(&server.addr);

    // A slow batch (CSC repair per member) pins the worker.
    let batch = Request::Batch {
        spec_texts: vec![slow_spec_text(); 3],
        options: SynthesisOptions::default(),
        priority: Priority::Normal,
    };
    send_request(&mut stream, &batch);
    let accepted = read_response(&mut reader);
    let Response::Accepted { job: batch_job, .. } = accepted else {
        panic!("expected accepted, got {accepted:?}");
    };
    wait_until_running(&server.addr);

    // The batch is running, the queue is empty: one weight-1 job fits…
    let synth = Request::Synth {
        spec_text: spec_text(stg::examples::toggle),
        options: SynthesisOptions::default(),
        priority: Priority::Normal,
        events: false,
    };
    send_request(&mut stream, &synth);
    let accepted = read_response(&mut reader);
    let Response::Accepted { job: synth_job, .. } = accepted else {
        panic!("expected accepted, got {accepted:?}");
    };

    // …and the next is shed with the exact depth and hint the formula
    // promises (capacity 1, depth 1 → 25 + 100 ms).
    send_request(&mut stream, &synth);
    let rejected = read_response(&mut reader);
    let Response::Rejected {
        reason,
        queue_depth,
        retry_after_ms,
    } = rejected
    else {
        panic!("expected rejected, got {rejected:?}");
    };
    assert_eq!(reason, "queue_full");
    assert_eq!(queue_depth, 1);
    assert_eq!(retry_after_ms, 125);

    // Both admitted jobs still deliver exactly one terminal reply each,
    // in completion order: the batch, then the queued synth.
    let batch_result = read_response(&mut reader);
    let Response::BatchResult { job, results } = batch_result else {
        panic!("expected batch_result, got {batch_result:?}");
    };
    assert_eq!(job, batch_job);
    assert_eq!(results.len(), 3);
    let synth_result = read_response(&mut reader);
    let Response::Result { job, .. } = synth_result else {
        panic!("expected result, got {synth_result:?}");
    };
    assert_eq!(job, synth_job);

    // The shed is on the books.
    let metrics =
        client::request(&server.addr, &Request::Metrics, |_| {}).expect("metrics answered");
    let Response::Metrics { counters, .. } = metrics else {
        panic!("expected metrics");
    };
    assert_eq!(counters.get("shed_queue_full"), Some(1));
    assert_eq!(counters.get("shed_total"), Some(1));

    server.shutdown();
}

/// The per-connection quota sheds only the greedy connection: with one
/// live job allowed, a second submission on the same connection is
/// rejected as `client_quota` while a different connection sails
/// through.
#[test]
fn client_quota_sheds_the_greedy_connection_only() {
    let server = boot_with(&ServerConfig {
        workers: 1,
        cache_dir: None,
        queue_capacity: 0,
        max_jobs_per_client: 1,
        ..ServerConfig::default()
    });
    let (mut reader, mut stream) = raw_connect(&server.addr);

    let batch = Request::Batch {
        spec_texts: vec![slow_spec_text(); 3],
        options: SynthesisOptions::default(),
        priority: Priority::Normal,
    };
    send_request(&mut stream, &batch);
    let accepted = read_response(&mut reader);
    assert!(matches!(accepted, Response::Accepted { .. }));
    wait_until_running(&server.addr);

    // Same connection, second live job: over quota.
    let synth = Request::Synth {
        spec_text: spec_text(stg::examples::toggle),
        options: SynthesisOptions::default(),
        priority: Priority::Normal,
        events: false,
    };
    send_request(&mut stream, &synth);
    let rejected = read_response(&mut reader);
    let Response::Rejected { reason, .. } = rejected else {
        panic!("expected rejected, got {rejected:?}");
    };
    assert_eq!(reason, "client_quota");

    // A different connection is not the greedy one's hostage (its job
    // queues behind the batch and completes once the worker frees up).
    let other = client::submit_synth(
        &server.addr,
        &spec_text(stg::examples::toggle),
        &SynthesisOptions::default(),
        false,
        |_| {},
    )
    .expect("other connections are unaffected by the quota");
    assert!(matches!(other, Response::Result { .. }));

    // The greedy connection's batch still delivers its terminal reply.
    let batch_result = read_response(&mut reader);
    assert!(matches!(batch_result, Response::BatchResult { .. }));

    let metrics =
        client::request(&server.addr, &Request::Metrics, |_| {}).expect("metrics answered");
    let Response::Metrics { counters, .. } = metrics else {
        panic!("expected metrics");
    };
    assert_eq!(counters.get("shed_client_quota"), Some(1));

    server.shutdown();
}

/// An oversized request line is answered with an error and discarded;
/// the connection survives and keeps serving, and the event is counted.
#[test]
fn oversized_request_line_is_shed_without_killing_the_connection() {
    let server = boot_with(&ServerConfig {
        workers: 1,
        cache_dir: None,
        max_line_bytes: 1024,
        ..ServerConfig::default()
    });
    let (mut reader, mut stream) = raw_connect(&server.addr);

    // 8 KiB of garbage on one line — far past the 1 KiB budget.
    let mut oversized = vec![b'x'; 8 * 1024];
    oversized.push(b'\n');
    stream.write_all(&oversized).expect("send oversized line");
    let response = read_response(&mut reader);
    let Response::Error { job, message } = response else {
        panic!("expected error, got {response:?}");
    };
    assert_eq!(job, None);
    assert!(
        message.contains("exceeds 1024 bytes"),
        "error names the limit: {message}"
    );

    // The same connection still answers requests afterwards.
    send_request(&mut stream, &Request::Status);
    let status = read_response(&mut reader);
    assert!(matches!(status, Response::Status { .. }));

    let metrics =
        client::request(&server.addr, &Request::Metrics, |_| {}).expect("metrics answered");
    let Response::Metrics { counters, .. } = metrics else {
        panic!("expected metrics");
    };
    assert_eq!(counters.get("oversized_lines"), Some(1));
    assert!(counters.get("protocol_errors").unwrap_or(0) >= 1);

    server.shutdown();
}

/// Cancelling a running batch stops at the next member boundary: the
/// members that never started are reported as `cancelled` entries (one
/// entry per submitted spec, nothing lost), not silently dropped.
#[test]
fn cancel_mid_batch_stops_at_member_boundaries_and_reports_partial_work() {
    let server = boot_with(&ServerConfig {
        workers: 1,
        cache_dir: None,
        queue_capacity: 0,
        max_jobs_per_client: 0,
        ..ServerConfig::default()
    });
    let (mut reader, mut stream) = raw_connect(&server.addr);

    // Enough slow members that some are still pending when the cancel
    // lands, however many the member-level parallelism starts at once.
    let cores = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let members = 2 * cores + 8;
    let batch = Request::Batch {
        spec_texts: vec![slow_spec_text(); members],
        options: SynthesisOptions::default(),
        priority: Priority::Normal,
    };
    send_request(&mut stream, &batch);
    let accepted = read_response(&mut reader);
    let Response::Accepted { job, .. } = accepted else {
        panic!("expected accepted, got {accepted:?}");
    };
    wait_until_running(&server.addr);

    send_request(&mut stream, &Request::Cancel { job });
    let ack = read_response(&mut reader);
    let Response::Cancelled { found, .. } = ack else {
        panic!("expected cancelled ack, got {ack:?}");
    };
    assert!(found, "the running batch is cancellable");

    let result = read_response(&mut reader);
    let Response::BatchResult {
        job: result_job,
        results,
    } = result
    else {
        panic!("expected batch_result, got {result:?}");
    };
    assert_eq!(result_job, job);
    assert_eq!(results.len(), members, "one entry per member, none lost");
    let cancelled = results
        .iter()
        .filter(|e| e.get("cancelled").and_then(Json::as_bool) == Some(true))
        .count();
    assert!(
        cancelled >= 1,
        "members past the cancel point are reported as cancelled"
    );
    for entry in results
        .iter()
        .filter(|e| e.get("cancelled").and_then(Json::as_bool) == Some(true))
    {
        assert_eq!(
            entry.get("cache").and_then(Json::as_str),
            Some("skipped"),
            "cancelled members did not touch the flow: {entry}"
        );
        assert!(entry.get("summary").is_none());
    }

    server.shutdown();
}

/// `status`/`metrics` report the *weighted* queue depth — a queued
/// batch of 5 counts as 5 — with the raw job count and the per-priority
/// class split alongside, so observability agrees with admission.
#[test]
fn queue_depth_is_weighted_and_split_by_priority() {
    let server = boot_with(&ServerConfig {
        workers: 1,
        cache_dir: None,
        queue_capacity: 0,
        max_jobs_per_client: 0,
        ..ServerConfig::default()
    });
    let (mut reader, mut stream) = raw_connect(&server.addr);

    // Pin the worker with a slow batch, then park a 5-spec low-priority
    // batch in the queue.
    let pin = Request::Batch {
        spec_texts: vec![slow_spec_text(); 2],
        options: SynthesisOptions::default(),
        priority: Priority::Normal,
    };
    send_request(&mut stream, &pin);
    assert!(matches!(
        read_response(&mut reader),
        Response::Accepted { .. }
    ));
    wait_until_running(&server.addr);

    let parked = Request::Batch {
        spec_texts: vec![spec_text(stg::examples::toggle); 5],
        options: SynthesisOptions::default(),
        priority: Priority::Low,
    };
    send_request(&mut stream, &parked);
    assert!(matches!(
        read_response(&mut reader),
        Response::Accepted { .. }
    ));

    let status = client::request(&server.addr, &Request::Status, |_| {}).expect("status answered");
    let Response::Status {
        queued,
        queue_jobs,
        running,
        ..
    } = status
    else {
        panic!("expected status, got {status:?}");
    };
    assert_eq!(queued, 5, "weighted depth counts the batch's specs");
    assert_eq!(queue_jobs, 1, "raw job count still sees one queued job");
    assert_eq!(running, 1);

    let metrics =
        client::request(&server.addr, &Request::Metrics, |_| {}).expect("metrics answered");
    let Response::Metrics { gauges, .. } = metrics else {
        panic!("expected metrics");
    };
    assert_eq!(gauges.get("queue_depth"), Some(5));
    assert_eq!(gauges.get("queue_jobs"), Some(1));
    assert_eq!(gauges.get("queue_depth_low"), Some(5));
    assert_eq!(gauges.get("queue_depth_normal"), Some(0));
    assert_eq!(gauges.get("queue_depth_high"), Some(0));

    // Both batches still complete (the parked one after the pin).
    assert!(matches!(
        read_response(&mut reader),
        Response::BatchResult { .. }
    ));
    assert!(matches!(
        read_response(&mut reader),
        Response::BatchResult { .. }
    ));

    server.shutdown();
}
