//! End-to-end service tests over real TCP sockets: warm-cache hits on
//! repeated submissions, concurrent independent clients, cancellation
//! and status.

use std::sync::Arc;

use asyncsynth::{Json, SynthesisOptions};
use server::client;
use server::protocol::{Request, Response};
use server::service::{Server, ServerConfig};

struct TestServer {
    addr: String,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
    cache_root: std::path::PathBuf,
}

fn boot(tag: &str, workers: usize) -> TestServer {
    let cache_root = std::env::temp_dir().join(format!(
        "asyncsynth-service-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_root);
    let server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            workers,
            cache_dir: Some(cache_root.clone()),
        },
    )
    .expect("server binds an ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        cache_root,
    }
}

impl TestServer {
    fn shutdown(self) {
        let _ = client::request(&self.addr, &Request::Shutdown, |_| {});
        let _ = self.handle.join();
        let _ = std::fs::remove_dir_all(&self.cache_root);
    }
}

fn spec_text(build: fn() -> stg::Stg) -> String {
    stg::parse::write_g(&build())
}

#[test]
fn second_submission_is_a_cache_hit_with_identical_bytes() {
    let server = boot("cache-hit", 2);
    let spec = spec_text(stg::examples::vme_read);

    let mut first_events: Vec<String> = Vec::new();
    let first = client::submit_synth(
        &server.addr,
        &spec,
        &SynthesisOptions::default(),
        true,
        |response| {
            if let Response::Event { message, .. } = response {
                first_events.push(message.clone());
            }
        },
    )
    .expect("first submission succeeds");
    let Response::Result {
        cache: first_cache,
        summary: first_summary,
        ..
    } = first
    else {
        panic!("expected a result, got {first:?}");
    };
    assert_eq!(first_cache, "miss");
    assert!(
        first_events.iter().any(|e| e.contains("state space built")),
        "cold run synthesises: {first_events:?}"
    );

    let mut second_events: Vec<String> = Vec::new();
    let second = client::submit_synth(
        &server.addr,
        &spec,
        &SynthesisOptions::default(),
        true,
        |response| {
            if let Response::Event { message, .. } = response {
                second_events.push(message.clone());
            }
        },
    )
    .expect("second submission succeeds");
    let Response::Result {
        cache: second_cache,
        summary: second_summary,
        ..
    } = second
    else {
        panic!("expected a result, got {second:?}");
    };
    assert_eq!(second_cache, "hit", "same spec twice → warm hit");
    assert_eq!(
        second_summary.render(),
        first_summary.render(),
        "cache hit returns byte-identical results"
    );
    assert!(
        second_events.iter().all(|e| e.starts_with("cache hit")),
        "no synthesis stage re-runs on the hit: {second_events:?}"
    );

    server.shutdown();
}

#[test]
fn concurrent_clients_get_independent_correct_results() {
    let server = boot("concurrent", 4);
    // Five clients, four distinct controllers (two clients share the
    // toggle spec, racing on one cache slot).
    let workload: Vec<fn() -> stg::Stg> = vec![
        stg::examples::vme_read,
        stg::examples::vme_read_csc,
        stg::examples::vme_read_write,
        stg::examples::toggle,
        stg::examples::toggle,
    ];
    let expected_models: Vec<String> = workload
        .iter()
        .map(|build| build().name().to_owned())
        .collect();

    let addr = Arc::new(server.addr.clone());
    let results: Vec<(String, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = workload
            .iter()
            .map(|build| {
                let addr = Arc::clone(&addr);
                let text = spec_text(*build);
                scope.spawn(move || {
                    let response = client::submit_synth(
                        &addr,
                        &text,
                        &SynthesisOptions::default(),
                        false,
                        |_| {},
                    )
                    .expect("concurrent submission succeeds");
                    match response {
                        Response::Result { cache, summary, .. } => (cache, summary),
                        other => panic!("expected result, got {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for ((_cache, summary), submitted_model) in results.iter().zip(&expected_models) {
        let model = summary
            .get("model")
            .and_then(Json::as_str)
            .expect("summary has a model");
        // CSC repair may rename the model (`-csc` suffix); the result
        // must still belong to the spec this client submitted.
        assert!(
            model.starts_with(submitted_model.trim_end_matches("-csc")),
            "result {model:?} does not match submission {submitted_model:?}"
        );
        assert_eq!(
            summary.get("verification").and_then(Json::as_str),
            Some("passed"),
            "every client's circuit verifies: {summary}"
        );
    }
    // The duplicated toggle submissions must agree byte-for-byte.
    assert_eq!(results[3].1.render(), results[4].1.render());

    // Status reflects the drained queue and the configured pool.
    let status = client::request(&server.addr, &Request::Status, |_| {}).expect("status answered");
    match status {
        Response::Status {
            queued,
            running,
            completed,
            cancelled,
            panicked,
            workers,
            cache,
        } => {
            assert_eq!(queued, 0);
            assert_eq!(running, 0);
            assert_eq!(completed, 5);
            assert_eq!(cancelled, 0);
            assert_eq!(panicked, 0);
            assert_eq!(workers, 4);
            let stats = cache.expect("cache configured");
            assert!(stats.stores >= 4, "{stats:?}");
        }
        other => panic!("expected status, got {other:?}"),
    }

    // The metrics export agrees with the drained status snapshot and
    // carries the request counters only the protocol loop sees.
    let metrics =
        client::request(&server.addr, &Request::Metrics, |_| {}).expect("metrics answered");
    match metrics {
        Response::Metrics { counters, gauges } => {
            assert_eq!(counters.get("jobs_completed"), Some(5));
            assert_eq!(counters.get("jobs_cancelled"), Some(0));
            assert_eq!(counters.get("worker_panics"), Some(0));
            assert_eq!(counters.get("requests_synth"), Some(5));
            assert_eq!(counters.get("requests_status"), Some(1));
            assert_eq!(counters.get("requests_metrics"), Some(1));
            assert!(counters.get("cache_stores").unwrap_or(0) >= 4);
            assert_eq!(gauges.get("queue_depth"), Some(0));
            assert_eq!(gauges.get("jobs_running"), Some(0));
            assert_eq!(gauges.get("workers"), Some(4));
            assert!(gauges.get("cache_hit_permille").is_some());
        }
        other => panic!("expected metrics, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn malformed_requests_and_bad_specs_are_rejected_without_killing_the_server() {
    let server = boot("errors", 1);

    let err = client::request(
        &server.addr,
        &Request::Synth {
            spec_text: "this is not a .g file".to_owned(),
            options: SynthesisOptions::default(),
            events: false,
        },
        |_| {},
    )
    .expect_err("bad spec is rejected");
    assert!(err.contains("bad specification"), "{err}");

    // The server still works afterwards.
    let response = client::submit_synth(
        &server.addr,
        &spec_text(stg::examples::toggle),
        &SynthesisOptions::default(),
        false,
        |_| {},
    )
    .expect("server survives bad input");
    assert!(matches!(response, Response::Result { .. }));

    server.shutdown();
}

#[test]
fn corpus_batch_submission_warms_the_cache_and_reports_per_spec_failures() {
    let server = boot("batch", 2);
    // A miniature corpus directory: two synthesisable controllers plus
    // an arbiter, whose output choice is non-persistent by design — its
    // entry must fail without failing the batch.
    let texts: Vec<String> = vec![
        spec_text(stg::examples::vme_read),
        spec_text(stg::examples::toggle),
        stg::parse::write_g(&corpus::generators::arbiter(2)),
    ];

    let cold = client::submit_batch(&server.addr, &texts, &SynthesisOptions::default(), |_| {})
        .expect("cold batch succeeds");
    let Response::BatchResult { results, .. } = &cold else {
        panic!("expected batch_result, got {cold:?}");
    };
    assert_eq!(results.len(), 3, "one entry per submitted spec, in order");
    for (entry, expected_model) in results.iter().zip(["vme-read", "toggle", "arbiter-2"]) {
        assert_eq!(
            entry.get("model").and_then(Json::as_str),
            Some(expected_model)
        );
        assert_eq!(
            entry.get("cache").and_then(Json::as_str),
            Some("miss"),
            "cold batch misses: {entry}"
        );
    }
    assert_eq!(
        results[0]
            .get("summary")
            .and_then(|s| s.get("verification"))
            .and_then(Json::as_str),
        Some("passed")
    );
    assert!(results[1].get("summary").is_some());
    let arbiter_error = results[2]
        .get("error")
        .and_then(Json::as_str)
        .expect("arbiter entry carries its pipeline error");
    assert!(
        arbiter_error.contains("implementab"),
        "the arbiter fails the §2.1 check: {arbiter_error}"
    );

    // The batch warmed the shared result cache: a plain synth submission
    // of a batch member is a byte-identical hit…
    let single = client::submit_synth(
        &server.addr,
        &texts[0],
        &SynthesisOptions::default(),
        false,
        |_| {},
    )
    .expect("single submission succeeds");
    let Response::Result { cache, summary, .. } = &single else {
        panic!("expected result, got {single:?}");
    };
    assert_eq!(cache, "hit", "batch-stored entries serve synth jobs");
    assert_eq!(
        summary.render(),
        results[0].get("summary").expect("stored summary").render()
    );

    // …and a repeated batch serves its successes from the cache while
    // re-running (and re-failing) the arbiter.
    let warm = client::submit_batch(&server.addr, &texts, &SynthesisOptions::default(), |_| {})
        .expect("warm batch succeeds");
    let Response::BatchResult { results: warm, .. } = &warm else {
        panic!("expected batch_result");
    };
    assert_eq!(warm[0].get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(warm[1].get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(warm[2].get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(
        warm[0].get("summary").expect("summary").render(),
        results[0].get("summary").expect("summary").render(),
        "warm hits are byte-identical to the cold run"
    );

    server.shutdown();
}

#[test]
fn cancel_of_unknown_job_reports_not_found() {
    let server = boot("cancel", 1);
    let response = client::request(&server.addr, &Request::Cancel { job: 9999 }, |_| {})
        .expect("cancel answered");
    match response {
        Response::Cancelled { job, found } => {
            assert_eq!(job, 9999);
            assert!(!found);
        }
        other => panic!("expected cancelled ack, got {other:?}"),
    }
    server.shutdown();
}
