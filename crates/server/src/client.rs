//! A blocking client for the synthesis service (`asyncsynth submit`),
//! overload-aware: connect/request timeouts and bounded retry with
//! exponential backoff + jitter when the server sheds load.
//!
//! A `rejected` response is not an error — it is the server saying
//! "not now". [`request_with`] sleeps for the larger of the server's
//! `retry_after_ms` hint and its own exponential backoff (plus jitter,
//! so a shed thundering herd does not re-arrive in lockstep), then
//! reconnects and resubmits, up to [`ClientOptions::retries`] times.
//! Only when every attempt is shed does the call fail.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use asyncsynth::SynthesisOptions;

use crate::protocol::{Priority, Request, Response};

/// Client-side robustness knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOptions {
    /// Retry attempts after a `rejected` response (0 = fail on the
    /// first rejection).
    pub retries: u32,
    /// Base backoff before the first retry, in milliseconds; doubles
    /// per attempt. The actual sleep is the larger of this and the
    /// server's `retry_after_ms` hint, plus up to 25% jitter.
    pub backoff_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_backoff_ms: u64,
    /// TCP connect timeout in milliseconds (0 = OS default).
    pub connect_timeout_ms: u64,
    /// Per-read timeout while waiting for responses, in milliseconds
    /// (0 = wait forever — synthesis jobs can legitimately run long).
    pub request_timeout_ms: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            retries: 4,
            backoff_ms: 50,
            max_backoff_ms: 5_000,
            connect_timeout_ms: 10_000,
            request_timeout_ms: 0,
        }
    }
}

impl ClientOptions {
    /// The sleep before retry `attempt` (0-based), honouring the
    /// server's `retry_after_ms` hint: the larger of the hint and the
    /// capped exponential backoff, plus `jitter_seed`-determined jitter
    /// of up to 25% so shed clients don't retry in lockstep.
    #[must_use]
    pub fn retry_delay_ms(&self, attempt: u32, retry_after_ms: u64, jitter_seed: u64) -> u64 {
        let exponential = self
            .backoff_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_backoff_ms.max(self.backoff_ms));
        let base = exponential.max(retry_after_ms);
        base + jitter_seed % (base / 4 + 1)
    }
}

/// How one connection attempt ended.
enum Attempt {
    /// A terminal response (or hard failure) — done, no retry.
    Final(Result<Response, String>),
    /// The server shed the request; retry after the hint.
    Shed { retry_after_ms: u64 },
}

/// Connects to `addr`, submits one request and returns the final
/// response for the accepted job (a `result`, `check_result`,
/// `batch_result` or `error` message). Intermediate responses —
/// `accepted`, streamed `event`s and any `rejected` that triggers a
/// retry — are handed to `on_response` as they arrive.
///
/// Each retry opens a fresh connection: rejection hands back nothing to
/// wait on, and a new connection starts with a clean per-client quota.
///
/// # Errors
///
/// Connection failures, protocol violations, a server-side error
/// response (including job failures), or a request still shed after
/// every retry.
pub fn request_with(
    addr: &str,
    request: &Request,
    options: &ClientOptions,
    mut on_response: impl FnMut(&Response),
) -> Result<Response, String> {
    let mut attempt = 0u32;
    loop {
        match request_once(addr, request, options, &mut on_response)? {
            Attempt::Final(outcome) => return outcome,
            Attempt::Shed { retry_after_ms } => {
                if attempt >= options.retries {
                    return Err(format!(
                        "request shed by {addr} and still rejected after {} attempt(s); \
                         the service is overloaded — retry later",
                        attempt + 1
                    ));
                }
                let delay = options.retry_delay_ms(attempt, retry_after_ms, jitter_seed());
                std::thread::sleep(Duration::from_millis(delay));
                attempt += 1;
            }
        }
    }
}

/// [`request_with`] with default [`ClientOptions`].
///
/// # Errors
///
/// See [`request_with`].
pub fn request(
    addr: &str,
    request: &Request,
    on_response: impl FnMut(&Response),
) -> Result<Response, String> {
    request_with(addr, request, &ClientOptions::default(), on_response)
}

/// One connection: submit, then read until a terminal response or a
/// shed. The outer `Result` is for hard failures that no retry fixes.
fn request_once(
    addr: &str,
    request: &Request,
    options: &ClientOptions,
    on_response: &mut impl FnMut(&Response),
) -> Result<Attempt, String> {
    let mut stream = connect(addr, options)?;
    if options.request_timeout_ms > 0 {
        stream
            .set_read_timeout(Some(Duration::from_millis(options.request_timeout_ms)))
            .map_err(|e| format!("set read timeout: {e}"))?;
    }
    let mut line = request.render();
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("send failed: {e}"))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut job: Option<u64> = None;
    for line in reader.lines() {
        let line = line.map_err(|e| match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => format!(
                "no response within {} ms (request timeout)",
                options.request_timeout_ms
            ),
            _ => format!("read failed: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let response = Response::parse_line(&line)?;
        match &response {
            Response::Accepted { job: id, .. } => {
                job = Some(*id);
                on_response(&response);
            }
            Response::Event { .. } => on_response(&response),
            Response::Rejected { retry_after_ms, .. } if job.is_none() => {
                let retry_after_ms = *retry_after_ms;
                on_response(&response);
                return Ok(Attempt::Shed { retry_after_ms });
            }
            Response::Result { job: id, .. }
            | Response::CheckResult { job: id, .. }
            | Response::BatchResult { job: id, .. }
                if job == Some(*id) =>
            {
                return Ok(Attempt::Final(Ok(response)));
            }
            Response::Error { message, .. } => {
                return Ok(Attempt::Final(Err(message.clone())));
            }
            // Direct acknowledgements of non-job requests.
            Response::Status { .. }
            | Response::Metrics { .. }
            | Response::Cancelled { .. }
            | Response::ShuttingDown
                if job.is_none() =>
            {
                return Ok(Attempt::Final(Ok(response)));
            }
            // Responses for other jobs on a shared connection — not
            // ours, keep reading.
            _ => {}
        }
    }
    Ok(Attempt::Final(Err(
        "connection closed before a result arrived".to_owned(),
    )))
}

fn connect(addr: &str, options: &ClientOptions) -> Result<TcpStream, String> {
    if options.connect_timeout_ms == 0 {
        return TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"));
    }
    let timeout = Duration::from_millis(options.connect_timeout_ms);
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?;
    let mut last = None;
    for candidate in resolved {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(match last {
        Some(e) => format!("cannot connect to {addr}: {e}"),
        None => format!("cannot resolve {addr}: no addresses"),
    })
}

/// A cheap per-call random seed for retry jitter, drawn from the
/// standard library's randomly-keyed hasher (no extra dependencies, not
/// cryptographic — it only needs to de-synchronise retrying clients).
fn jitter_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

/// Submits one `.g` specification for synthesis at the given priority
/// and returns the final response, retrying per `client_options` when
/// the server sheds the request.
///
/// # Errors
///
/// See [`request_with`].
pub fn submit_synth_with(
    addr: &str,
    spec_text: &str,
    options: &SynthesisOptions,
    priority: Priority,
    client_options: &ClientOptions,
    events: bool,
    on_response: impl FnMut(&Response),
) -> Result<Response, String> {
    request_with(
        addr,
        &Request::Synth {
            spec_text: spec_text.to_owned(),
            options: options.clone(),
            priority,
            events,
        },
        client_options,
        on_response,
    )
}

/// Submits one `.g` specification for synthesis and returns the final
/// response (normal priority, default retry policy).
///
/// # Errors
///
/// See [`request_with`].
pub fn submit_synth(
    addr: &str,
    spec_text: &str,
    options: &SynthesisOptions,
    events: bool,
    on_response: impl FnMut(&Response),
) -> Result<Response, String> {
    submit_synth_with(
        addr,
        spec_text,
        options,
        Priority::default(),
        &ClientOptions::default(),
        events,
        on_response,
    )
}

/// Submits many `.g` specifications as one batch job at the given
/// priority and returns the final `batch_result` response (per-spec
/// failures ride inside it; the call only errors when the batch as a
/// whole is rejected past every retry).
///
/// # Errors
///
/// See [`request_with`].
pub fn submit_batch_with(
    addr: &str,
    spec_texts: &[String],
    options: &SynthesisOptions,
    priority: Priority,
    client_options: &ClientOptions,
    on_response: impl FnMut(&Response),
) -> Result<Response, String> {
    request_with(
        addr,
        &Request::Batch {
            spec_texts: spec_texts.to_vec(),
            options: options.clone(),
            priority,
        },
        client_options,
        on_response,
    )
}

/// Submits many `.g` specifications as one batch job (normal priority,
/// default retry policy).
///
/// # Errors
///
/// See [`request_with`].
pub fn submit_batch(
    addr: &str,
    spec_texts: &[String],
    options: &SynthesisOptions,
    on_response: impl FnMut(&Response),
) -> Result<Response, String> {
    submit_batch_with(
        addr,
        spec_texts,
        options,
        Priority::default(),
        &ClientOptions::default(),
        on_response,
    )
}

#[cfg(test)]
mod tests {
    use super::ClientOptions;

    #[test]
    fn retry_delay_honours_hint_backoff_and_cap() {
        let options = ClientOptions {
            retries: 4,
            backoff_ms: 50,
            max_backoff_ms: 400,
            ..ClientOptions::default()
        };
        // No jitter (seed 0): pure base delays.
        assert_eq!(options.retry_delay_ms(0, 0, 0), 50);
        assert_eq!(options.retry_delay_ms(1, 0, 0), 100);
        assert_eq!(options.retry_delay_ms(2, 0, 0), 200);
        assert_eq!(options.retry_delay_ms(3, 0, 0), 400);
        // The cap holds even at absurd attempt counts.
        assert_eq!(options.retry_delay_ms(62, 0, 0), 400);
        assert_eq!(options.retry_delay_ms(63, 0, 0), 400);
        // A larger server hint wins over the exponential base.
        assert_eq!(options.retry_delay_ms(0, 325, 0), 325);
        // Jitter adds at most 25%.
        for seed in [1, 7, u64::MAX] {
            let delay = options.retry_delay_ms(0, 0, seed);
            assert!((50..=62).contains(&delay), "jittered delay {delay}");
        }
    }
}
