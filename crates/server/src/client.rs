//! A blocking client for the synthesis service (`asyncsynth submit`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use asyncsynth::SynthesisOptions;

use crate::protocol::{Request, Response};

/// Connects to `addr`, submits one request and returns the final
/// response for the accepted job (a `result`, `check_result` or `error`
/// message). Intermediate responses — `accepted` and streamed `event`s —
/// are handed to `on_response` as they arrive.
///
/// # Errors
///
/// Connection failures, protocol violations, or a server-side error
/// response (including job failures).
pub fn request(
    addr: &str,
    request: &Request,
    mut on_response: impl FnMut(&Response),
) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut line = request.render();
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("send failed: {e}"))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut job: Option<u64> = None;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read failed: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = Response::parse_line(&line)?;
        match &response {
            Response::Accepted { job: id, .. } => {
                job = Some(*id);
                on_response(&response);
            }
            Response::Event { .. } => on_response(&response),
            Response::Result { job: id, .. }
            | Response::CheckResult { job: id, .. }
            | Response::BatchResult { job: id, .. }
                if job == Some(*id) =>
            {
                return Ok(response);
            }
            Response::Error { message, .. } => {
                return Err(message.clone());
            }
            // Direct acknowledgements of non-job requests.
            Response::Status { .. }
            | Response::Metrics { .. }
            | Response::Cancelled { .. }
            | Response::ShuttingDown
                if job.is_none() =>
            {
                return Ok(response);
            }
            // Responses for other jobs on a shared connection — not
            // ours, keep reading.
            _ => {}
        }
    }
    Err("connection closed before a result arrived".to_owned())
}

/// Submits one `.g` specification for synthesis and returns the final
/// response.
///
/// # Errors
///
/// See [`request`].
pub fn submit_synth(
    addr: &str,
    spec_text: &str,
    options: &SynthesisOptions,
    events: bool,
    on_response: impl FnMut(&Response),
) -> Result<Response, String> {
    request(
        addr,
        &Request::Synth {
            spec_text: spec_text.to_owned(),
            options: options.clone(),
            events,
        },
        on_response,
    )
}

/// Submits many `.g` specifications as one batch job and returns the
/// final `batch_result` response (per-spec failures ride inside it; the
/// call only errors when the batch as a whole is rejected).
///
/// # Errors
///
/// See [`request`].
pub fn submit_batch(
    addr: &str,
    spec_texts: &[String],
    options: &SynthesisOptions,
    on_response: impl FnMut(&Response),
) -> Result<Response, String> {
    request(
        addr,
        &Request::Batch {
            spec_texts: spec_texts.to_vec(),
            options: options.clone(),
        },
        on_response,
    )
}
