//! The synthesis daemon: accepts NDJSON connections over TCP (or a
//! single session over stdio), parses requests, runs admission control,
//! enqueues the admitted jobs and streams responses back.
//!
//! Each connection gets a dedicated reader (the accepting thread) and a
//! dedicated writer thread fed by an `mpsc` channel; job workers clone
//! the channel's sender, so `accepted` acknowledgements, streamed
//! events and final results all serialise through one writer without
//! interleaving partial lines. Client disconnection cancels that
//! connection's outstanding jobs.
//!
//! # Overload robustness
//!
//! Three independent guards keep one misbehaving client from degrading
//! everyone:
//!
//! * **Admission control** ([`JobQueue::submit`]): submissions beyond
//!   the weighted queue capacity or the per-connection quota are shed
//!   with a `rejected` response carrying `queue_depth` and a
//!   `retry_after_ms` backoff hint — never queued unboundedly.
//! * **Bounded request lines**: connection readers read at most
//!   [`ServerConfig::max_line_bytes`] per line. An oversized line is
//!   drained and answered with a `protocol_error`-counted `error`
//!   response; the connection survives, the daemon's memory does not
//!   scale with the rogue line.
//! * **Idle reaping**: TCP reads carry a [`ServerConfig::idle_timeout_ms`]
//!   read timeout. A connection that stays silent past it *and* has no
//!   live jobs (none queued, none running, so no results are owed) is
//!   closed, so slowloris-style connections cannot pin reader threads
//!   forever. A connection mid-line at the deadline is treated the
//!   same — trickling bytes does not count as liveness.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use asyncsynth::{cache_key, CacheStage, ResultCache};
use stg::parse::parse_g;
use telemetry::{Counters, Registry};

use crate::pool::WorkerPool;
use crate::protocol::{Priority, Request, Response};
use crate::queue::{ClientTicket, Job, JobKind, JobQueue, QueueLimits, Rejection, Reply};

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (default: available parallelism).
    pub workers: usize,
    /// Result-cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Weighted job-queue capacity — the sum of queued jobs' spec
    /// counts admission allows (default 256; 0 = unbounded).
    pub queue_capacity: usize,
    /// Maximum live (queued + running) jobs per connection (default
    /// 64; 0 = no quota).
    pub max_jobs_per_client: usize,
    /// Idle-connection reap timeout in milliseconds, TCP only (default
    /// 120 000; 0 = never reap). Connections with live jobs are never
    /// reaped.
    pub idle_timeout_ms: u64,
    /// Maximum NDJSON request-line length in bytes (default 4 MiB).
    /// Longer lines get an `error` response and are discarded.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let limits = QueueLimits::default();
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            cache_dir: None,
            queue_capacity: limits.capacity,
            max_jobs_per_client: limits.max_jobs_per_client,
            idle_timeout_ms: 120_000,
            max_line_bytes: 4 * 1024 * 1024,
        }
    }
}

impl ServerConfig {
    fn queue_limits(&self) -> QueueLimits {
        QueueLimits {
            capacity: self.queue_capacity,
            max_jobs_per_client: self.max_jobs_per_client,
        }
    }
}

/// Shared per-server context handed to every connection handler.
#[derive(Debug)]
struct ServerContext {
    queue: Arc<JobQueue>,
    cache: Option<Arc<ResultCache>>,
    workers: usize,
    /// Monotonic per-op request counters, exported by the `metrics` op
    /// (job-lifecycle counters live on the queue, cache counters on the
    /// cache; the registry holds what only the protocol loop sees).
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    /// Responses sent to some connection's channel but not yet put on
    /// the wire by its writer thread; shutdown drains on this.
    in_flight: Arc<AtomicI64>,
    /// The TCP address, used to self-connect and unblock `accept` on
    /// shutdown (absent in stdio mode).
    addr: Option<SocketAddr>,
    idle_timeout_ms: u64,
    max_line_bytes: usize,
}

/// A bound (but not yet running) synthesis daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    context: Arc<ServerContext>,
    pool: WorkerPool,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the worker pool.
    ///
    /// # Errors
    ///
    /// Socket and cache-directory failures.
    pub fn bind(addr: &str, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let cache = match &config.cache_dir {
            Some(dir) => Some(Arc::new(ResultCache::open(dir)?)),
            None => None,
        };
        let queue = Arc::new(JobQueue::with_limits(config.queue_limits()));
        let pool = WorkerPool::start(config.workers, Arc::clone(&queue), cache.clone());
        let context = Arc::new(ServerContext {
            queue,
            cache,
            workers: config.workers.max(1),
            registry: Arc::new(Registry::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            in_flight: Arc::new(AtomicI64::new(0)),
            addr: Some(listener.local_addr()?),
            idle_timeout_ms: config.idle_timeout_ms,
            max_line_bytes: config.max_line_bytes,
        });
        Ok(Server {
            listener,
            context,
            pool,
        })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a `shutdown` request arrives, then
    /// drains the queue and joins the workers.
    ///
    /// # Errors
    ///
    /// Fatal `accept` failures (per-connection errors are tolerated).
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.context.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let context = Arc::clone(&self.context);
            let _ = std::thread::Builder::new()
                .name("synth-conn".to_owned())
                .spawn(move || handle_tcp_connection(&stream, &context));
        }
        self.pool.shutdown();
        // The workers are joined, so every result already sits in some
        // connection's response channel; give the (detached) writer
        // threads a bounded window to put those bytes on the wire
        // before the process exits.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.context.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

/// Serves exactly one session over stdin/stdout (the `--stdio` mode:
/// handy behind inetd-style supervisors and in scripts), then drains
/// and exits.
///
/// # Errors
///
/// Cache-directory failures.
pub fn serve_stdio(config: &ServerConfig) -> std::io::Result<()> {
    let cache = match &config.cache_dir {
        Some(dir) => Some(Arc::new(ResultCache::open(dir)?)),
        None => None,
    };
    let queue = Arc::new(JobQueue::with_limits(config.queue_limits()));
    let pool = WorkerPool::start(config.workers, Arc::clone(&queue), cache.clone());
    let context = ServerContext {
        queue,
        cache,
        workers: config.workers.max(1),
        registry: Arc::new(Registry::new()),
        shutdown: Arc::new(AtomicBool::new(false)),
        in_flight: Arc::new(AtomicI64::new(0)),
        addr: None,
        idle_timeout_ms: config.idle_timeout_ms,
        max_line_bytes: config.max_line_bytes,
    };
    let stdin = std::io::stdin();
    // stdout outlives stdin's EOF: a one-shot piped session
    // (`printf '{"op":...}' | asyncsynth serve --stdio`) still gets its
    // results, so never cancel on EOF here.
    handle_connection(stdin.lock(), Box::new(std::io::stdout()), &context, false);
    pool.shutdown();
    Ok(())
}

fn handle_tcp_connection(stream: &TcpStream, context: &ServerContext) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    // The idle reaper: reads wake up every `idle_timeout_ms` so the
    // protocol loop can decide whether silence means "waiting for my
    // results" (spared) or "holding a reader thread hostage" (reaped).
    if context.idle_timeout_ms > 0 {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(context.idle_timeout_ms)));
    }
    let reader = BufReader::new(stream);
    // A dropped TCP connection takes the write side with it: nobody is
    // left to receive results, so outstanding jobs are cancelled.
    handle_connection(reader, Box::new(writer), context, true);
}

/// One attempt at reading the next request line, bounded by
/// `max_line_bytes`.
enum LineRead {
    /// A complete request line (without the terminator).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded the budget; the remainder is still unread.
    Overflow,
    /// The read timed out (idle-timeout TCP sockets only). Any partial
    /// line stays in `buf` for the next attempt.
    TimedOut,
}

/// Reads one `\n`-terminated line into `buf`, refusing to buffer more
/// than `max + 1` bytes (line plus terminator). `buf` carries partial
/// data across [`LineRead::TimedOut`] returns; complete lines drain it.
fn read_request_line(reader: &mut impl BufRead, buf: &mut Vec<u8>, max: usize) -> LineRead {
    loop {
        let budget = (max as u64 + 1).saturating_sub(buf.len() as u64);
        if budget == 0 {
            return LineRead::Overflow;
        }
        match reader.by_ref().take(budget).read_until(b'\n', buf) {
            Ok(0) => {
                // No bytes before the stream ended: EOF (a trailing
                // partial line is dropped — it was never a request).
                return LineRead::Eof;
            }
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8_lossy(buf).into_owned();
                    buf.clear();
                    return LineRead::Line(line);
                }
                // Budget exhausted mid-line (take() stopped us).
                if buf.len() > max {
                    return LineRead::Overflow;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return LineRead::TimedOut;
            }
            Err(_) => return LineRead::Eof,
        }
    }
}

/// Discards the unread remainder of an oversized line. Returns `true`
/// when the terminator was found (the connection can continue), `false`
/// on EOF, error or timeout mid-drain (a client trickling an unbounded
/// line is a slowloris; kill the connection rather than wait it out).
fn drain_oversized_line(reader: &mut impl BufRead) -> bool {
    loop {
        match reader.fill_buf() {
            Ok([]) => return false,
            Ok(data) => {
                if let Some(pos) = data.iter().position(|&b| b == b'\n') {
                    reader.consume(pos + 1);
                    return true;
                }
                let n = data.len();
                reader.consume(n);
            }
            Err(_) => return false,
        }
    }
}

/// The per-connection protocol loop, generic over the byte streams so
/// TCP and stdio share it.
fn handle_connection(
    mut reader: impl BufRead,
    writer: Box<dyn Write + Send>,
    context: &ServerContext,
    cancel_on_eof: bool,
) {
    let (tx, rx) = channel::<Response>();
    let reply = Reply::new(tx, Arc::clone(&context.in_flight));
    let writer_in_flight = Arc::clone(&context.in_flight);
    let writer_handle = std::thread::Builder::new()
        .name("synth-writer".to_owned())
        .spawn(move || {
            let mut writer = writer;
            let mut dead = false;
            while let Ok(response) = rx.recv() {
                if !dead {
                    // A failed write means the client is gone; keep
                    // draining so the in-flight counter still settles.
                    dead = writeln!(writer, "{}", response.to_json().render()).is_err()
                        || writer.flush().is_err();
                }
                writer_in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        })
        .expect("spawn writer thread");

    // This connection's admission ledger (live-job quota) and the jobs
    // it submitted, for disconnect cleanup.
    let ticket = Arc::new(ClientTicket::new());
    let mut my_jobs: Vec<u64> = Vec::new();
    let mut cancel_outstanding = cancel_on_eof;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let line = match read_request_line(&mut reader, &mut buf, context.max_line_bytes) {
            LineRead::Line(line) => line,
            LineRead::Eof => break,
            LineRead::TimedOut => {
                // Silence past the idle deadline: reap unless results
                // are still owed. A half-sent request line does not
                // count as liveness.
                if ticket.live() == 0 {
                    context.registry.incr("connections_reaped");
                    break;
                }
                continue;
            }
            LineRead::Overflow => {
                context.registry.incr("protocol_errors");
                context.registry.incr("oversized_lines");
                reply.send(Response::Error {
                    job: None,
                    message: format!(
                        "request line exceeds {} bytes; split the request or raise the \
                         server's line limit",
                        context.max_line_bytes
                    ),
                });
                buf.clear();
                if drain_oversized_line(&mut reader) {
                    continue;
                }
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = Request::parse_line(&line);
        if let Ok(request) = &request {
            context.registry.incr(op_counter(request));
        }
        match request {
            Ok(Request::Synth {
                spec_text,
                options,
                events,
                priority,
            }) => submit_job(
                context,
                &reply,
                &ticket,
                &mut my_jobs,
                &spec_text,
                options,
                priority,
                JobKind::Synth {
                    stream_events: events,
                },
            ),
            Ok(Request::Check {
                spec_text,
                options,
                priority,
            }) => submit_job(
                context,
                &reply,
                &ticket,
                &mut my_jobs,
                &spec_text,
                options,
                priority,
                JobKind::Check,
            ),
            Ok(Request::Batch {
                spec_texts,
                options,
                priority,
            }) => submit_batch(
                context,
                &reply,
                &ticket,
                &mut my_jobs,
                &spec_texts,
                options,
                priority,
            ),
            Ok(Request::Status) => {
                reply.send(Response::Status {
                    queued: context.queue.queued_weight(),
                    queue_jobs: context.queue.queued(),
                    queue_capacity: context.queue.limits().capacity,
                    running: context.queue.running(),
                    completed: context.queue.completed(),
                    cancelled: context.queue.cancelled(),
                    panicked: context.queue.panicked(),
                    shed: context.queue.shed_total(),
                    workers: context.workers,
                    cache: context.cache.as_deref().map(ResultCache::stats),
                });
            }
            Ok(Request::Metrics) => {
                reply.send(metrics_snapshot(context));
            }
            Ok(Request::Cancel { job }) => {
                let found = context.queue.cancel(job);
                reply.send(Response::Cancelled { job, found });
            }
            Ok(Request::Shutdown) => {
                context.shutdown.store(true, Ordering::Relaxed);
                reply.send(Response::ShuttingDown);
                // Unblock the accept loop so `run` observes the flag.
                if let Some(addr) = context.addr {
                    let _ = TcpStream::connect(addr);
                }
                // Drain semantics: this connection's jobs still finish
                // and deliver their results before the server exits.
                cancel_outstanding = false;
                break;
            }
            Err(message) => {
                context.registry.incr("protocol_errors");
                reply.send(Response::Error { job: None, message });
            }
        }
    }
    // Disconnected: abandon this connection's outstanding jobs (flags
    // of finished jobs are inert). Skipped for stdio EOF and shutdown
    // drains, where results are still owed.
    if cancel_outstanding {
        for id in my_jobs {
            let _ = context.queue.cancel(id);
        }
    }
    drop(reply);
    let _ = writer_handle.join();
}

/// The registry counter a request increments on arrival.
fn op_counter(request: &Request) -> &'static str {
    match request {
        Request::Synth { .. } => "requests_synth",
        Request::Check { .. } => "requests_check",
        Request::Batch { .. } => "requests_batch",
        Request::Status => "requests_status",
        Request::Metrics => "requests_metrics",
        Request::Cancel { .. } => "requests_cancel",
        Request::Shutdown => "requests_shutdown",
    }
}

/// Builds the `metrics` response: the registry's request counters plus
/// job-lifecycle and shed counters from the queue and cache counters,
/// with point-in-time gauges (weighted queue depth — total and per
/// priority class — raw queued-job count, capacity, busy workers, cache
/// hit ratio in permille — an integer, so renders are byte-stable).
fn metrics_snapshot(context: &ServerContext) -> Response {
    let mut counters = context.registry.snapshot_counters();
    counters.set("jobs_completed", context.queue.completed());
    counters.set("jobs_cancelled", context.queue.cancelled());
    counters.set("worker_panics", context.queue.panicked());
    counters.set("shed_total", context.queue.shed_total());
    counters.set("shed_queue_full", context.queue.shed_queue_full());
    counters.set("shed_client_quota", context.queue.shed_client_quota());
    let as64 = |n: usize| u64::try_from(n).unwrap_or(u64::MAX);
    let mut gauges = Counters::new();
    // `queue_depth` is the weighted backlog — what admission bounds; a
    // queued batch of 45 specs contributes 45. The raw job count rides
    // alongside as `queue_jobs`.
    gauges.set("queue_depth", as64(context.queue.queued_weight()));
    let by_class = context.queue.queued_weight_by_class();
    for priority in Priority::ALL {
        gauges.set(
            match priority {
                Priority::High => "queue_depth_high",
                Priority::Normal => "queue_depth_normal",
                Priority::Low => "queue_depth_low",
            },
            as64(by_class[priority.index()]),
        );
    }
    gauges.set("queue_jobs", as64(context.queue.queued()));
    gauges.set("queue_capacity", as64(context.queue.limits().capacity));
    gauges.set("jobs_running", as64(context.queue.running()));
    gauges.set("workers", as64(context.workers));
    if let Some(cache) = context.cache.as_deref() {
        let stats = cache.stats();
        counters.set("cache_hits", stats.hits);
        counters.set("cache_misses", stats.misses);
        counters.set("cache_stores", stats.stores);
        counters.set("cache_corrupt", stats.corrupt);
        let hit_permille = (stats.hits * 1000).checked_div(stats.hits + stats.misses);
        gauges.set("cache_hit_permille", hit_permille.unwrap_or(0));
    }
    Response::Metrics { counters, gauges }
}

#[allow(clippy::too_many_arguments)]
fn submit_job(
    context: &ServerContext,
    reply: &Reply,
    ticket: &Arc<ClientTicket>,
    my_jobs: &mut Vec<u64>,
    spec_text: &str,
    options: asyncsynth::SynthesisOptions,
    priority: Priority,
    kind: JobKind,
) {
    let spec = match parse_g(spec_text) {
        Ok(spec) => spec,
        Err(e) => {
            reply.send(Response::Error {
                job: None,
                message: format!("bad specification: {e}"),
            });
            return;
        }
    };
    let stage = match kind {
        JobKind::Synth { .. } | JobKind::Batch { .. } => CacheStage::Full,
        JobKind::Check => CacheStage::Check,
    };
    let key = context
        .cache
        .as_ref()
        .map(|_| cache_key(&spec, &options, stage).to_hex());
    enqueue(
        context, reply, ticket, my_jobs, spec, options, priority, kind, key,
    );
}

/// Parses every member of a batch request and enqueues the whole batch
/// as one job (the `accepted` acknowledgement carries no cache key —
/// each member has its own). A single malformed member rejects the
/// batch before anything is queued.
fn submit_batch(
    context: &ServerContext,
    reply: &Reply,
    ticket: &Arc<ClientTicket>,
    my_jobs: &mut Vec<u64>,
    spec_texts: &[String],
    options: asyncsynth::SynthesisOptions,
    priority: Priority,
) {
    let mut specs = Vec::with_capacity(spec_texts.len());
    for (i, text) in spec_texts.iter().enumerate() {
        match parse_g(text) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                reply.send(Response::Error {
                    job: None,
                    message: format!("bad specification #{i}: {e}"),
                });
                return;
            }
        }
    }
    let mut specs = specs.into_iter();
    let Some(first) = specs.next() else {
        reply.send(Response::Error {
            job: None,
            message: "empty batch".to_owned(),
        });
        return;
    };
    enqueue(
        context,
        reply,
        ticket,
        my_jobs,
        first,
        options,
        priority,
        JobKind::Batch {
            rest: specs.collect(),
        },
        None,
    );
}

/// Runs admission control and queues the job. The `accepted`
/// acknowledgement is sent from inside [`JobQueue::submit`]'s admission
/// callback — under the queue lock, *before* the job is visible to any
/// worker — so it always precedes the job's result on this connection's
/// response channel. A shed submission sends `rejected` (with the
/// current weighted depth and a backoff hint) and queues nothing.
#[allow(clippy::too_many_arguments)]
fn enqueue(
    context: &ServerContext,
    reply: &Reply,
    ticket: &Arc<ClientTicket>,
    my_jobs: &mut Vec<u64>,
    spec: stg::Stg,
    options: asyncsynth::SynthesisOptions,
    priority: Priority,
    kind: JobKind,
    key: Option<String>,
) {
    let id = context.queue.next_job_id();
    let job = Job {
        id,
        spec,
        options,
        kind,
        priority,
        client: Arc::clone(ticket),
        cancel: Arc::new(AtomicBool::new(false)),
        reply: reply.clone(),
    };
    let admitted = context.queue.submit(job, |job| {
        reply.send(Response::Accepted { job: job.id, key });
    });
    match admitted {
        Ok(()) => my_jobs.push(id),
        Err((job, Rejection::Closed)) => {
            reply.send(Response::Error {
                job: Some(job.id),
                message: "server is shutting down".to_owned(),
            });
        }
        Err((_, rejection)) => {
            context.registry.incr(match rejection {
                Rejection::QueueFull => "rejected_queue_full",
                Rejection::ClientQuota | Rejection::Closed => "rejected_client_quota",
            });
            reply.send(Response::Rejected {
                reason: rejection.reason().to_owned(),
                queue_depth: u64::try_from(context.queue.queued_weight()).unwrap_or(u64::MAX),
                retry_after_ms: context.queue.retry_after_ms(),
            });
        }
    }
}
