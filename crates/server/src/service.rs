//! The synthesis daemon: accepts NDJSON connections over TCP (or a
//! single session over stdio), parses requests, enqueues jobs and
//! streams responses back.
//!
//! Each connection gets a dedicated reader (the accepting thread) and a
//! dedicated writer thread fed by an `mpsc` channel; job workers clone
//! the channel's sender, so `accepted` acknowledgements, streamed
//! events and final results all serialise through one writer without
//! interleaving partial lines. Client disconnection cancels that
//! connection's outstanding jobs.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use asyncsynth::{cache_key, CacheStage, ResultCache};
use stg::parse::parse_g;
use telemetry::{Counters, Registry};

use crate::pool::WorkerPool;
use crate::protocol::{Request, Response};
use crate::queue::{Job, JobKind, JobQueue, Reply};

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (default: available parallelism).
    pub workers: usize,
    /// Result-cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            cache_dir: None,
        }
    }
}

/// Shared per-server context handed to every connection handler.
#[derive(Debug)]
struct ServerContext {
    queue: Arc<JobQueue>,
    cache: Option<Arc<ResultCache>>,
    workers: usize,
    /// Monotonic per-op request counters, exported by the `metrics` op
    /// (job-lifecycle counters live on the queue, cache counters on the
    /// cache; the registry holds what only the protocol loop sees).
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    /// Responses sent to some connection's channel but not yet put on
    /// the wire by its writer thread; shutdown drains on this.
    in_flight: Arc<AtomicI64>,
    /// The TCP address, used to self-connect and unblock `accept` on
    /// shutdown (absent in stdio mode).
    addr: Option<SocketAddr>,
}

/// A bound (but not yet running) synthesis daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    context: Arc<ServerContext>,
    pool: WorkerPool,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the worker pool.
    ///
    /// # Errors
    ///
    /// Socket and cache-directory failures.
    pub fn bind(addr: &str, config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let cache = match &config.cache_dir {
            Some(dir) => Some(Arc::new(ResultCache::open(dir)?)),
            None => None,
        };
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::start(config.workers, Arc::clone(&queue), cache.clone());
        let context = Arc::new(ServerContext {
            queue,
            cache,
            workers: config.workers.max(1),
            registry: Arc::new(Registry::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            in_flight: Arc::new(AtomicI64::new(0)),
            addr: Some(listener.local_addr()?),
        });
        Ok(Server {
            listener,
            context,
            pool,
        })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a `shutdown` request arrives, then
    /// drains the queue and joins the workers.
    ///
    /// # Errors
    ///
    /// Fatal `accept` failures (per-connection errors are tolerated).
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.context.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let context = Arc::clone(&self.context);
            let _ = std::thread::Builder::new()
                .name("synth-conn".to_owned())
                .spawn(move || handle_tcp_connection(&stream, &context));
        }
        self.pool.shutdown();
        // The workers are joined, so every result already sits in some
        // connection's response channel; give the (detached) writer
        // threads a bounded window to put those bytes on the wire
        // before the process exits.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.context.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

/// Serves exactly one session over stdin/stdout (the `--stdio` mode:
/// handy behind inetd-style supervisors and in scripts), then drains
/// and exits.
///
/// # Errors
///
/// Cache-directory failures.
pub fn serve_stdio(config: &ServerConfig) -> std::io::Result<()> {
    let cache = match &config.cache_dir {
        Some(dir) => Some(Arc::new(ResultCache::open(dir)?)),
        None => None,
    };
    let queue = Arc::new(JobQueue::new());
    let pool = WorkerPool::start(config.workers, Arc::clone(&queue), cache.clone());
    let context = ServerContext {
        queue,
        cache,
        workers: config.workers.max(1),
        registry: Arc::new(Registry::new()),
        shutdown: Arc::new(AtomicBool::new(false)),
        in_flight: Arc::new(AtomicI64::new(0)),
        addr: None,
    };
    let stdin = std::io::stdin();
    // stdout outlives stdin's EOF: a one-shot piped session
    // (`printf '{"op":...}' | asyncsynth serve --stdio`) still gets its
    // results, so never cancel on EOF here.
    handle_connection(stdin.lock(), Box::new(std::io::stdout()), &context, false);
    pool.shutdown();
    Ok(())
}

fn handle_tcp_connection(stream: &TcpStream, context: &ServerContext) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    // A dropped TCP connection takes the write side with it: nobody is
    // left to receive results, so outstanding jobs are cancelled.
    handle_connection(reader, Box::new(writer), context, true);
}

/// The per-connection protocol loop, generic over the byte streams so
/// TCP and stdio share it.
fn handle_connection(
    reader: impl BufRead,
    writer: Box<dyn Write + Send>,
    context: &ServerContext,
    cancel_on_eof: bool,
) {
    let (tx, rx) = channel::<Response>();
    let reply = Reply::new(tx, Arc::clone(&context.in_flight));
    let writer_in_flight = Arc::clone(&context.in_flight);
    let writer_handle = std::thread::Builder::new()
        .name("synth-writer".to_owned())
        .spawn(move || {
            let mut writer = writer;
            let mut dead = false;
            while let Ok(response) = rx.recv() {
                if !dead {
                    // A failed write means the client is gone; keep
                    // draining so the in-flight counter still settles.
                    dead = writeln!(writer, "{}", response.to_json().render()).is_err()
                        || writer.flush().is_err();
                }
                writer_in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        })
        .expect("spawn writer thread");

    // Jobs submitted by this connection, for disconnect cleanup.
    let mut my_jobs: Vec<u64> = Vec::new();
    let mut cancel_outstanding = cancel_on_eof;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request = Request::parse_line(&line);
        if let Ok(request) = &request {
            context.registry.incr(op_counter(request));
        }
        match request {
            Ok(Request::Synth {
                spec_text,
                options,
                events,
            }) => submit_job(
                context,
                &reply,
                &mut my_jobs,
                &spec_text,
                options,
                JobKind::Synth {
                    stream_events: events,
                },
            ),
            Ok(Request::Check { spec_text, options }) => submit_job(
                context,
                &reply,
                &mut my_jobs,
                &spec_text,
                options,
                JobKind::Check,
            ),
            Ok(Request::Batch {
                spec_texts,
                options,
            }) => submit_batch(context, &reply, &mut my_jobs, &spec_texts, options),
            Ok(Request::Status) => {
                reply.send(Response::Status {
                    queued: context.queue.queued(),
                    running: context.queue.running(),
                    completed: context.queue.completed(),
                    cancelled: context.queue.cancelled(),
                    panicked: context.queue.panicked(),
                    workers: context.workers,
                    cache: context.cache.as_deref().map(ResultCache::stats),
                });
            }
            Ok(Request::Metrics) => {
                reply.send(metrics_snapshot(context));
            }
            Ok(Request::Cancel { job }) => {
                let found = context.queue.cancel(job);
                reply.send(Response::Cancelled { job, found });
            }
            Ok(Request::Shutdown) => {
                context.shutdown.store(true, Ordering::Relaxed);
                reply.send(Response::ShuttingDown);
                // Unblock the accept loop so `run` observes the flag.
                if let Some(addr) = context.addr {
                    let _ = TcpStream::connect(addr);
                }
                // Drain semantics: this connection's jobs still finish
                // and deliver their results before the server exits.
                cancel_outstanding = false;
                break;
            }
            Err(message) => {
                context.registry.incr("protocol_errors");
                reply.send(Response::Error { job: None, message });
            }
        }
    }
    // Disconnected: abandon this connection's outstanding jobs (flags
    // of finished jobs are inert). Skipped for stdio EOF and shutdown
    // drains, where results are still owed.
    if cancel_outstanding {
        for id in my_jobs {
            let _ = context.queue.cancel(id);
        }
    }
    drop(reply);
    let _ = writer_handle.join();
}

/// The registry counter a request increments on arrival.
fn op_counter(request: &Request) -> &'static str {
    match request {
        Request::Synth { .. } => "requests_synth",
        Request::Check { .. } => "requests_check",
        Request::Batch { .. } => "requests_batch",
        Request::Status => "requests_status",
        Request::Metrics => "requests_metrics",
        Request::Cancel { .. } => "requests_cancel",
        Request::Shutdown => "requests_shutdown",
    }
}

/// Builds the `metrics` response: the registry's request counters plus
/// job-lifecycle counters from the queue and cache counters, with
/// point-in-time gauges (queue depth, busy workers, cache hit ratio in
/// permille — an integer, so renders are byte-stable).
fn metrics_snapshot(context: &ServerContext) -> Response {
    let mut counters = context.registry.snapshot_counters();
    counters.set("jobs_completed", context.queue.completed());
    counters.set("jobs_cancelled", context.queue.cancelled());
    counters.set("worker_panics", context.queue.panicked());
    let as64 = |n: usize| u64::try_from(n).unwrap_or(u64::MAX);
    let mut gauges = Counters::new();
    gauges.set("queue_depth", as64(context.queue.queued()));
    gauges.set("jobs_running", as64(context.queue.running()));
    gauges.set("workers", as64(context.workers));
    if let Some(cache) = context.cache.as_deref() {
        let stats = cache.stats();
        counters.set("cache_hits", stats.hits);
        counters.set("cache_misses", stats.misses);
        counters.set("cache_stores", stats.stores);
        counters.set("cache_corrupt", stats.corrupt);
        let hit_permille = (stats.hits * 1000).checked_div(stats.hits + stats.misses);
        gauges.set("cache_hit_permille", hit_permille.unwrap_or(0));
    }
    Response::Metrics { counters, gauges }
}

fn submit_job(
    context: &ServerContext,
    reply: &Reply,
    my_jobs: &mut Vec<u64>,
    spec_text: &str,
    options: asyncsynth::SynthesisOptions,
    kind: JobKind,
) {
    let spec = match parse_g(spec_text) {
        Ok(spec) => spec,
        Err(e) => {
            reply.send(Response::Error {
                job: None,
                message: format!("bad specification: {e}"),
            });
            return;
        }
    };
    let id = context.queue.next_job_id();
    let stage = match kind {
        JobKind::Synth { .. } | JobKind::Batch { .. } => CacheStage::Full,
        JobKind::Check => CacheStage::Check,
    };
    let key = context
        .cache
        .as_ref()
        .map(|_| cache_key(&spec, &options, stage).to_hex());
    reply.send(Response::Accepted { job: id, key });
    enqueue(context, reply, my_jobs, id, spec, options, kind);
}

/// Parses every member of a batch request and enqueues the whole batch
/// as one job (the `accepted` acknowledgement carries no cache key —
/// each member has its own). A single malformed member rejects the
/// batch before anything is queued.
fn submit_batch(
    context: &ServerContext,
    reply: &Reply,
    my_jobs: &mut Vec<u64>,
    spec_texts: &[String],
    options: asyncsynth::SynthesisOptions,
) {
    let mut specs = Vec::with_capacity(spec_texts.len());
    for (i, text) in spec_texts.iter().enumerate() {
        match parse_g(text) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                reply.send(Response::Error {
                    job: None,
                    message: format!("bad specification #{i}: {e}"),
                });
                return;
            }
        }
    }
    let Some((first, rest)) = specs.split_first() else {
        reply.send(Response::Error {
            job: None,
            message: "empty batch".to_owned(),
        });
        return;
    };
    let id = context.queue.next_job_id();
    reply.send(Response::Accepted { job: id, key: None });
    enqueue(
        context,
        reply,
        my_jobs,
        id,
        first.clone(),
        options,
        JobKind::Batch {
            rest: rest.to_vec(),
        },
    );
}

fn enqueue(
    context: &ServerContext,
    reply: &Reply,
    my_jobs: &mut Vec<u64>,
    id: u64,
    spec: stg::Stg,
    options: asyncsynth::SynthesisOptions,
    kind: JobKind,
) {
    let job = Job {
        id,
        spec,
        options,
        kind,
        cancel: Arc::new(AtomicBool::new(false)),
        reply: reply.clone(),
    };
    if let Err(job) = context.queue.submit(job) {
        reply.send(Response::Error {
            job: Some(job.id),
            message: "server is shutting down".to_owned(),
        });
    } else {
        my_jobs.push(id);
    }
}
