//! The service's job queue: a condvar-guarded FIFO shared between
//! connection handlers (producers) and the worker pool (consumers),
//! with per-job cancellation flags that reach into both queued and
//! running jobs.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use asyncsynth::SynthesisOptions;
use stg::Stg;

use crate::protocol::Response;

/// A connection's response channel, with an in-flight counter shared
/// with the server: incremented on `send`, decremented by the
/// connection's writer thread once the message is on the wire (or
/// known undeliverable). Shutdown drains on this counter, so results
/// already produced are never lost to process exit.
#[derive(Debug, Clone)]
pub struct Reply {
    tx: Sender<Response>,
    in_flight: Arc<AtomicI64>,
}

impl Reply {
    /// Wraps a channel sender with the server's in-flight counter.
    #[must_use]
    pub fn new(tx: Sender<Response>, in_flight: Arc<AtomicI64>) -> Reply {
        Reply { tx, in_flight }
    }

    /// Sends a response; a disconnected receiver is not an error (the
    /// message is simply undeliverable and not counted).
    pub fn send(&self, response: Response) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.tx.send(response).is_err() {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// What a job computes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// The full flow; optionally streaming per-stage events.
    Synth {
        /// Stream [`asyncsynth::FlowEvent`]s while running.
        stream_events: bool,
    },
    /// Only the §2.1 implementability check.
    Check,
    /// A whole corpus of specifications in one job, run through
    /// [`asyncsynth::run_batch`] after a per-spec cache probe. The
    /// first specification rides in [`Job::spec`]; the remainder here.
    /// Cancellation is coarse: honoured before the batch starts, not
    /// between its members.
    Batch {
        /// The second and subsequent specifications of the batch.
        rest: Vec<Stg>,
    },
}

/// One unit of work: a parsed specification plus options, the owning
/// connection's reply channel, and a shared cancellation flag.
#[derive(Debug)]
pub struct Job {
    /// Server-unique id (echoed in every response about this job).
    pub id: u64,
    /// The parsed specification.
    pub spec: Stg,
    /// Flow options.
    pub options: SynthesisOptions,
    /// Synth or check.
    pub kind: JobKind,
    /// Set to cancel; polled between pipeline stages.
    pub cancel: Arc<AtomicBool>,
    /// The owning connection's response channel.
    pub reply: Reply,
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The shared FIFO of pending jobs.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    next_id: AtomicU64,
    /// Cancellation flags of every live (queued *or* running) job,
    /// registered at submission. Keeping one registry closes the
    /// cancel/TOCTOU window between a worker popping a job and marking
    /// it running.
    live: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    /// Ids of currently-executing jobs.
    running: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    completed: AtomicU64,
    /// Jobs whose cancellation flag this queue newly raised (repeat
    /// cancels of the same job do not count twice).
    cancelled: AtomicU64,
    /// Jobs that panicked inside a worker (reported by the pool).
    panicked: AtomicU64,
}

impl Default for JobQueue {
    fn default() -> Self {
        JobQueue::new()
    }
}

impl JobQueue {
    /// An empty, open queue.
    #[must_use]
    pub fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            next_id: AtomicU64::new(1),
            live: Mutex::new(HashMap::new()),
            running: Mutex::new(HashMap::new()),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        }
    }

    /// Allocates the next job id.
    #[must_use]
    pub fn next_job_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Enqueues a job.
    ///
    /// # Errors
    ///
    /// Hands the job back (boxed) when the queue has been closed
    /// (server shutting down).
    pub fn submit(&self, job: Job) -> Result<(), Box<Job>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(Box::new(job));
        }
        self.live
            .lock()
            .expect("live lock")
            .insert(job.id, Arc::clone(&job.cancel));
        state.jobs.push_back(job);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available; `None` once the queue is closed
    /// and drained (the worker's exit signal).
    #[must_use]
    pub fn take(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Flags a queued or running job as cancelled. Queued jobs are
    /// discarded (with an error reply) when a worker reaches them;
    /// running jobs abort at the next stage boundary. The flag lives in
    /// the `live` registry from submission to completion, so a job
    /// mid-handoff (popped but not yet marked running) is still
    /// cancellable.
    #[must_use]
    pub fn cancel(&self, id: u64) -> bool {
        if let Some(flag) = self.live.lock().expect("live lock").get(&id) {
            if !flag.swap(true, Ordering::Relaxed) {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        false
    }

    /// Closes the queue: submissions fail, workers drain and exit.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Number of queued (not yet running) jobs.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.state.lock().expect("queue lock").jobs.len()
    }

    /// Number of currently-executing jobs.
    #[must_use]
    pub fn running(&self) -> usize {
        self.running.lock().expect("running lock").len()
    }

    /// Number of jobs finished (successfully or not) so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Number of jobs whose cancellation flag was newly raised so far.
    #[must_use]
    pub fn cancelled(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Number of jobs that panicked inside a worker so far.
    #[must_use]
    pub fn panicked(&self) -> u64 {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Records one worker-side job panic (called by the pool's
    /// `catch_unwind` recovery path).
    pub(crate) fn note_panic(&self) {
        self.panicked.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn mark_running(&self, id: u64, cancel: Arc<AtomicBool>) {
        self.running
            .lock()
            .expect("running lock")
            .insert(id, cancel);
    }

    pub(crate) fn mark_done(&self, id: u64) {
        self.running.lock().expect("running lock").remove(&id);
        self.live.lock().expect("live lock").remove(&id);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}
