//! The service's job queue: a bounded, priority-aware, condvar-guarded
//! queue shared between connection handlers (producers) and the worker
//! pool (consumers), with per-job cancellation flags that reach into
//! both queued and running jobs.
//!
//! # Admission control
//!
//! The queue is the service's one admission point. Every submission is
//! checked, atomically under the queue lock, against
//!
//! * the **weighted capacity** ([`QueueLimits::capacity`]): each job
//!   weighs its spec count (a `batch` of 45 specs weighs 45, a `synth`
//!   or `check` weighs 1), so a burst of fat batches cannot sneak past
//!   a job-count bound. One job heavier than the whole capacity is
//!   still admitted when the queue is empty — otherwise it could never
//!   run at all — which bounds the backlog at `capacity` plus one job.
//! * the **per-client quota** ([`QueueLimits::max_jobs_per_client`]):
//!   live (queued + running) jobs per connection, tracked by the
//!   [`ClientTicket`] each connection carries.
//!
//! A failed admission *hands the job back* with a [`Rejection`]; the
//! service turns that into the wire's `rejected` response and the job
//! is never queued — load shedding instead of unbounded growth.
//!
//! # Priorities
//!
//! Three classes ([`Priority`]) are served weighted round-robin at
//! 4:2:1 (high:normal:low): under sustained load high-priority work is
//! dequeued twice as often as normal and four times as often as low,
//! but no non-empty class is ever starved. Priority affects scheduling
//! order only — results and cache keys are identical at every class.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use asyncsynth::SynthesisOptions;
use stg::Stg;

use crate::protocol::{Priority, Response};

/// A connection's response channel, with an in-flight counter shared
/// with the server: incremented on `send`, decremented by the
/// connection's writer thread once the message is on the wire (or
/// known undeliverable). Shutdown drains on this counter, so results
/// already produced are never lost to process exit.
#[derive(Debug, Clone)]
pub struct Reply {
    tx: Sender<Response>,
    in_flight: Arc<AtomicI64>,
}

impl Reply {
    /// Wraps a channel sender with the server's in-flight counter.
    #[must_use]
    pub fn new(tx: Sender<Response>, in_flight: Arc<AtomicI64>) -> Reply {
        Reply { tx, in_flight }
    }

    /// Sends a response; a disconnected receiver is not an error (the
    /// message is simply undeliverable and not counted).
    pub fn send(&self, response: Response) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.tx.send(response).is_err() {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Per-connection admission ledger: the number of live (queued or
/// running) jobs this connection owns. Incremented at admission,
/// decremented when the job completes; the connection handler also
/// reads it to tell an idle connection from one still owed results.
#[derive(Debug, Default)]
pub struct ClientTicket {
    live: AtomicUsize,
}

impl ClientTicket {
    /// A fresh ticket with no live jobs.
    #[must_use]
    pub fn new() -> ClientTicket {
        ClientTicket::default()
    }

    /// Live (queued + running) jobs owned by this connection.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }
}

/// What a job computes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// The full flow; optionally streaming per-stage events.
    Synth {
        /// Stream [`asyncsynth::FlowEvent`]s while running.
        stream_events: bool,
    },
    /// Only the §2.1 implementability check.
    Check,
    /// A whole corpus of specifications in one job. The first
    /// specification rides in [`Job::spec`]; the remainder here.
    /// Cancellation is polled between members: a `cancel` on a running
    /// batch stops before the next spec starts, and the members it
    /// skipped are reported as cancelled entries in the `batch_result`.
    Batch {
        /// The second and subsequent specifications of the batch.
        rest: Vec<Stg>,
    },
}

/// One unit of work: a parsed specification plus options, the owning
/// connection's reply channel, and a shared cancellation flag.
#[derive(Debug)]
pub struct Job {
    /// Server-unique id (echoed in every response about this job).
    pub id: u64,
    /// The parsed specification.
    pub spec: Stg,
    /// Flow options.
    pub options: SynthesisOptions,
    /// Synth, check or batch.
    pub kind: JobKind,
    /// Admission class; scheduling order only, never results.
    pub priority: Priority,
    /// The owning connection's admission ledger.
    pub client: Arc<ClientTicket>,
    /// Set to cancel; polled between pipeline stages (and between
    /// batch members).
    pub cancel: Arc<AtomicBool>,
    /// The owning connection's response channel.
    pub reply: Reply,
}

impl Job {
    /// The job's admission weight: its spec count. A batch weighs what
    /// it actually is — `batch` of 45 specs contributes 45 units of
    /// backlog, not 1 — so capacity and observability agree on load.
    #[must_use]
    pub fn weight(&self) -> usize {
        match &self.kind {
            JobKind::Batch { rest } => rest.len() + 1,
            JobKind::Synth { .. } | JobKind::Check => 1,
        }
    }
}

/// Admission limits enforced by [`JobQueue::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLimits {
    /// Weighted queue capacity (sum of queued jobs' spec counts);
    /// 0 disables the bound.
    pub capacity: usize,
    /// Maximum live (queued + running) jobs per connection; 0 disables
    /// the quota.
    pub max_jobs_per_client: usize,
}

impl Default for QueueLimits {
    fn default() -> Self {
        QueueLimits {
            capacity: 256,
            max_jobs_per_client: 64,
        }
    }
}

/// Why a submission was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The queue has been closed (server shutting down).
    Closed,
    /// The weighted backlog would exceed [`QueueLimits::capacity`].
    QueueFull,
    /// The connection already owns
    /// [`QueueLimits::max_jobs_per_client`] live jobs.
    ClientQuota,
}

impl Rejection {
    /// The wire `reason` string.
    #[must_use]
    pub fn reason(self) -> &'static str {
        match self {
            Rejection::Closed => "shutting_down",
            Rejection::QueueFull => "queue_full",
            Rejection::ClientQuota => "client_quota",
        }
    }
}

/// Weighted round-robin shares per class (high : normal : low).
const WRR_SHARES: [usize; 3] = [4, 2, 1];

#[derive(Debug, Default)]
struct QueueState {
    /// One FIFO per priority class, indexed by [`Priority::index`].
    classes: [VecDeque<Job>; 3],
    /// Weighted depth per class (sum of queued jobs' weights).
    weight: [usize; 3],
    /// Jobs served per class in the current round-robin round.
    served: [usize; 3],
    closed: bool,
}

impl QueueState {
    fn weighted_depth(&self) -> usize {
        self.weight.iter().sum()
    }

    fn job_count(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Pops the next job under the 4:2:1 weighted round-robin policy:
    /// scan high → low, skipping classes that already used their share
    /// this round; when every non-empty class is exhausted, start a new
    /// round. Work-conserving (an empty class's share flows downward)
    /// and starvation-free (every non-empty class is served each round).
    fn pop_weighted_round_robin(&mut self) -> Option<Job> {
        if self.classes.iter().all(VecDeque::is_empty) {
            return None;
        }
        loop {
            for (class, share) in WRR_SHARES.iter().enumerate() {
                if self.served[class] < *share {
                    if let Some(job) = self.classes[class].pop_front() {
                        self.served[class] += 1;
                        self.weight[class] -= job.weight();
                        return Some(job);
                    }
                }
            }
            // Every non-empty class exhausted its share: new round.
            self.served = [0; 3];
        }
    }
}

/// The shared, bounded, priority-aware queue of pending jobs.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    limits: QueueLimits,
    next_id: AtomicU64,
    /// Cancellation flags of every live (queued *or* running) job,
    /// registered at submission. Keeping one registry closes the
    /// cancel/TOCTOU window between a worker popping a job and marking
    /// it running.
    live: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    /// Ids of currently-executing jobs.
    running: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    completed: AtomicU64,
    /// Jobs whose cancellation flag this queue newly raised (repeat
    /// cancels of the same job do not count twice).
    cancelled: AtomicU64,
    /// Jobs that panicked inside a worker (reported by the pool).
    panicked: AtomicU64,
    /// Submissions shed because the weighted backlog was full.
    shed_queue_full: AtomicU64,
    /// Submissions shed because the client hit its live-job quota.
    shed_client_quota: AtomicU64,
}

impl Default for JobQueue {
    fn default() -> Self {
        JobQueue::new()
    }
}

impl JobQueue {
    /// An empty, open queue with the default [`QueueLimits`].
    #[must_use]
    pub fn new() -> JobQueue {
        JobQueue::with_limits(QueueLimits::default())
    }

    /// An empty, open queue with explicit admission limits.
    #[must_use]
    pub fn with_limits(limits: QueueLimits) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            limits,
            next_id: AtomicU64::new(1),
            live: Mutex::new(HashMap::new()),
            running: Mutex::new(HashMap::new()),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_client_quota: AtomicU64::new(0),
        }
    }

    /// The admission limits this queue enforces.
    #[must_use]
    pub fn limits(&self) -> QueueLimits {
        self.limits
    }

    /// Allocates the next job id.
    #[must_use]
    pub fn next_job_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Runs admission control and enqueues the job if it passes.
    ///
    /// `on_admit` runs under the queue lock *after* admission succeeds
    /// but *before* the job becomes visible to any worker — the place
    /// to send the `accepted` acknowledgement so it always precedes the
    /// job's result on the connection's response channel.
    ///
    /// # Errors
    ///
    /// Hands the job back (boxed, unqueued) with the [`Rejection`] that
    /// shed it: queue closed, weighted capacity exceeded, or client
    /// quota exhausted. Shed counters are updated here.
    pub fn submit(
        &self,
        job: Job,
        on_admit: impl FnOnce(&Job),
    ) -> Result<(), (Box<Job>, Rejection)> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err((Box::new(job), Rejection::Closed));
        }
        let weight = job.weight();
        let depth = state.weighted_depth();
        // A job heavier than the whole capacity is admitted only into
        // an empty queue (it could never be admitted otherwise); all
        // other jobs must fit.
        if self.limits.capacity > 0 && depth + weight > self.limits.capacity && depth > 0 {
            self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err((Box::new(job), Rejection::QueueFull));
        }
        let quota = self.limits.max_jobs_per_client;
        if quota > 0 && job.client.live.load(Ordering::SeqCst) >= quota {
            self.shed_client_quota.fetch_add(1, Ordering::Relaxed);
            return Err((Box::new(job), Rejection::ClientQuota));
        }
        job.client.live.fetch_add(1, Ordering::SeqCst);
        self.live
            .lock()
            .expect("live lock")
            .insert(job.id, Arc::clone(&job.cancel));
        on_admit(&job);
        let class = job.priority.index();
        state.weight[class] += weight;
        state.classes[class].push_back(job);
        self.available.notify_one();
        Ok(())
    }

    /// The server's deterministic backoff hint for a shed submission:
    /// grows linearly with how overfull the queue is, from 25 ms at an
    /// empty queue to 425 ms at four times capacity.
    #[must_use]
    pub fn retry_after_ms(&self) -> u64 {
        let depth = self.queued_weight() as u64;
        let capacity = self.limits.capacity.max(1) as u64;
        25 + depth.min(capacity * 4) * 100 / capacity
    }

    /// Blocks until a job is available; `None` once the queue is closed
    /// and drained (the worker's exit signal). Dequeue order is the
    /// 4:2:1 weighted round-robin across priority classes.
    #[must_use]
    pub fn take(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.pop_weighted_round_robin() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Flags a queued or running job as cancelled. Queued jobs are
    /// discarded (with an error reply) when a worker reaches them;
    /// running jobs abort at the next stage (or batch-member) boundary.
    /// The flag lives in the `live` registry from submission to
    /// completion, so a job mid-handoff (popped but not yet marked
    /// running) is still cancellable.
    #[must_use]
    pub fn cancel(&self, id: u64) -> bool {
        if let Some(flag) = self.live.lock().expect("live lock").get(&id) {
            if !flag.swap(true, Ordering::Relaxed) {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
        false
    }

    /// Closes the queue: submissions fail, workers drain and exit.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Number of queued (not yet running) jobs — a batch counts as 1.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.state.lock().expect("queue lock").job_count()
    }

    /// Weighted queue depth — admission's view of the backlog (a batch
    /// of N specs contributes N).
    #[must_use]
    pub fn queued_weight(&self) -> usize {
        self.state.lock().expect("queue lock").weighted_depth()
    }

    /// Weighted depth per priority class, indexed by
    /// [`Priority::index`].
    #[must_use]
    pub fn queued_weight_by_class(&self) -> [usize; 3] {
        self.state.lock().expect("queue lock").weight
    }

    /// Number of currently-executing jobs.
    #[must_use]
    pub fn running(&self) -> usize {
        self.running.lock().expect("running lock").len()
    }

    /// Number of jobs finished (successfully or not) so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Number of jobs whose cancellation flag was newly raised so far.
    #[must_use]
    pub fn cancelled(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Number of jobs that panicked inside a worker so far.
    #[must_use]
    pub fn panicked(&self) -> u64 {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Submissions shed because the weighted backlog was full.
    #[must_use]
    pub fn shed_queue_full(&self) -> u64 {
        self.shed_queue_full.load(Ordering::Relaxed)
    }

    /// Submissions shed because a client hit its live-job quota.
    #[must_use]
    pub fn shed_client_quota(&self) -> u64 {
        self.shed_client_quota.load(Ordering::Relaxed)
    }

    /// All submissions shed by admission control so far.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full() + self.shed_client_quota()
    }

    /// Records one worker-side job panic (called by the pool's
    /// `catch_unwind` recovery path).
    pub(crate) fn note_panic(&self) {
        self.panicked.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn mark_running(&self, id: u64, cancel: Arc<AtomicBool>) {
        self.running
            .lock()
            .expect("running lock")
            .insert(id, cancel);
    }

    /// Completes a job's lifecycle: drops it from the running/live
    /// registries, releases its slot in the owner's quota, and counts
    /// it completed.
    pub(crate) fn mark_done(&self, job: &Job) {
        self.running.lock().expect("running lock").remove(&job.id);
        self.live.lock().expect("live lock").remove(&job.id);
        job.client.live.fetch_sub(1, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::{ClientTicket, Job, JobKind, JobQueue, QueueLimits, Rejection, Reply};
    use crate::protocol::Priority;
    use std::sync::atomic::{AtomicBool, AtomicI64};
    use std::sync::{mpsc, Arc};

    fn test_job(
        queue: &JobQueue,
        client: &Arc<ClientTicket>,
        priority: Priority,
        specs: usize,
    ) -> Job {
        let (tx, rx) = mpsc::channel();
        // The test jobs never run; leak the receiver so sends succeed.
        std::mem::forget(rx);
        let spec = stg::examples::toggle();
        let kind = if specs > 1 {
            JobKind::Batch {
                rest: vec![spec.clone(); specs - 1],
            }
        } else {
            JobKind::Synth {
                stream_events: false,
            }
        };
        Job {
            id: queue.next_job_id(),
            spec,
            options: asyncsynth::SynthesisOptions::default(),
            kind,
            priority,
            client: Arc::clone(client),
            cancel: Arc::new(AtomicBool::new(false)),
            reply: Reply::new(tx, Arc::new(AtomicI64::new(0))),
        }
    }

    #[test]
    fn weighted_capacity_sheds_and_counts() {
        let queue = JobQueue::with_limits(QueueLimits {
            capacity: 4,
            max_jobs_per_client: 0,
        });
        let client = Arc::new(ClientTicket::new());
        // A 3-spec batch (weight 3) fits; another would overflow.
        queue
            .submit(test_job(&queue, &client, Priority::Normal, 3), |_| {})
            .expect("first batch admitted");
        assert_eq!(queue.queued_weight(), 3);
        assert_eq!(queue.queued(), 1);
        let (_, rejection) = queue
            .submit(test_job(&queue, &client, Priority::Normal, 3), |_| {})
            .expect_err("second batch overflows weighted capacity");
        assert_eq!(rejection, Rejection::QueueFull);
        assert_eq!(rejection.reason(), "queue_full");
        // Weight-1 jobs still fit up to the capacity.
        queue
            .submit(test_job(&queue, &client, Priority::Normal, 1), |_| {})
            .expect("weight-1 job fits");
        let (_, rejection) = queue
            .submit(test_job(&queue, &client, Priority::Normal, 1), |_| {})
            .expect_err("queue is now full");
        assert_eq!(rejection, Rejection::QueueFull);
        assert_eq!(queue.shed_queue_full(), 2);
        assert_eq!(queue.shed_total(), 2);
        assert!(queue.retry_after_ms() >= 25);
    }

    #[test]
    fn oversized_job_is_admitted_only_into_an_empty_queue() {
        let queue = JobQueue::with_limits(QueueLimits {
            capacity: 4,
            max_jobs_per_client: 0,
        });
        let client = Arc::new(ClientTicket::new());
        queue
            .submit(test_job(&queue, &client, Priority::Normal, 45), |_| {})
            .expect("oversized batch admitted into an empty queue");
        assert_eq!(queue.queued_weight(), 45);
        let (_, rejection) = queue
            .submit(test_job(&queue, &client, Priority::Normal, 1), |_| {})
            .expect_err("backlog beyond capacity sheds everything else");
        assert_eq!(rejection, Rejection::QueueFull);
    }

    #[test]
    fn per_client_quota_sheds_the_greedy_client_only() {
        let queue = JobQueue::with_limits(QueueLimits {
            capacity: 0,
            max_jobs_per_client: 2,
        });
        let greedy = Arc::new(ClientTicket::new());
        let polite = Arc::new(ClientTicket::new());
        for _ in 0..2 {
            queue
                .submit(test_job(&queue, &greedy, Priority::Normal, 1), |_| {})
                .expect("within quota");
        }
        let (_, rejection) = queue
            .submit(test_job(&queue, &greedy, Priority::Normal, 1), |_| {})
            .expect_err("third live job exceeds the quota");
        assert_eq!(rejection, Rejection::ClientQuota);
        assert_eq!(queue.shed_client_quota(), 1);
        // Another connection is unaffected.
        queue
            .submit(test_job(&queue, &polite, Priority::Normal, 1), |_| {})
            .expect("other clients unaffected");
        // Completing a job frees the slot.
        let job = queue.take().expect("a queued job");
        queue.mark_done(&job);
        queue
            .submit(test_job(&queue, &greedy, Priority::Normal, 1), |_| {})
            .expect("slot freed by completion");
    }

    #[test]
    fn weighted_round_robin_serves_4_2_1_without_starvation() {
        let queue = JobQueue::with_limits(QueueLimits {
            capacity: 0,
            max_jobs_per_client: 0,
        });
        let client = Arc::new(ClientTicket::new());
        // Saturate every class, then observe the service order.
        for priority in [Priority::High, Priority::Normal, Priority::Low] {
            for _ in 0..8 {
                queue
                    .submit(test_job(&queue, &client, priority, 1), |_| {})
                    .expect("unbounded queue admits");
            }
        }
        let order: Vec<Priority> = (0..24)
            .map(|_| queue.take().expect("job available").priority)
            .collect();
        use Priority::{High, Low, Normal};
        assert_eq!(
            order,
            vec![
                High, High, High, High, Normal, Normal, Low, // round 1 (4:2:1)
                High, High, High, High, Normal, Normal, Low, // round 2
                Normal, Normal, Low, // high drained: its share flows on
                Normal, Normal, Low, // work-conserving, low never starves
                Low, Low, Low, Low, // only low left: served back-to-back
            ]
        );
    }

    #[test]
    fn on_admit_runs_for_admitted_jobs_only() {
        let queue = JobQueue::with_limits(QueueLimits {
            capacity: 1,
            max_jobs_per_client: 0,
        });
        let client = Arc::new(ClientTicket::new());
        let mut admitted = Vec::new();
        queue
            .submit(test_job(&queue, &client, Priority::Normal, 1), |job| {
                admitted.push(job.id);
            })
            .expect("admitted");
        let result = queue.submit(test_job(&queue, &client, Priority::Normal, 1), |job| {
            admitted.push(job.id);
        });
        assert!(result.is_err());
        assert_eq!(admitted.len(), 1, "rejected job's on_admit never ran");
    }
}
