//! The one flag-parsing helper shared by every `asyncsynth` subcommand
//! (`check`, `synth`, `wave`, `reduce`, `serve`, `submit`).
//!
//! Each subcommand declares which flags it accepts; values, defaults
//! and error messages are uniform across the CLI, so `--backend
//! symbolic-set --json` means the same thing everywhere it is allowed.

use std::path::PathBuf;

use asyncsynth::{
    Architecture, Backend, CscStrategy, SweepOptions, SynthesisOptions, VerifyOptions,
    VerifyStrategy,
};

use crate::client::ClientOptions;
use crate::protocol::Priority;

/// Parsed common flags, with their defaults.
#[derive(Debug, Clone)]
pub struct CliFlags {
    /// `--backend explicit|symbolic|symbolic-set`.
    pub backend: Backend,
    /// `--json`: machine-readable output.
    pub json: bool,
    /// `--arch complex|celement|rs|decomposed`.
    pub arch: Architecture,
    /// `--csc auto|insertion|reduction|fail`.
    pub csc: CscStrategy,
    /// `--csc-threads N`: CSC candidate-sweep worker threads (0 = one
    /// per core, the default).
    pub csc_threads: Option<usize>,
    /// `--csc-bound N`: per-candidate state-space bound of the CSC
    /// sweeps; candidates above it are skipped and reported.
    pub csc_bound: Option<usize>,
    /// `--csc-no-prune`: disable conflict-locality pruning (debugging
    /// escape hatch; pruning never changes results, only work).
    pub csc_no_prune: bool,
    /// `--fanin N` (decomposed fan-in bound).
    pub fanin: Option<usize>,
    /// `--no-verify`: skip the exhaustive verification stage.
    pub no_verify: bool,
    /// `--verify-bound N`: composed-state limit of the verifier; a hit
    /// is reported as a bounded (inconclusive) run, never silently.
    pub verify_bound: Option<usize>,
    /// `--verify-strategy explicit|composed`: spec-tracking strategy
    /// (output-neutral; `composed` runs on any backend at any scale).
    pub verify_strategy: Option<VerifyStrategy>,
    /// `--verify-incremental`: route re-verification through the
    /// memoising per-cone engine (the decomposed repair loop).
    pub verify_incremental: bool,
    /// `--assume "a<b"` relative-timing assumptions (repeatable).
    pub assumptions: Vec<timing::TimingAssumption>,
    /// `--cache DIR`: content-addressed result cache directory.
    pub cache_dir: Option<PathBuf>,
    /// `--trace FILE`: write the run's span-tree JSON (per-stage wall
    /// times, deterministic counters, advisory counters) to FILE.
    pub trace: Option<PathBuf>,
    /// `--port N` (serve: listen port; submit: server port).
    pub port: Option<u16>,
    /// `--host H` (submit; default 127.0.0.1).
    pub host: String,
    /// `--workers N` (serve).
    pub workers: Option<usize>,
    /// `--stdio` (serve over stdin/stdout instead of TCP).
    pub stdio: bool,
    /// `--events` (submit: stream per-stage events).
    pub events: bool,
    /// `--priority high|normal|low` (submit: admission class).
    pub priority: Priority,
    /// `--queue-capacity N` (serve: weighted job-queue capacity,
    /// 0 = unbounded).
    pub queue_capacity: Option<usize>,
    /// `--max-jobs-per-client N` (serve: live jobs per connection,
    /// 0 = no quota).
    pub max_jobs_per_client: Option<usize>,
    /// `--idle-timeout-ms N` (serve: reap idle connections after N ms,
    /// 0 = never).
    pub idle_timeout_ms: Option<u64>,
    /// `--retries N` (submit: retry attempts after a `rejected`).
    pub retries: Option<u32>,
    /// `--backoff-ms N` (submit: base retry backoff, doubling per
    /// attempt).
    pub backoff_ms: Option<u64>,
}

impl Default for CliFlags {
    fn default() -> Self {
        CliFlags {
            backend: Backend::default(),
            json: false,
            arch: Architecture::default(),
            csc: CscStrategy::default(),
            csc_threads: None,
            csc_bound: None,
            csc_no_prune: false,
            fanin: None,
            no_verify: false,
            verify_bound: None,
            verify_strategy: None,
            verify_incremental: false,
            assumptions: Vec::new(),
            cache_dir: None,
            trace: None,
            port: None,
            host: "127.0.0.1".to_owned(),
            workers: None,
            stdio: false,
            events: false,
            priority: Priority::default(),
            queue_capacity: None,
            max_jobs_per_client: None,
            idle_timeout_ms: None,
            retries: None,
            backoff_ms: None,
        }
    }
}

impl CliFlags {
    /// The pipeline options these flags select.
    #[must_use]
    pub fn options(&self) -> SynthesisOptions {
        let defaults = SweepOptions::default();
        SynthesisOptions {
            backend: self.backend,
            architecture: self.arch,
            csc: self.csc,
            sweep: SweepOptions {
                threads: self.csc_threads.unwrap_or(defaults.threads),
                bound: self.csc_bound.unwrap_or(defaults.bound),
                prune: !self.csc_no_prune,
                keep_spaces: defaults.keep_spaces,
            },
            max_fanin: self.fanin,
            skip_verification: self.no_verify,
            verify: {
                let defaults = VerifyOptions::default();
                VerifyOptions {
                    bound: self.verify_bound.unwrap_or(defaults.bound),
                    strategy: self.verify_strategy.unwrap_or(defaults.strategy),
                    incremental: self.verify_incremental,
                }
            },
        }
    }

    /// The client-side retry/timeout options these flags select.
    #[must_use]
    pub fn client_options(&self) -> ClientOptions {
        let defaults = ClientOptions::default();
        ClientOptions {
            retries: self.retries.unwrap_or(defaults.retries),
            backoff_ms: self.backoff_ms.unwrap_or(defaults.backoff_ms),
            ..defaults
        }
    }
}

/// Parses `args` accepting only the flags named in `allowed` (e.g.
/// `&["--backend", "--json"]`); every subcommand routes through here.
///
/// # Errors
///
/// Unknown flags, flags not allowed for this subcommand, and malformed
/// values.
pub fn parse_flags(args: &[String], allowed: &[&str]) -> Result<CliFlags, String> {
    let mut flags = CliFlags::default();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        let flag = args[i].as_str();
        if flag.starts_with("--") && !allowed.contains(&flag) {
            return Err(format!(
                "option {flag:?} is not supported here (allowed: {})",
                allowed.join(", ")
            ));
        }
        match flag {
            "--backend" => flags.backend = value(args, &mut i, flag)?.parse()?,
            "--json" => flags.json = true,
            "--arch" => flags.arch = value(args, &mut i, flag)?.parse()?,
            "--csc" => flags.csc = value(args, &mut i, flag)?.parse()?,
            "--csc-threads" => {
                flags.csc_threads = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --csc-threads value")?,
                );
            }
            "--csc-bound" => {
                flags.csc_bound = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --csc-bound value")?,
                );
            }
            "--csc-no-prune" => flags.csc_no_prune = true,
            "--fanin" => {
                flags.fanin = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --fanin value")?,
                );
            }
            "--no-verify" => flags.no_verify = true,
            "--verify-bound" => {
                flags.verify_bound = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --verify-bound value")?,
                );
            }
            "--verify-strategy" => {
                flags.verify_strategy = Some(value(args, &mut i, flag)?.parse()?);
            }
            "--verify-incremental" => flags.verify_incremental = true,
            "--assume" => {
                let v = value(args, &mut i, flag)?;
                let (a, b) = v
                    .split_once('<')
                    .ok_or("assumption syntax: earlier<later")?;
                flags
                    .assumptions
                    .push(timing::TimingAssumption::new(a.trim(), b.trim()));
            }
            "--cache" => flags.cache_dir = Some(PathBuf::from(value(args, &mut i, flag)?)),
            "--trace" => flags.trace = Some(PathBuf::from(value(args, &mut i, flag)?)),
            "--port" => {
                flags.port = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --port value")?,
                );
            }
            "--host" => flags.host = value(args, &mut i, flag)?,
            "--workers" => {
                flags.workers = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --workers value")?,
                );
            }
            "--stdio" => flags.stdio = true,
            "--events" => flags.events = true,
            "--priority" => flags.priority = value(args, &mut i, flag)?.parse()?,
            "--queue-capacity" => {
                flags.queue_capacity = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --queue-capacity value")?,
                );
            }
            "--max-jobs-per-client" => {
                flags.max_jobs_per_client = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --max-jobs-per-client value")?,
                );
            }
            "--idle-timeout-ms" => {
                flags.idle_timeout_ms = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --idle-timeout-ms value")?,
                );
            }
            "--retries" => {
                flags.retries = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --retries value")?,
                );
            }
            "--backoff-ms" => {
                flags.backoff_ms = Some(
                    value(args, &mut i, flag)?
                        .parse()
                        .map_err(|_| "bad --backoff-ms value")?,
                );
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::parse_flags;

    #[test]
    fn accepts_allowed_flags_and_rejects_others() {
        let args: Vec<String> = ["--backend", "symbolic", "--json"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let flags = parse_flags(&args, &["--backend", "--json"]).expect("parses");
        assert_eq!(flags.backend, asyncsynth::Backend::Symbolic);
        assert!(flags.json);

        let err = parse_flags(&args, &["--json"]).expect_err("backend not allowed");
        assert!(err.contains("--backend"), "{err}");
        assert!(
            parse_flags(&["--backend".to_owned()], &["--backend"]).is_err(),
            "missing value"
        );
    }

    #[test]
    fn csc_sweep_flags_reach_the_options() {
        let args: Vec<String> = [
            "--csc-threads",
            "4",
            "--csc-bound",
            "50000",
            "--csc-no-prune",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let flags = parse_flags(&args, &["--csc-threads", "--csc-bound", "--csc-no-prune"])
            .expect("parses");
        let options = flags.options();
        assert_eq!(options.sweep.threads, 4);
        assert_eq!(options.sweep.bound, 50_000);
        assert!(!options.sweep.prune);

        // Defaults: auto threads, pruning on.
        let defaults = parse_flags(&[], &[]).expect("parses").options();
        assert_eq!(defaults.sweep, asyncsynth::SweepOptions::default());
        assert!(defaults.sweep.prune);
    }

    #[test]
    fn verify_flags_reach_the_options() {
        let args: Vec<String> = [
            "--verify-bound",
            "25000",
            "--verify-strategy",
            "explicit",
            "--verify-incremental",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let flags = parse_flags(
            &args,
            &[
                "--verify-bound",
                "--verify-strategy",
                "--verify-incremental",
            ],
        )
        .expect("parses");
        let options = flags.options();
        assert_eq!(options.verify.bound, 25_000);
        assert_eq!(
            options.verify.strategy,
            asyncsynth::VerifyStrategy::ExplicitBfs
        );
        assert!(options.verify.incremental);

        // Defaults: composed strategy, monolithic engine, 500k bound.
        let defaults = parse_flags(&[], &[]).expect("parses").options();
        assert_eq!(defaults.verify, asyncsynth::VerifyOptions::default());
        assert_eq!(
            defaults.verify.strategy,
            asyncsynth::VerifyStrategy::Composed
        );
        assert!(
            parse_flags(
                &["--verify-strategy".into(), "magic".into()],
                &["--verify-strategy"]
            )
            .is_err(),
            "unknown strategy rejected"
        );
    }

    #[test]
    fn admission_and_retry_flags_parse() {
        let args: Vec<String> = [
            "--priority",
            "high",
            "--queue-capacity",
            "8",
            "--max-jobs-per-client",
            "2",
            "--idle-timeout-ms",
            "500",
            "--retries",
            "7",
            "--backoff-ms",
            "10",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let flags = parse_flags(
            &args,
            &[
                "--priority",
                "--queue-capacity",
                "--max-jobs-per-client",
                "--idle-timeout-ms",
                "--retries",
                "--backoff-ms",
            ],
        )
        .expect("parses");
        assert_eq!(flags.priority, crate::protocol::Priority::High);
        assert_eq!(flags.queue_capacity, Some(8));
        assert_eq!(flags.max_jobs_per_client, Some(2));
        assert_eq!(flags.idle_timeout_ms, Some(500));
        let client = flags.client_options();
        assert_eq!(client.retries, 7);
        assert_eq!(client.backoff_ms, 10);
        // Unset knobs keep the library defaults.
        let defaults = parse_flags(&[], &[]).expect("parses");
        assert_eq!(defaults.priority, crate::protocol::Priority::Normal);
        assert_eq!(
            defaults.client_options(),
            crate::client::ClientOptions::default()
        );
        assert!(
            parse_flags(&["--priority".into(), "urgent".into()], &["--priority"]).is_err(),
            "unknown priority rejected"
        );
    }

    #[test]
    fn full_synth_flag_set() {
        let args: Vec<String> = [
            "--arch",
            "decomposed",
            "--fanin",
            "3",
            "--csc",
            "insertion",
            "--no-verify",
            "--cache",
            "/tmp/c",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let flags = parse_flags(
            &args,
            &["--arch", "--fanin", "--csc", "--no-verify", "--cache"],
        )
        .expect("parses");
        let options = flags.options();
        assert_eq!(options.architecture, asyncsynth::Architecture::Decomposed);
        assert_eq!(options.max_fanin, Some(3));
        assert_eq!(options.csc, asyncsynth::CscStrategy::SignalInsertion);
        assert!(options.skip_verification);
        assert_eq!(
            flags.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
    }
}
