//! The synthesis service: a persistent daemon around the `asyncsynth`
//! staged pipeline.
//!
//! The one-shot CLI re-synthesises every specification from scratch;
//! this crate turns the flow into a long-lived service that absorbs
//! repeated and concurrent workloads:
//!
//! * [`queue`] — a bounded, priority-aware, condvar-guarded job queue
//!   with per-job cancellation, weighted capacity and per-client
//!   quotas (admission control and load shedding);
//! * [`pool`] — a long-lived worker pool (generalising `run_batch`'s
//!   scoped work-stealing) running each job through the cached flow
//!   ([`asyncsynth::run_cached_with`]), streaming [`asyncsynth::FlowEvent`]s
//!   and surviving panicking jobs;
//! * [`protocol`] — the newline-delimited-JSON wire format;
//! * [`service`] — the TCP acceptor ([`Server`]) and the stdio session
//!   ([`serve_stdio`]);
//! * [`client`] — a blocking client (`asyncsynth submit`);
//! * [`flags`] — the flag-parsing helper shared by every CLI subcommand.
//!
//! Results are content-addressed by [`asyncsynth::cache_key`] (see
//! [`stg::canon`]): submitting the same specification twice hits the
//! on-disk [`asyncsynth::ResultCache`] and re-runs nothing.
//!
//! # In-process example
//!
//! ```
//! use server::protocol::{Request, Response};
//! use server::service::{Server, ServerConfig};
//!
//! let server = Server::bind(
//!     "127.0.0.1:0",
//!     &ServerConfig { workers: 2, ..ServerConfig::default() },
//! )?;
//! let addr = server.local_addr()?.to_string();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let spec = stg::parse::write_g(&stg::examples::vme_read_csc());
//! let final_response = server::client::submit_synth(
//!     &addr,
//!     &spec,
//!     &asyncsynth::SynthesisOptions::default(),
//!     false,
//!     |_| {},
//! ).expect("job succeeds");
//! assert!(matches!(final_response, Response::Result { .. }));
//!
//! server::client::request(&addr, &Request::Shutdown, |_| {}).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod flags;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod service;

pub use pool::WorkerPool;
pub use queue::{Job, JobKind, JobQueue};
pub use service::{serve_stdio, Server, ServerConfig};
