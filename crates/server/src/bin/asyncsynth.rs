//! Command-line front end: check, synthesise and inspect STGs in the `.g`
//! (astg/petrify) format, and run or talk to the synthesis service.
//!
//! ```text
//! asyncsynth check  <file.g> [--backend B] [--json]     # §2.1 implementability report
//! asyncsynth synth  <file.g> [options]                  # full flow, prints equations+netlist
//! asyncsynth wave   <file.g> [--backend B] [--json]     # one canonical cycle as waveforms
//! asyncsynth reduce <file.g> [--backend B] [--json]     # structural reductions + invariants
//! asyncsynth serve  [--port N | --stdio] [--workers N] [--cache DIR]
//!                   [--queue-capacity N] [--max-jobs-per-client N] [--idle-timeout-ms N]
//! asyncsynth submit <file.g> [--host H] [--port N] [options] [--events]
//! asyncsynth submit <dir>    [--host H] [--port N] [options]   # batch every .g in dir
//!
//! serve options:
//!   --queue-capacity N                      weighted queue capacity (default 256, 0 = unbounded)
//!   --max-jobs-per-client N                 live jobs per connection (default 64, 0 = no quota)
//!   --idle-timeout-ms N                     reap idle connections after N ms (default 120000, 0 = never)
//!
//! submit options (besides the synth options below):
//!   --priority high|normal|low              admission class (default: normal)
//!   --retries N                             retries after a rejected response (default 4)
//!   --backoff-ms N                          base retry backoff, doubling per attempt (default 50)
//!
//! synth options:
//!   --arch complex|celement|rs|decomposed   (default: complex)
//!   --backend explicit|symbolic|symbolic-set  (default: explicit)
//!   --csc auto|insertion|reduction|fail     (default: auto)
//!   --csc-threads N                         CSC sweep workers (0 = per core)
//!   --csc-bound N                           CSC per-candidate state bound
//!   --csc-no-prune                          disable conflict-locality pruning
//!   --fanin N                               (decomposed fan-in bound)
//!   --assume "a<b"                          relative-timing assumption
//!   --cache DIR                             content-addressed result cache
//!   --trace FILE                            write the run's span-tree JSON
//!   --no-verify                             skip exhaustive verification
//!   --verify-bound N                        composed-state limit of the verifier
//!   --verify-strategy explicit|composed     spec tracking (default: composed)
//!   --verify-incremental                    memoising per-cone re-verification
//!   --json                                  machine-readable output
//! ```
//!
//! `serve` speaks newline-delimited JSON on TCP (default port 7832) or
//! stdio; `submit` is the matching client. See the `server` crate docs
//! and README for the message schema.

use std::process::ExitCode;

use asyncsynth::summary::report_to_json;
use asyncsynth::{
    flow_metrics, run_cached, run_cached_with, CacheOutcome, Json, ResultCache, Synthesis,
    SynthesisSummary, TraceBuilder,
};
use server::flags::parse_flags;
use server::protocol::Response;
use server::service::{serve_stdio, Server, ServerConfig};
use stg::parse::parse_g;

/// Default TCP port of `serve`/`submit`.
const DEFAULT_PORT: u16 = 7832;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let usage = "usage: asyncsynth <check|synth|wave|reduce|serve|submit> [<file.g>] [options]";
    let cmd = args.first().ok_or(usage)?;
    if cmd == "serve" {
        return serve(&args[1..]);
    }
    let path = args.get(1).ok_or(usage)?;
    if cmd == "submit" && std::fs::metadata(path).is_ok_and(|m| m.is_dir()) {
        return submit_dir(path, &args[2..]);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if cmd == "submit" {
        return submit(&text, &args[2..]);
    }
    let spec = parse_g(&text).map_err(|e| format!("{path}: {e}"))?;
    match cmd.as_str() {
        "check" => check(&spec, &args[2..]),
        "synth" => synth(&spec, &args[2..]),
        "wave" => wave(&spec, &args[2..]),
        "reduce" => reduce(&spec, &args[2..]),
        other => Err(format!("unknown command {other:?}\n{usage}")),
    }
}

// -------------------------------------------------------------------
// check
// -------------------------------------------------------------------

/// Conflict pairs listed in full; beyond this the listing truncates
/// (and is skipped entirely when even *enumerating* the duplicated-code
/// classes would decode an unreasonable number of states on the
/// resident-BDD backend). The report's counts are always exact.
const MAX_LISTED_CONFLICTS: usize = 256;

/// Duplication excess (states minus distinct codes — a lower bound on
/// the same-code pair count) beyond which witness enumeration is not
/// attempted at all.
const MAX_ENUMERATED_EXCESS: u128 = 4096;

fn check(spec: &stg::Stg, opts: &[String]) -> Result<(), String> {
    let flags = parse_flags(opts, &["--backend", "--json"])?;
    let (report, conflicts, truncated) = match flags.backend.build(spec) {
        Ok(space) => {
            let report = stg::properties::report_from_sg(spec, &*space);
            // Witness extraction enumerates every duplicated-code class
            // (USC pairs, not just CSC ones) and decodes their states;
            // gate on the duplication excess — a lower bound on the
            // same-code pair count — so a large USC-violating space
            // never decodes, whatever its CSC verdict. Within the gate,
            // list the first MAX_LISTED_CONFLICTS pairs and say when the
            // listing is cut; the report's counts are always exact.
            let duplication_excess = space.marking_count() - space.distinct_code_count();
            let (conflicts, truncated) = if duplication_excess <= MAX_ENUMERATED_EXCESS {
                let mut all = stg::encoding::csc_conflicts(spec, &*space);
                let truncated = all.len() > MAX_LISTED_CONFLICTS;
                all.truncate(MAX_LISTED_CONFLICTS);
                (all, truncated)
            } else {
                (Vec::new(), report.csc_conflict_pairs > 0)
            };
            (report, conflicts, truncated)
        }
        Err(e) => (stg::properties::failure_report(e), Vec::new(), false),
    };
    if flags.json {
        let conflict_json: Vec<Json> = conflicts
            .iter()
            .map(|c| {
                Json::obj(vec![
                    (
                        "states",
                        Json::Arr(vec![Json::num(c.states.0), Json::num(c.states.1)]),
                    ),
                    (
                        "code",
                        Json::str(
                            c.code
                                .iter()
                                .map(|&b| if b { '1' } else { '0' })
                                .collect::<String>(),
                        ),
                    ),
                ])
            })
            .collect();
        let out = Json::obj(vec![
            ("model", Json::str(spec.name())),
            ("backend", Json::str(flags.backend.name())),
            ("report", report_to_json(&report)),
            ("conflicts", Json::Arr(conflict_json)),
            ("conflicts_truncated", Json::Bool(truncated)),
        ]);
        println!("{}", out.render());
    } else {
        println!("model: {}", spec.name());
        println!("backend: {}", flags.backend);
        println!("{report}");
        let listed = conflicts.len();
        for c in conflicts {
            let code: String = c.code.iter().map(|&b| if b { '1' } else { '0' }).collect();
            println!(
                "  CSC conflict: states s{} / s{} share code {code}",
                c.states.0, c.states.1
            );
        }
        if truncated {
            println!(
                "  ({} CSC conflict pair(s) total; listing cut after {listed})",
                report.csc_conflict_pairs
            );
        }
    }
    Ok(())
}

// -------------------------------------------------------------------
// synth
// -------------------------------------------------------------------

fn synth(spec: &stg::Stg, opts: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        opts,
        &[
            "--arch",
            "--backend",
            "--csc",
            "--csc-threads",
            "--csc-bound",
            "--csc-no-prune",
            "--fanin",
            "--assume",
            "--cache",
            "--trace",
            "--no-verify",
            "--verify-bound",
            "--verify-strategy",
            "--verify-incremental",
            "--json",
        ],
    )?;
    let options = flags.options();
    let spec = if flags.assumptions.is_empty() {
        spec.clone()
    } else {
        timing::apply_assumptions(spec, &flags.assumptions).map_err(|e| e.to_string())?
    };
    let (summary, outcome) = if let Some(trace_path) = &flags.trace {
        // The traced path routes everything through the observed cached
        // runner; the span-tree artifact is written on failures too (a
        // failed flow's exploration is exactly what one wants to see).
        let cache = match &flags.cache_dir {
            Some(dir) => {
                Some(ResultCache::open(dir).map_err(|e| format!("cache {}: {e}", dir.display()))?)
            }
            None => None,
        };
        let mut trace = TraceBuilder::new();
        let result = run_cached_with(&spec, &options, cache.as_ref(), &mut trace);
        let span = match &result {
            Ok(run) => trace.finish(run.summary.metrics.clone(), run.advisory.clone()),
            Err(e) => trace.finish(flow_metrics(e.events()), telemetry::Counters::new()),
        };
        std::fs::write(trace_path, span.render() + "\n")
            .map_err(|e| format!("trace {}: {e}", trace_path.display()))?;
        let run = result.map_err(|e| e.to_string())?;
        (run.summary, run.outcome)
    } else {
        match &flags.cache_dir {
            Some(dir) => {
                let cache =
                    ResultCache::open(dir).map_err(|e| format!("cache {}: {e}", dir.display()))?;
                let run = run_cached(&spec, &options, &cache).map_err(|e| e.to_string())?;
                (run.summary, run.outcome)
            }
            None => {
                let verified = Synthesis::with_options(spec, options.clone())
                    .run()
                    .map_err(|e| e.to_string())?;
                (
                    SynthesisSummary::from_verified(&verified, &options),
                    CacheOutcome::Disabled,
                )
            }
        }
    };
    if flags.json {
        println!("{}", summary_with_cache(&summary, outcome.name()).render());
    } else {
        print_summary(&summary, outcome);
    }
    Ok(())
}

/// The summary JSON with a `cache` field appended.
fn summary_with_cache(summary: &SynthesisSummary, cache: &str) -> Json {
    let mut json = summary.to_json();
    if let Json::Obj(pairs) = &mut json {
        pairs.push(("cache".to_owned(), Json::str(cache)));
    }
    json
}

fn print_summary(summary: &SynthesisSummary, outcome: CacheOutcome) {
    println!("model: {}", summary.model);
    println!("backend: {}", summary.backend);
    if outcome != CacheOutcome::Disabled {
        println!("cache: {}", outcome.name());
    }
    if let Some(t) = &summary.transformation {
        println!(
            "csc: {} ({} states): {}",
            t.kind, t.num_states, t.description
        );
    }
    println!("states: {}", summary.num_states);
    println!("\nequations:\n{}", summary.equations);
    println!("\nnetlist:\n{}", summary.netlist);
    match (summary.verification.as_str(), summary.composed_states) {
        ("passed", Some(n)) => {
            println!("verification: speed-independent: OK ({n} composed states)");
        }
        (status, _) => println!("verification: {status}"),
    }
    println!("\nevents:");
    for e in &summary.events {
        println!("  {e}");
    }
}

// -------------------------------------------------------------------
// wave
// -------------------------------------------------------------------

fn wave(spec: &stg::Stg, opts: &[String]) -> Result<(), String> {
    let flags = parse_flags(opts, &["--backend", "--json"])?;
    let space = flags.backend.build(spec).map_err(|e| e.to_string())?;
    // Waveform extraction walks the transition structure per state; the
    // resident backend only serves that through its small-space view.
    if space.set_level_native() && space.num_states() > stg::MATERIALISE_LIMIT {
        return Err(format!(
            "state space has {} states — too large for per-state waveform \
             rendering on the resident-BDD backend (limit {}); use an \
             enumerating backend",
            space.num_states(),
            stg::MATERIALISE_LIMIT
        ));
    }
    let cycle = stg::waveform::canonical_cycle(&*space, 1000);
    if cycle.is_empty() {
        return Err("no cycle through the initial state".to_owned());
    }
    let header = stg::waveform::render_trace_header(spec, &cycle);
    let waves = stg::waveform::render_waveforms(spec, &*space, &cycle);
    if flags.json {
        let out = Json::obj(vec![
            ("model", Json::str(spec.name())),
            ("backend", Json::str(flags.backend.name())),
            ("trace", Json::str(&header)),
            (
                "waveforms",
                Json::Arr(waves.lines().map(Json::str).collect()),
            ),
        ]);
        println!("{}", out.render());
    } else {
        println!("trace: {header}");
        print!("{waves}");
    }
    Ok(())
}

// -------------------------------------------------------------------
// reduce
// -------------------------------------------------------------------

fn reduce(spec: &stg::Stg, opts: &[String]) -> Result<(), String> {
    let flags = parse_flags(opts, &["--backend", "--json"])?;
    // State count of the unreduced specification, per the chosen
    // backend (reductions preserve behaviour; this is the size they
    // save re-exploring).
    let states_before = flags.backend.build(spec).ok().map(|s| s.num_states());
    let (reduced, stats) = petri::reduce::reduce_linear(spec.net().clone());
    let invariants = petri::invariant::place_invariants(&reduced);
    let comps = petri::invariant::sm_components(&reduced);
    if flags.json {
        let out = Json::obj(vec![
            ("model", Json::str(spec.name())),
            ("backend", Json::str(flags.backend.name())),
            ("states", states_before.map_or(Json::Null, Json::num)),
            ("places", Json::num(reduced.num_places())),
            ("transitions", Json::num(reduced.num_transitions())),
            ("rule_applications", Json::num(stats.total())),
            (
                "invariants",
                Json::Arr(
                    invariants
                        .iter()
                        .map(|inv| Json::str(inv.display(&reduced).to_string()))
                        .collect(),
                ),
            ),
            ("sm_components", Json::num(comps.len())),
        ]);
        println!("{}", out.render());
    } else {
        if let Some(n) = states_before {
            println!("states ({}): {n}", flags.backend);
        }
        println!(
            "reduced: {} places, {} transitions ({} rule applications)",
            reduced.num_places(),
            reduced.num_transitions(),
            stats.total()
        );
        print!("{}", reduced.describe());
        println!("\nplace invariants:");
        for inv in &invariants {
            println!("  {}", inv.display(&reduced));
        }
        println!("state-machine components: {}", comps.len());
    }
    Ok(())
}

// -------------------------------------------------------------------
// serve / submit
// -------------------------------------------------------------------

fn serve(opts: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        opts,
        &[
            "--port",
            "--stdio",
            "--workers",
            "--cache",
            "--queue-capacity",
            "--max-jobs-per-client",
            "--idle-timeout-ms",
        ],
    )?;
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        workers: flags.workers.unwrap_or(defaults.workers),
        cache_dir: flags.cache_dir.clone(),
        queue_capacity: flags.queue_capacity.unwrap_or(defaults.queue_capacity),
        max_jobs_per_client: flags
            .max_jobs_per_client
            .unwrap_or(defaults.max_jobs_per_client),
        idle_timeout_ms: flags.idle_timeout_ms.unwrap_or(defaults.idle_timeout_ms),
        ..defaults
    };
    if flags.stdio {
        return serve_stdio(&config).map_err(|e| e.to_string());
    }
    let port = flags.port.unwrap_or(DEFAULT_PORT);
    let server = Server::bind(&format!("127.0.0.1:{port}"), &config).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // One readiness line, NDJSON like everything else, so scripts can
    // wait for the port.
    println!(
        "{}",
        Json::obj(vec![
            ("type", Json::str("serving")),
            ("addr", Json::str(addr.to_string())),
            ("workers", Json::num(config.workers)),
            ("queue_capacity", Json::num(config.queue_capacity)),
            (
                "cache",
                config
                    .cache_dir
                    .as_ref()
                    .map_or(Json::Null, |d| Json::str(d.display().to_string())),
            ),
        ])
        .render()
    );
    server.run().map_err(|e| e.to_string())
}

fn submit(spec_text: &str, opts: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        opts,
        &[
            "--host",
            "--port",
            "--arch",
            "--backend",
            "--csc",
            "--csc-threads",
            "--csc-bound",
            "--csc-no-prune",
            "--fanin",
            "--no-verify",
            "--verify-bound",
            "--verify-strategy",
            "--verify-incremental",
            "--events",
            "--priority",
            "--retries",
            "--backoff-ms",
            "--json",
        ],
    )?;
    let addr = format!("{}:{}", flags.host, flags.port.unwrap_or(DEFAULT_PORT));
    let json = flags.json;
    let final_response = server::client::submit_synth_with(
        &addr,
        spec_text,
        &flags.options(),
        flags.priority,
        &flags.client_options(),
        flags.events,
        |response| match response {
            Response::Accepted { job, key } => {
                if json {
                    println!("{}", response.to_json().render());
                } else {
                    match key {
                        Some(key) => println!("job {job} accepted (key {key})"),
                        None => println!("job {job} accepted"),
                    }
                }
            }
            Response::Event { stage, message, .. } => {
                if json {
                    println!("{}", response.to_json().render());
                } else {
                    println!("[{stage}] {message}");
                }
            }
            Response::Rejected {
                reason,
                queue_depth,
                retry_after_ms,
            } => {
                if json {
                    println!("{}", response.to_json().render());
                } else {
                    println!(
                        "rejected ({reason}, queue depth {queue_depth}); \
                         retrying in ~{retry_after_ms} ms"
                    );
                }
            }
            _ => {}
        },
    )?;
    match final_response {
        Response::Result { cache, summary, .. } => {
            let decoded = SynthesisSummary::from_json(&summary)?;
            if json {
                println!("{}", summary_with_cache(&decoded, &cache).render());
            } else {
                let outcome = match cache.as_str() {
                    "hit" => CacheOutcome::Hit,
                    "csc_resumed" => CacheOutcome::CscResumed,
                    "miss" => CacheOutcome::Miss,
                    _ => CacheOutcome::Disabled,
                };
                print_summary(&decoded, outcome);
            }
            Ok(())
        }
        other => Err(format!("unexpected final response: {other:?}")),
    }
}

/// `submit <dir>`: every `.g` file of the directory (sorted by name) as
/// one batch job. Per-spec pipeline failures are reported entry by
/// entry and do not fail the command — a corpus directory legitimately
/// contains non-implementable specifications.
fn submit_dir(dir: &str, opts: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        opts,
        &[
            "--host",
            "--port",
            "--arch",
            "--backend",
            "--csc",
            "--csc-threads",
            "--csc-bound",
            "--csc-no-prune",
            "--fanin",
            "--no-verify",
            "--verify-bound",
            "--verify-strategy",
            "--verify-incremental",
            "--priority",
            "--retries",
            "--backoff-ms",
            "--json",
        ],
    )?;
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "g"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{dir}: no .g files"));
    }
    let texts: Vec<String> = paths
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display())))
        .collect::<Result<_, _>>()?;
    let addr = format!("{}:{}", flags.host, flags.port.unwrap_or(DEFAULT_PORT));
    let json = flags.json;
    let final_response = server::client::submit_batch_with(
        &addr,
        &texts,
        &flags.options(),
        flags.priority,
        &flags.client_options(),
        |response| match response {
            Response::Accepted { job, .. } => {
                if json {
                    println!("{}", response.to_json().render());
                } else {
                    println!("batch job {job} accepted ({} specs)", texts.len());
                }
            }
            Response::Rejected {
                reason,
                queue_depth,
                retry_after_ms,
            } => {
                if json {
                    println!("{}", response.to_json().render());
                } else {
                    println!(
                        "batch rejected ({reason}, queue depth {queue_depth}); \
                         retrying in ~{retry_after_ms} ms"
                    );
                }
            }
            _ => {}
        },
    )?;
    match &final_response {
        Response::BatchResult { results, .. } => {
            if json {
                println!("{}", final_response.to_json().render());
            } else {
                let mut synthesized = 0usize;
                for entry in results {
                    let model = entry.get("model").and_then(Json::as_str).unwrap_or("?");
                    let cache = entry.get("cache").and_then(Json::as_str).unwrap_or("?");
                    match entry.get("error").and_then(Json::as_str) {
                        Some(error) => println!("  {model}: error: {error}"),
                        None => {
                            synthesized += 1;
                            let verification = entry
                                .get("summary")
                                .and_then(|s| s.get("verification"))
                                .and_then(Json::as_str)
                                .unwrap_or("?");
                            println!(
                                "  {model}: synthesized ({cache}, verification {verification})"
                            );
                        }
                    }
                }
                println!(
                    "batch: {synthesized}/{} synthesized, {} failed",
                    results.len(),
                    results.len() - synthesized
                );
            }
            Ok(())
        }
        other => Err(format!("unexpected final response: {other:?}")),
    }
}
