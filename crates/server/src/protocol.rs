//! The synthesis service's wire protocol: newline-delimited JSON
//! (NDJSON), one message per line, over TCP or stdio.
//!
//! # Requests
//!
//! ```json
//! {"op":"synth","spec":"<.g text>","backend":"explicit","arch":"complex",
//!  "csc":"auto","csc_threads":0,"csc_bound":200000,"csc_prune":true,
//!  "fanin":2,"skip_verification":false,"verify_bound":500000,
//!  "verify_strategy":"composed","verify_incremental":false,
//!  "priority":"normal","events":true}
//! {"op":"check","spec":"<.g text>","backend":"symbolic-set"}
//! {"op":"batch","specs":["<.g text>","<.g text>"],"backend":"explicit"}
//! {"op":"status"}
//! {"op":"metrics"}
//! {"op":"cancel","job":3}
//! {"op":"shutdown"}
//! ```
//!
//! Every option of `synth` except `spec` is optional and defaults to the
//! pipeline's defaults. `events:true` streams per-stage [`FlowEvent`]
//! diagnostics while the job runs. `priority` (`high`, `normal`, `low`;
//! default `normal`) places the job in one of the queue's three
//! admission classes — priority only affects scheduling order, never a
//! job's result. `batch` submits many specifications as one job (the
//! CLI's corpus-directory form of `submit`): each spec is first probed
//! against the result cache, the misses run through
//! `asyncsynth::run_batch`-style member synthesis, and per-spec
//! failures do not fail the batch.
//!
//! # Responses
//!
//! ```json
//! {"type":"accepted","job":1,"key":"<64-hex cache key>"}
//! {"type":"rejected","reason":"queue_full","queue_depth":12,"retry_after_ms":125}
//! {"type":"event","job":1,"stage":"check","message":"state space built (explicit): 20 states"}
//! {"type":"result","job":1,"cache":"miss","summary":{...}}
//! {"type":"check_result","job":2,"cache":"hit","report":{...}}
//! {"type":"batch_result","job":4,"total":3,"synthesized":2,"failed":1,
//!  "cancelled":0,"cache_hits":0,
//!  "results":[{"model":"...","cache":"miss","summary":{...}},
//!             {"model":"...","cache":"miss","error":"..."}]}
//! {"type":"error","job":1,"message":"..."}        // job omitted for protocol errors
//! {"type":"status","queued":0,"queue_jobs":0,"queue_capacity":256,
//!  "running":1,"completed":9,"cancelled":1,"panicked":0,"shed":3,
//!  "workers":4,"cache":{"hits":5,"misses":4,"stores":4,"corrupt":0}}
//! {"type":"metrics",
//!  "counters":{"cache_hits":5,"cache_misses":4,"jobs_completed":9,
//!              "jobs_cancelled":1,"requests_synth":10,"shed_total":3,
//!              "shed_queue_full":2,"shed_client_quota":1,"worker_panics":0},
//!  "gauges":{"cache_hit_permille":555,"jobs_running":1,"queue_depth":0,
//!            "queue_depth_high":0,"queue_depth_low":0,"queue_depth_normal":0,
//!            "queue_jobs":0,"queue_capacity":256,"workers":4}}
//! {"type":"cancelled","job":3,"found":true}
//! {"type":"shutting_down"}
//! ```
//!
//! `rejected` is the load-shedding reply: the job was **not** queued
//! (no job id exists), `reason` is `queue_full` or `client_quota`,
//! `queue_depth` is the weighted backlog at rejection time (a batch of
//! N specs weighs N, not 1), and `retry_after_ms` is the server's
//! deterministic backoff hint. Clients should wait at least that long
//! before resubmitting; [`crate::client::request_with`] does so
//! automatically with exponential backoff and jitter.
//!
//! `status` is the quick human-facing snapshot (weighted queue depth,
//! raw queued-job count, capacity, shed totals, busy workers,
//! job-lifecycle counters, cache stats); `metrics` is the
//! machine-facing export of the server's [`telemetry::Registry`] —
//! monotonic counters plus point-in-time gauges, rendered with sorted
//! keys so equal states produce equal bytes. `queue_depth` gauges are
//! weighted (admission's own view of load); `queue_jobs` is the raw job
//! count. All service counters are advisory (they describe *this*
//! process) and are never drift-gated.
//!
//! Responses for a given job always end with exactly one `result`,
//! `check_result`, `batch_result` or `error` message carrying that job
//! id. A `rejected` reply is terminal for the request that provoked it.
//!
//! [`FlowEvent`]: asyncsynth::FlowEvent

use asyncsynth::cache::CacheStats;
use asyncsynth::summary::{counters_from_json, counters_to_json};
use asyncsynth::{Json, SynthesisOptions};
use telemetry::Counters;

/// A job's admission class. Priority orders the queue's weighted
/// round-robin scheduler (high:normal:low served 4:2:1, so low-priority
/// work is delayed under load but never starved) and nothing else: a
/// job's result and cache key are identical at every priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Interactive work; served first (weight 4).
    High,
    /// The default class (weight 2).
    #[default]
    Normal,
    /// Background bulk work, e.g. corpus warming (weight 1).
    Low,
}

impl Priority {
    /// The wire name (`high` / `normal` / `low`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// The queue-class index (high = 0, normal = 1, low = 2).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// All classes, in scheduling order.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];
}

impl std::str::FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Priority, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!(
                "unknown priority {other:?} (expected high, normal or low)"
            )),
        }
    }
}

/// A client → server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run the full flow on a `.g` specification.
    Synth {
        /// The specification, in `.g` text form.
        spec_text: String,
        /// Flow options (backend, architecture, CSC strategy, …).
        options: SynthesisOptions,
        /// Admission class (scheduling only, never results).
        priority: Priority,
        /// Stream per-stage events while the job runs.
        events: bool,
    },
    /// Run only the §2.1 implementability check.
    Check {
        /// The specification, in `.g` text form.
        spec_text: String,
        /// Flow options (only the backend matters for `check`).
        options: SynthesisOptions,
        /// Admission class (scheduling only, never results).
        priority: Priority,
    },
    /// Run the full flow on many specifications as one job.
    Batch {
        /// The specifications, each in `.g` text form.
        spec_texts: Vec<String>,
        /// Flow options, shared by every member of the batch.
        options: SynthesisOptions,
        /// Admission class (scheduling only, never results).
        priority: Priority,
    },
    /// Report queue/worker/cache counters.
    Status,
    /// Export the server's metrics registry (counters + gauges).
    Metrics,
    /// Cancel a queued or running job.
    Cancel {
        /// The job id from the `accepted` response.
        job: u64,
    },
    /// Stop accepting connections and drain.
    Shutdown,
}

impl Request {
    /// Parses one NDJSON request line.
    ///
    /// # Errors
    ///
    /// A protocol-level message (malformed JSON, unknown `op`, missing
    /// or mistyped fields).
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing \"op\" field")?;
        match op {
            "synth" => Ok(Request::Synth {
                spec_text: spec_field(&v)?,
                options: options_fields(&v)?,
                priority: priority_field(&v)?,
                events: v.get("events").and_then(Json::as_bool).unwrap_or(false),
            }),
            "check" => Ok(Request::Check {
                spec_text: spec_field(&v)?,
                options: options_fields(&v)?,
                priority: priority_field(&v)?,
            }),
            "batch" => Ok(Request::Batch {
                spec_texts: specs_field(&v)?,
                options: options_fields(&v)?,
                priority: priority_field(&v)?,
            }),
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "cancel" => Ok(Request::Cancel {
                job: v
                    .get("job")
                    .and_then(Json::as_u64)
                    .ok_or("cancel needs a numeric \"job\"")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Renders the request as one NDJSON line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Request::Synth {
                spec_text,
                options,
                priority,
                events,
            } => {
                let mut pairs = vec![("op", Json::str("synth")), ("spec", Json::str(spec_text))];
                pairs.extend(option_pairs(options));
                pairs.extend(priority_pair(*priority));
                pairs.push(("events", Json::Bool(*events)));
                Json::obj(pairs).render()
            }
            Request::Check {
                spec_text,
                options,
                priority,
            } => {
                let mut pairs = vec![("op", Json::str("check")), ("spec", Json::str(spec_text))];
                pairs.extend(option_pairs(options));
                pairs.extend(priority_pair(*priority));
                Json::obj(pairs).render()
            }
            Request::Batch {
                spec_texts,
                options,
                priority,
            } => {
                let specs = Json::Arr(spec_texts.iter().map(Json::str).collect());
                let mut pairs = vec![("op", Json::str("batch")), ("specs", specs)];
                pairs.extend(option_pairs(options));
                pairs.extend(priority_pair(*priority));
                Json::obj(pairs).render()
            }
            Request::Status => Json::obj(vec![("op", Json::str("status"))]).render(),
            Request::Metrics => Json::obj(vec![("op", Json::str("metrics"))]).render(),
            Request::Cancel { job } => Json::obj(vec![
                ("op", Json::str("cancel")),
                ("job", Json::Num(*job as f64)),
            ])
            .render(),
            Request::Shutdown => Json::obj(vec![("op", Json::str("shutdown"))]).render(),
        }
    }
}

fn priority_field(v: &Json) -> Result<Priority, String> {
    match v.get("priority") {
        None => Ok(Priority::default()),
        Some(p) => p
            .as_str()
            .ok_or_else(|| "\"priority\" must be a string".to_owned())?
            .parse(),
    }
}

/// The `priority` wire pair — omitted at the default so renders of
/// priority-less requests stay byte-identical to older clients'.
fn priority_pair(priority: Priority) -> Option<(&'static str, Json)> {
    (priority != Priority::default()).then(|| ("priority", Json::str(priority.name())))
}

fn spec_field(v: &Json) -> Result<String, String> {
    v.get("spec")
        .and_then(Json::as_str)
        .map(ToOwned::to_owned)
        .ok_or_else(|| "missing \"spec\" field (.g text)".to_owned())
}

fn specs_field(v: &Json) -> Result<Vec<String>, String> {
    let Some(Json::Arr(items)) = v.get("specs") else {
        return Err("missing \"specs\" field (array of .g texts)".to_owned());
    };
    let texts: Vec<String> = items
        .iter()
        .filter_map(|s| s.as_str().map(ToOwned::to_owned))
        .collect();
    if texts.len() != items.len() {
        return Err("\"specs\" must contain only strings".to_owned());
    }
    if texts.is_empty() {
        return Err("\"specs\" must not be empty".to_owned());
    }
    Ok(texts)
}

fn options_fields(v: &Json) -> Result<SynthesisOptions, String> {
    let mut options = SynthesisOptions::default();
    if let Some(backend) = v.get("backend").and_then(Json::as_str) {
        options.backend = backend.parse()?;
    }
    if let Some(arch) = v.get("arch").and_then(Json::as_str) {
        options.architecture = arch.parse()?;
    }
    if let Some(csc) = v.get("csc").and_then(Json::as_str) {
        options.csc = csc.parse()?;
    }
    if let Some(threads) = v.get("csc_threads") {
        options.sweep.threads = threads
            .as_usize()
            .ok_or("\"csc_threads\" must be a non-negative integer")?;
    }
    if let Some(bound) = v.get("csc_bound") {
        options.sweep.bound = bound
            .as_usize()
            .ok_or("\"csc_bound\" must be a non-negative integer")?;
    }
    if let Some(prune) = v.get("csc_prune").and_then(Json::as_bool) {
        options.sweep.prune = prune;
    }
    if let Some(fanin) = v.get("fanin") {
        options.max_fanin = Some(
            fanin
                .as_usize()
                .ok_or("\"fanin\" must be a non-negative integer")?,
        );
    }
    if let Some(skip) = v.get("skip_verification").and_then(Json::as_bool) {
        options.skip_verification = skip;
    }
    if let Some(bound) = v.get("verify_bound") {
        options.verify.bound = bound
            .as_usize()
            .ok_or("\"verify_bound\" must be a non-negative integer")?;
    }
    if let Some(strategy) = v.get("verify_strategy").and_then(Json::as_str) {
        options.verify.strategy = strategy.parse()?;
    }
    if let Some(incremental) = v.get("verify_incremental").and_then(Json::as_bool) {
        options.verify.incremental = incremental;
    }
    Ok(options)
}

fn option_pairs(options: &SynthesisOptions) -> Vec<(&'static str, Json)> {
    let mut pairs = vec![
        ("backend", Json::str(options.backend.name())),
        ("arch", Json::str(options.architecture.name())),
        ("csc", Json::str(options.csc.name())),
        ("csc_threads", Json::num(options.sweep.threads)),
        ("csc_bound", Json::num(options.sweep.bound)),
        ("verify_bound", Json::num(options.verify.bound)),
        ("verify_strategy", Json::str(options.verify.strategy.name())),
    ];
    if options.verify.incremental {
        pairs.push(("verify_incremental", Json::Bool(true)));
    }
    if !options.sweep.prune {
        pairs.push(("csc_prune", Json::Bool(false)));
    }
    if let Some(fanin) = options.max_fanin {
        pairs.push(("fanin", Json::num(fanin)));
    }
    if options.skip_verification {
        pairs.push(("skip_verification", Json::Bool(true)));
    }
    pairs
}

/// A server → client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// A job was queued.
    Accepted {
        /// The job id (scope: this server process).
        job: u64,
        /// The full-result cache key, when the server runs a cache.
        key: Option<String>,
    },
    /// Admission failed: the job was shed instead of queued (no job id
    /// exists). Terminal for the request that provoked it.
    Rejected {
        /// `queue_full` or `client_quota`.
        reason: String,
        /// Weighted backlog at rejection time (batch of N weighs N).
        queue_depth: u64,
        /// The server's deterministic backoff hint; clients should wait
        /// at least this long before resubmitting.
        retry_after_ms: u64,
    },
    /// A streamed per-stage diagnostic (only with `events:true`).
    Event {
        /// The job this event belongs to.
        job: u64,
        /// The pipeline stage that produced it.
        stage: String,
        /// The rendered [`asyncsynth::FlowEvent`].
        message: String,
    },
    /// A synth job finished successfully.
    Result {
        /// The job id.
        job: u64,
        /// Cache participation (`hit`, `csc_resumed`, `miss`, `disabled`).
        cache: String,
        /// The [`asyncsynth::SynthesisSummary`] JSON.
        summary: Json,
    },
    /// A check job finished successfully.
    CheckResult {
        /// The job id.
        job: u64,
        /// Cache participation (`hit`, `miss`, `disabled`).
        cache: String,
        /// The implementability report JSON.
        report: Json,
    },
    /// A batch job finished (per-spec failures included, in order).
    BatchResult {
        /// The job id.
        job: u64,
        /// One entry per submitted spec, in submission order: `model`
        /// and `cache` always, plus either `summary` (success) or
        /// `error` (that spec's pipeline failure).
        results: Vec<Json>,
    },
    /// A job failed, or (with `job: None`) a request was malformed.
    Error {
        /// The job id, when the error belongs to an accepted job.
        job: Option<u64>,
        /// Human-readable description.
        message: String,
    },
    /// Queue / worker / cache counters.
    Status {
        /// Weighted queue depth — admission's view of the backlog (a
        /// queued batch of N specs contributes N, not 1).
        queued: usize,
        /// Raw count of queued jobs (a batch counts as 1 here).
        queue_jobs: usize,
        /// Weighted queue capacity (0 = unbounded).
        queue_capacity: usize,
        /// Jobs shed by admission control so far.
        shed: u64,
        /// Jobs currently executing (busy workers).
        running: usize,
        /// Jobs finished since the server started.
        completed: u64,
        /// Jobs whose cancellation was newly requested.
        cancelled: u64,
        /// Jobs that panicked inside a worker (the worker survived).
        panicked: u64,
        /// Worker-pool size.
        workers: usize,
        /// Cache counters, when a cache is configured.
        cache: Option<CacheStats>,
    },
    /// The server's metrics registry: monotonic counters plus
    /// point-in-time gauges (see the module docs for the key set).
    Metrics {
        /// Monotonic counters (requests by op, job lifecycle, cache).
        counters: Counters,
        /// Point-in-time gauges (queue depth, busy workers, hit ratio).
        gauges: Counters,
    },
    /// Acknowledges a cancel request.
    Cancelled {
        /// The job id from the request.
        job: u64,
        /// Whether the job was still known (queued or running).
        found: bool,
    },
    /// Acknowledges a shutdown request.
    ShuttingDown,
}

impl Response {
    /// Encodes the response as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        #[allow(clippy::cast_precision_loss)]
        let num64 = |n: u64| Json::Num(n as f64);
        match self {
            Response::Accepted { job, key } => Json::obj(vec![
                ("type", Json::str("accepted")),
                ("job", num64(*job)),
                ("key", key.as_ref().map_or(Json::Null, Json::str)),
            ]),
            Response::Rejected {
                reason,
                queue_depth,
                retry_after_ms,
            } => Json::obj(vec![
                ("type", Json::str("rejected")),
                ("reason", Json::str(reason)),
                ("queue_depth", num64(*queue_depth)),
                ("retry_after_ms", num64(*retry_after_ms)),
            ]),
            Response::Event {
                job,
                stage,
                message,
            } => Json::obj(vec![
                ("type", Json::str("event")),
                ("job", num64(*job)),
                ("stage", Json::str(stage)),
                ("message", Json::str(message)),
            ]),
            Response::Result {
                job,
                cache,
                summary,
            } => Json::obj(vec![
                ("type", Json::str("result")),
                ("job", num64(*job)),
                ("cache", Json::str(cache)),
                ("summary", summary.clone()),
            ]),
            Response::CheckResult { job, cache, report } => Json::obj(vec![
                ("type", Json::str("check_result")),
                ("job", num64(*job)),
                ("cache", Json::str(cache)),
                ("report", report.clone()),
            ]),
            Response::BatchResult { job, results } => {
                let synthesized = results
                    .iter()
                    .filter(|r| r.get("summary").is_some())
                    .count();
                let cancelled = results
                    .iter()
                    .filter(|r| r.get("cancelled").and_then(Json::as_bool) == Some(true))
                    .count();
                let cache_hits = results
                    .iter()
                    .filter(|r| r.get("cache").and_then(Json::as_str) == Some("hit"))
                    .count();
                Json::obj(vec![
                    ("type", Json::str("batch_result")),
                    ("job", num64(*job)),
                    ("total", Json::num(results.len())),
                    ("synthesized", Json::num(synthesized)),
                    ("failed", Json::num(results.len() - synthesized - cancelled)),
                    ("cancelled", Json::num(cancelled)),
                    ("cache_hits", Json::num(cache_hits)),
                    ("results", Json::Arr(results.clone())),
                ])
            }
            Response::Error { job, message } => Json::obj(vec![
                ("type", Json::str("error")),
                ("job", job.map_or(Json::Null, num64)),
                ("message", Json::str(message)),
            ]),
            Response::Status {
                queued,
                queue_jobs,
                queue_capacity,
                shed,
                running,
                completed,
                cancelled,
                panicked,
                workers,
                cache,
            } => Json::obj(vec![
                ("type", Json::str("status")),
                ("queued", Json::num(*queued)),
                ("queue_jobs", Json::num(*queue_jobs)),
                ("queue_capacity", Json::num(*queue_capacity)),
                ("running", Json::num(*running)),
                ("completed", num64(*completed)),
                ("cancelled", num64(*cancelled)),
                ("panicked", num64(*panicked)),
                ("shed", num64(*shed)),
                ("workers", Json::num(*workers)),
                (
                    "cache",
                    cache.map_or(Json::Null, |c| {
                        Json::obj(vec![
                            ("hits", num64(c.hits)),
                            ("misses", num64(c.misses)),
                            ("stores", num64(c.stores)),
                            ("corrupt", num64(c.corrupt)),
                        ])
                    }),
                ),
            ]),
            Response::Metrics { counters, gauges } => Json::obj(vec![
                ("type", Json::str("metrics")),
                ("counters", counters_to_json(counters)),
                ("gauges", counters_to_json(gauges)),
            ]),
            Response::Cancelled { job, found } => Json::obj(vec![
                ("type", Json::str("cancelled")),
                ("job", num64(*job)),
                ("found", Json::Bool(*found)),
            ]),
            Response::ShuttingDown => Json::obj(vec![("type", Json::str("shutting_down"))]),
        }
    }

    /// Parses one NDJSON response line (the client side).
    ///
    /// # Errors
    ///
    /// A protocol-level message on malformed or unknown responses.
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing \"type\" field")?;
        let job = |v: &Json| {
            v.get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| "missing numeric \"job\"".to_owned())
        };
        let text = |v: &Json, key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(ToOwned::to_owned)
                .ok_or_else(|| format!("missing string {key:?}"))
        };
        match ty {
            "accepted" => Ok(Response::Accepted {
                job: job(&v)?,
                key: v.get("key").and_then(Json::as_str).map(ToOwned::to_owned),
            }),
            "rejected" => Ok(Response::Rejected {
                reason: text(&v, "reason")?,
                queue_depth: v.get("queue_depth").and_then(Json::as_u64).unwrap_or(0),
                retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(0),
            }),
            "event" => Ok(Response::Event {
                job: job(&v)?,
                stage: text(&v, "stage")?,
                message: text(&v, "message")?,
            }),
            "result" => Ok(Response::Result {
                job: job(&v)?,
                cache: text(&v, "cache")?,
                summary: v.get("summary").cloned().ok_or("missing summary")?,
            }),
            "check_result" => Ok(Response::CheckResult {
                job: job(&v)?,
                cache: text(&v, "cache")?,
                report: v.get("report").cloned().ok_or("missing report")?,
            }),
            "batch_result" => Ok(Response::BatchResult {
                job: job(&v)?,
                results: match v.get("results") {
                    Some(Json::Arr(items)) => items.clone(),
                    _ => return Err("missing \"results\" array".to_owned()),
                },
            }),
            "error" => Ok(Response::Error {
                job: v.get("job").and_then(Json::as_u64),
                message: text(&v, "message")?,
            }),
            "status" => Ok(Response::Status {
                queued: v.get("queued").and_then(Json::as_usize).unwrap_or(0),
                queue_jobs: v.get("queue_jobs").and_then(Json::as_usize).unwrap_or(0),
                queue_capacity: v
                    .get("queue_capacity")
                    .and_then(Json::as_usize)
                    .unwrap_or(0),
                shed: v.get("shed").and_then(Json::as_u64).unwrap_or(0),
                running: v.get("running").and_then(Json::as_usize).unwrap_or(0),
                completed: v.get("completed").and_then(Json::as_u64).unwrap_or(0),
                cancelled: v.get("cancelled").and_then(Json::as_u64).unwrap_or(0),
                panicked: v.get("panicked").and_then(Json::as_u64).unwrap_or(0),
                workers: v.get("workers").and_then(Json::as_usize).unwrap_or(0),
                cache: v.get("cache").and_then(|c| {
                    Some(CacheStats {
                        hits: c.get("hits")?.as_u64()?,
                        misses: c.get("misses")?.as_u64()?,
                        stores: c.get("stores")?.as_u64()?,
                        corrupt: c.get("corrupt")?.as_u64()?,
                    })
                }),
            }),
            "metrics" => Ok(Response::Metrics {
                counters: counters_from_json(v.get("counters").ok_or("missing counters")?)?,
                gauges: counters_from_json(v.get("gauges").ok_or("missing gauges")?)?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: job(&v)?,
                found: v.get("found").and_then(Json::as_bool).unwrap_or(false),
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Priority, Request, Response};
    use asyncsynth::Json;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Synth {
                spec_text: ".model m\n.outputs x\n.graph\nx+ x-\nx- x+\n.marking {<x-,x+>}\n.end\n"
                    .to_owned(),
                options: asyncsynth::SynthesisOptions {
                    backend: asyncsynth::Backend::Symbolic,
                    max_fanin: Some(3),
                    sweep: asyncsynth::SweepOptions {
                        threads: 4,
                        bound: 50_000,
                        prune: false,
                        ..Default::default()
                    },
                    verify: asyncsynth::VerifyOptions {
                        bound: 25_000,
                        strategy: asyncsynth::VerifyStrategy::ExplicitBfs,
                        incremental: true,
                    },
                    ..Default::default()
                },
                priority: Priority::High,
                events: true,
            },
            Request::Check {
                spec_text: ".model m\n.end\n".to_owned(),
                options: asyncsynth::SynthesisOptions {
                    backend: asyncsynth::Backend::SymbolicSet,
                    ..Default::default()
                },
                priority: Priority::Normal,
            },
            Request::Batch {
                spec_texts: vec![".model a\n.end\n".to_owned(), ".model b\n.end\n".to_owned()],
                options: asyncsynth::SynthesisOptions::default(),
                priority: Priority::Low,
            },
            Request::Status,
            Request::Metrics,
            Request::Cancel { job: 7 },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.render();
            let back = Request::parse_line(&line).expect("own rendering parses");
            assert_eq!(back.render(), line);
        }
    }

    #[test]
    fn synth_request_defaults() {
        let req = Request::parse_line("{\"op\":\"synth\",\"spec\":\".model m\\n.end\"}")
            .expect("minimal synth parses");
        match req {
            Request::Synth {
                options,
                priority,
                events,
                ..
            } => {
                assert_eq!(options.backend, asyncsynth::Backend::Explicit);
                assert_eq!(priority, Priority::Normal);
                assert!(!events);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn priority_field_parses_and_rejects_unknowns() {
        for (value, expected) in [
            ("high", Priority::High),
            ("normal", Priority::Normal),
            ("low", Priority::Low),
        ] {
            let line = format!("{{\"op\":\"synth\",\"spec\":\"x\",\"priority\":\"{value}\"}}");
            match Request::parse_line(&line).expect("priority parses") {
                Request::Synth { priority, .. } => assert_eq!(priority, expected),
                other => panic!("wrong request {other:?}"),
            }
        }
        assert!(
            Request::parse_line("{\"op\":\"synth\",\"spec\":\"x\",\"priority\":\"urgent\"}")
                .is_err(),
            "unknown priority rejected"
        );
        assert!(
            Request::parse_line("{\"op\":\"synth\",\"spec\":\"x\",\"priority\":3}").is_err(),
            "non-string priority rejected"
        );
    }

    #[test]
    fn verify_options_round_trip_on_the_wire() {
        let line = "{\"op\":\"synth\",\"spec\":\"x\",\"verify_bound\":1234,\
                    \"verify_strategy\":\"explicit\",\"verify_incremental\":true}";
        let req = Request::parse_line(line).expect("parses");
        match req {
            Request::Synth { options, .. } => {
                assert_eq!(options.verify.bound, 1234);
                assert_eq!(
                    options.verify.strategy,
                    asyncsynth::VerifyStrategy::ExplicitBfs
                );
                assert!(options.verify.incremental);
            }
            other => panic!("wrong request {other:?}"),
        }
        assert!(
            Request::parse_line("{\"op\":\"synth\",\"spec\":\"x\",\"verify_strategy\":\"magic\"}")
                .is_err(),
            "unknown strategy rejected"
        );
    }

    #[test]
    fn bad_requests_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"op\":\"synth\"}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"cancel\"}",
            "{\"op\":\"synth\",\"spec\":\"x\",\"backend\":\"quantum\"}",
            "{\"op\":\"batch\"}",
            "{\"op\":\"batch\",\"specs\":[]}",
            "{\"op\":\"batch\",\"specs\":[\"x\",7]}",
        ] {
            assert!(
                Request::parse_line(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Accepted {
                job: 1,
                key: Some("ab".repeat(32)),
            },
            Response::Rejected {
                reason: "queue_full".to_owned(),
                queue_depth: 12,
                retry_after_ms: 125,
            },
            Response::Event {
                job: 1,
                stage: "check".to_owned(),
                message: "state space built".to_owned(),
            },
            Response::Result {
                job: 1,
                cache: "hit".to_owned(),
                summary: Json::obj(vec![("model", Json::str("m"))]),
            },
            Response::BatchResult {
                job: 4,
                results: vec![
                    Json::obj(vec![
                        ("model", Json::str("a")),
                        ("cache", Json::str("miss")),
                        ("summary", Json::obj(vec![("model", Json::str("a"))])),
                    ]),
                    Json::obj(vec![
                        ("model", Json::str("b")),
                        ("cache", Json::str("miss")),
                        ("error", Json::str("state graph is not consistent")),
                    ]),
                ],
            },
            Response::Error {
                job: None,
                message: "malformed".to_owned(),
            },
            Response::Status {
                queued: 5,
                queue_jobs: 1,
                queue_capacity: 256,
                shed: 3,
                running: 2,
                completed: 3,
                cancelled: 1,
                panicked: 0,
                workers: 4,
                cache: Some(asyncsynth::CacheStats {
                    hits: 9,
                    misses: 8,
                    stores: 7,
                    corrupt: 0,
                }),
            },
            Response::Metrics {
                counters: telemetry::Counters::from_pairs([
                    ("jobs_completed", 3u64),
                    ("requests_synth", 5),
                    ("worker_panics", 0),
                ]),
                gauges: telemetry::Counters::from_pairs([
                    ("jobs_running", 2u64),
                    ("queue_depth", 1),
                    ("workers", 4),
                ]),
            },
            Response::Cancelled {
                job: 5,
                found: true,
            },
            Response::ShuttingDown,
        ];
        for resp in resps {
            let line = resp.to_json().render();
            let back = Response::parse_line(&line).expect("own rendering parses");
            assert_eq!(back.to_json().render(), line);
        }
    }
}
