//! The synthesis service's wire protocol: newline-delimited JSON
//! (NDJSON), one message per line, over TCP or stdio.
//!
//! # Requests
//!
//! ```json
//! {"op":"synth","spec":"<.g text>","backend":"explicit","arch":"complex",
//!  "csc":"auto","csc_threads":0,"csc_bound":200000,"csc_prune":true,
//!  "fanin":2,"skip_verification":false,"verify_bound":500000,
//!  "verify_strategy":"composed","verify_incremental":false,"events":true}
//! {"op":"check","spec":"<.g text>","backend":"symbolic-set"}
//! {"op":"batch","specs":["<.g text>","<.g text>"],"backend":"explicit"}
//! {"op":"status"}
//! {"op":"metrics"}
//! {"op":"cancel","job":3}
//! {"op":"shutdown"}
//! ```
//!
//! Every option of `synth` except `spec` is optional and defaults to the
//! pipeline's defaults. `events:true` streams per-stage [`FlowEvent`]
//! diagnostics while the job runs. `batch` submits many specifications
//! as one job (the CLI's corpus-directory form of `submit`): each spec
//! is first probed against the result cache, the misses run through
//! `asyncsynth::run_batch`, and per-spec failures do not fail the
//! batch.
//!
//! # Responses
//!
//! ```json
//! {"type":"accepted","job":1,"key":"<64-hex cache key>"}
//! {"type":"event","job":1,"stage":"check","message":"state space built (explicit): 20 states"}
//! {"type":"result","job":1,"cache":"miss","summary":{...}}
//! {"type":"check_result","job":2,"cache":"hit","report":{...}}
//! {"type":"batch_result","job":4,"total":3,"synthesized":2,"failed":1,
//!  "cache_hits":0,"results":[{"model":"...","cache":"miss","summary":{...}},
//!                            {"model":"...","cache":"miss","error":"..."}]}
//! {"type":"error","job":1,"message":"..."}        // job omitted for protocol errors
//! {"type":"status","queued":0,"running":1,"completed":9,"cancelled":1,
//!  "panicked":0,"workers":4,
//!  "cache":{"hits":5,"misses":4,"stores":4,"corrupt":0}}
//! {"type":"metrics",
//!  "counters":{"cache_hits":5,"cache_misses":4,"jobs_completed":9,
//!              "jobs_cancelled":1,"requests_synth":10,"worker_panics":0},
//!  "gauges":{"cache_hit_permille":555,"jobs_running":1,"queue_depth":0,
//!            "workers":4}}
//! {"type":"cancelled","job":3,"found":true}
//! {"type":"shutting_down"}
//! ```
//!
//! `status` is the quick human-facing snapshot (queue depth, busy
//! workers, job-lifecycle counters, cache stats); `metrics` is the
//! machine-facing export of the server's [`telemetry::Registry`] —
//! monotonic counters plus point-in-time gauges, rendered with sorted
//! keys so equal states produce equal bytes. All service counters are
//! advisory (they describe *this* process) and are never drift-gated.
//!
//! Responses for a given job always end with exactly one `result`,
//! `check_result`, `batch_result` or `error` message carrying that job
//! id.
//!
//! [`FlowEvent`]: asyncsynth::FlowEvent

use asyncsynth::cache::CacheStats;
use asyncsynth::summary::{counters_from_json, counters_to_json};
use asyncsynth::{Json, SynthesisOptions};
use telemetry::Counters;

/// A client → server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run the full flow on a `.g` specification.
    Synth {
        /// The specification, in `.g` text form.
        spec_text: String,
        /// Flow options (backend, architecture, CSC strategy, …).
        options: SynthesisOptions,
        /// Stream per-stage events while the job runs.
        events: bool,
    },
    /// Run only the §2.1 implementability check.
    Check {
        /// The specification, in `.g` text form.
        spec_text: String,
        /// Flow options (only the backend matters for `check`).
        options: SynthesisOptions,
    },
    /// Run the full flow on many specifications as one job.
    Batch {
        /// The specifications, each in `.g` text form.
        spec_texts: Vec<String>,
        /// Flow options, shared by every member of the batch.
        options: SynthesisOptions,
    },
    /// Report queue/worker/cache counters.
    Status,
    /// Export the server's metrics registry (counters + gauges).
    Metrics,
    /// Cancel a queued or running job.
    Cancel {
        /// The job id from the `accepted` response.
        job: u64,
    },
    /// Stop accepting connections and drain.
    Shutdown,
}

impl Request {
    /// Parses one NDJSON request line.
    ///
    /// # Errors
    ///
    /// A protocol-level message (malformed JSON, unknown `op`, missing
    /// or mistyped fields).
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing \"op\" field")?;
        match op {
            "synth" => Ok(Request::Synth {
                spec_text: spec_field(&v)?,
                options: options_fields(&v)?,
                events: v.get("events").and_then(Json::as_bool).unwrap_or(false),
            }),
            "check" => Ok(Request::Check {
                spec_text: spec_field(&v)?,
                options: options_fields(&v)?,
            }),
            "batch" => Ok(Request::Batch {
                spec_texts: specs_field(&v)?,
                options: options_fields(&v)?,
            }),
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "cancel" => Ok(Request::Cancel {
                job: v
                    .get("job")
                    .and_then(Json::as_u64)
                    .ok_or("cancel needs a numeric \"job\"")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Renders the request as one NDJSON line (no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Request::Synth {
                spec_text,
                options,
                events,
            } => {
                let mut pairs = vec![("op", Json::str("synth")), ("spec", Json::str(spec_text))];
                pairs.extend(option_pairs(options));
                pairs.push(("events", Json::Bool(*events)));
                Json::obj(pairs).render()
            }
            Request::Check { spec_text, options } => {
                let mut pairs = vec![("op", Json::str("check")), ("spec", Json::str(spec_text))];
                pairs.extend(option_pairs(options));
                Json::obj(pairs).render()
            }
            Request::Batch {
                spec_texts,
                options,
            } => {
                let specs = Json::Arr(spec_texts.iter().map(Json::str).collect());
                let mut pairs = vec![("op", Json::str("batch")), ("specs", specs)];
                pairs.extend(option_pairs(options));
                Json::obj(pairs).render()
            }
            Request::Status => Json::obj(vec![("op", Json::str("status"))]).render(),
            Request::Metrics => Json::obj(vec![("op", Json::str("metrics"))]).render(),
            Request::Cancel { job } => Json::obj(vec![
                ("op", Json::str("cancel")),
                ("job", Json::Num(*job as f64)),
            ])
            .render(),
            Request::Shutdown => Json::obj(vec![("op", Json::str("shutdown"))]).render(),
        }
    }
}

fn spec_field(v: &Json) -> Result<String, String> {
    v.get("spec")
        .and_then(Json::as_str)
        .map(ToOwned::to_owned)
        .ok_or_else(|| "missing \"spec\" field (.g text)".to_owned())
}

fn specs_field(v: &Json) -> Result<Vec<String>, String> {
    let Some(Json::Arr(items)) = v.get("specs") else {
        return Err("missing \"specs\" field (array of .g texts)".to_owned());
    };
    let texts: Vec<String> = items
        .iter()
        .filter_map(|s| s.as_str().map(ToOwned::to_owned))
        .collect();
    if texts.len() != items.len() {
        return Err("\"specs\" must contain only strings".to_owned());
    }
    if texts.is_empty() {
        return Err("\"specs\" must not be empty".to_owned());
    }
    Ok(texts)
}

fn options_fields(v: &Json) -> Result<SynthesisOptions, String> {
    let mut options = SynthesisOptions::default();
    if let Some(backend) = v.get("backend").and_then(Json::as_str) {
        options.backend = backend.parse()?;
    }
    if let Some(arch) = v.get("arch").and_then(Json::as_str) {
        options.architecture = arch.parse()?;
    }
    if let Some(csc) = v.get("csc").and_then(Json::as_str) {
        options.csc = csc.parse()?;
    }
    if let Some(threads) = v.get("csc_threads") {
        options.sweep.threads = threads
            .as_usize()
            .ok_or("\"csc_threads\" must be a non-negative integer")?;
    }
    if let Some(bound) = v.get("csc_bound") {
        options.sweep.bound = bound
            .as_usize()
            .ok_or("\"csc_bound\" must be a non-negative integer")?;
    }
    if let Some(prune) = v.get("csc_prune").and_then(Json::as_bool) {
        options.sweep.prune = prune;
    }
    if let Some(fanin) = v.get("fanin") {
        options.max_fanin = Some(
            fanin
                .as_usize()
                .ok_or("\"fanin\" must be a non-negative integer")?,
        );
    }
    if let Some(skip) = v.get("skip_verification").and_then(Json::as_bool) {
        options.skip_verification = skip;
    }
    if let Some(bound) = v.get("verify_bound") {
        options.verify.bound = bound
            .as_usize()
            .ok_or("\"verify_bound\" must be a non-negative integer")?;
    }
    if let Some(strategy) = v.get("verify_strategy").and_then(Json::as_str) {
        options.verify.strategy = strategy.parse()?;
    }
    if let Some(incremental) = v.get("verify_incremental").and_then(Json::as_bool) {
        options.verify.incremental = incremental;
    }
    Ok(options)
}

fn option_pairs(options: &SynthesisOptions) -> Vec<(&'static str, Json)> {
    let mut pairs = vec![
        ("backend", Json::str(options.backend.name())),
        ("arch", Json::str(options.architecture.name())),
        ("csc", Json::str(options.csc.name())),
        ("csc_threads", Json::num(options.sweep.threads)),
        ("csc_bound", Json::num(options.sweep.bound)),
        ("verify_bound", Json::num(options.verify.bound)),
        ("verify_strategy", Json::str(options.verify.strategy.name())),
    ];
    if options.verify.incremental {
        pairs.push(("verify_incremental", Json::Bool(true)));
    }
    if !options.sweep.prune {
        pairs.push(("csc_prune", Json::Bool(false)));
    }
    if let Some(fanin) = options.max_fanin {
        pairs.push(("fanin", Json::num(fanin)));
    }
    if options.skip_verification {
        pairs.push(("skip_verification", Json::Bool(true)));
    }
    pairs
}

/// A server → client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// A job was queued.
    Accepted {
        /// The job id (scope: this server process).
        job: u64,
        /// The full-result cache key, when the server runs a cache.
        key: Option<String>,
    },
    /// A streamed per-stage diagnostic (only with `events:true`).
    Event {
        /// The job this event belongs to.
        job: u64,
        /// The pipeline stage that produced it.
        stage: String,
        /// The rendered [`asyncsynth::FlowEvent`].
        message: String,
    },
    /// A synth job finished successfully.
    Result {
        /// The job id.
        job: u64,
        /// Cache participation (`hit`, `csc_resumed`, `miss`, `disabled`).
        cache: String,
        /// The [`asyncsynth::SynthesisSummary`] JSON.
        summary: Json,
    },
    /// A check job finished successfully.
    CheckResult {
        /// The job id.
        job: u64,
        /// Cache participation (`hit`, `miss`, `disabled`).
        cache: String,
        /// The implementability report JSON.
        report: Json,
    },
    /// A batch job finished (per-spec failures included, in order).
    BatchResult {
        /// The job id.
        job: u64,
        /// One entry per submitted spec, in submission order: `model`
        /// and `cache` always, plus either `summary` (success) or
        /// `error` (that spec's pipeline failure).
        results: Vec<Json>,
    },
    /// A job failed, or (with `job: None`) a request was malformed.
    Error {
        /// The job id, when the error belongs to an accepted job.
        job: Option<u64>,
        /// Human-readable description.
        message: String,
    },
    /// Queue / worker / cache counters.
    Status {
        /// Jobs waiting for a worker (the queue depth).
        queued: usize,
        /// Jobs currently executing (busy workers).
        running: usize,
        /// Jobs finished since the server started.
        completed: u64,
        /// Jobs whose cancellation was newly requested.
        cancelled: u64,
        /// Jobs that panicked inside a worker (the worker survived).
        panicked: u64,
        /// Worker-pool size.
        workers: usize,
        /// Cache counters, when a cache is configured.
        cache: Option<CacheStats>,
    },
    /// The server's metrics registry: monotonic counters plus
    /// point-in-time gauges (see the module docs for the key set).
    Metrics {
        /// Monotonic counters (requests by op, job lifecycle, cache).
        counters: Counters,
        /// Point-in-time gauges (queue depth, busy workers, hit ratio).
        gauges: Counters,
    },
    /// Acknowledges a cancel request.
    Cancelled {
        /// The job id from the request.
        job: u64,
        /// Whether the job was still known (queued or running).
        found: bool,
    },
    /// Acknowledges a shutdown request.
    ShuttingDown,
}

impl Response {
    /// Encodes the response as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        #[allow(clippy::cast_precision_loss)]
        let num64 = |n: u64| Json::Num(n as f64);
        match self {
            Response::Accepted { job, key } => Json::obj(vec![
                ("type", Json::str("accepted")),
                ("job", num64(*job)),
                ("key", key.as_ref().map_or(Json::Null, Json::str)),
            ]),
            Response::Event {
                job,
                stage,
                message,
            } => Json::obj(vec![
                ("type", Json::str("event")),
                ("job", num64(*job)),
                ("stage", Json::str(stage)),
                ("message", Json::str(message)),
            ]),
            Response::Result {
                job,
                cache,
                summary,
            } => Json::obj(vec![
                ("type", Json::str("result")),
                ("job", num64(*job)),
                ("cache", Json::str(cache)),
                ("summary", summary.clone()),
            ]),
            Response::CheckResult { job, cache, report } => Json::obj(vec![
                ("type", Json::str("check_result")),
                ("job", num64(*job)),
                ("cache", Json::str(cache)),
                ("report", report.clone()),
            ]),
            Response::BatchResult { job, results } => {
                let synthesized = results
                    .iter()
                    .filter(|r| r.get("summary").is_some())
                    .count();
                let cache_hits = results
                    .iter()
                    .filter(|r| r.get("cache").and_then(Json::as_str) == Some("hit"))
                    .count();
                Json::obj(vec![
                    ("type", Json::str("batch_result")),
                    ("job", num64(*job)),
                    ("total", Json::num(results.len())),
                    ("synthesized", Json::num(synthesized)),
                    ("failed", Json::num(results.len() - synthesized)),
                    ("cache_hits", Json::num(cache_hits)),
                    ("results", Json::Arr(results.clone())),
                ])
            }
            Response::Error { job, message } => Json::obj(vec![
                ("type", Json::str("error")),
                ("job", job.map_or(Json::Null, num64)),
                ("message", Json::str(message)),
            ]),
            Response::Status {
                queued,
                running,
                completed,
                cancelled,
                panicked,
                workers,
                cache,
            } => Json::obj(vec![
                ("type", Json::str("status")),
                ("queued", Json::num(*queued)),
                ("running", Json::num(*running)),
                ("completed", num64(*completed)),
                ("cancelled", num64(*cancelled)),
                ("panicked", num64(*panicked)),
                ("workers", Json::num(*workers)),
                (
                    "cache",
                    cache.map_or(Json::Null, |c| {
                        Json::obj(vec![
                            ("hits", num64(c.hits)),
                            ("misses", num64(c.misses)),
                            ("stores", num64(c.stores)),
                            ("corrupt", num64(c.corrupt)),
                        ])
                    }),
                ),
            ]),
            Response::Metrics { counters, gauges } => Json::obj(vec![
                ("type", Json::str("metrics")),
                ("counters", counters_to_json(counters)),
                ("gauges", counters_to_json(gauges)),
            ]),
            Response::Cancelled { job, found } => Json::obj(vec![
                ("type", Json::str("cancelled")),
                ("job", num64(*job)),
                ("found", Json::Bool(*found)),
            ]),
            Response::ShuttingDown => Json::obj(vec![("type", Json::str("shutting_down"))]),
        }
    }

    /// Parses one NDJSON response line (the client side).
    ///
    /// # Errors
    ///
    /// A protocol-level message on malformed or unknown responses.
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing \"type\" field")?;
        let job = |v: &Json| {
            v.get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| "missing numeric \"job\"".to_owned())
        };
        let text = |v: &Json, key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(ToOwned::to_owned)
                .ok_or_else(|| format!("missing string {key:?}"))
        };
        match ty {
            "accepted" => Ok(Response::Accepted {
                job: job(&v)?,
                key: v.get("key").and_then(Json::as_str).map(ToOwned::to_owned),
            }),
            "event" => Ok(Response::Event {
                job: job(&v)?,
                stage: text(&v, "stage")?,
                message: text(&v, "message")?,
            }),
            "result" => Ok(Response::Result {
                job: job(&v)?,
                cache: text(&v, "cache")?,
                summary: v.get("summary").cloned().ok_or("missing summary")?,
            }),
            "check_result" => Ok(Response::CheckResult {
                job: job(&v)?,
                cache: text(&v, "cache")?,
                report: v.get("report").cloned().ok_or("missing report")?,
            }),
            "batch_result" => Ok(Response::BatchResult {
                job: job(&v)?,
                results: match v.get("results") {
                    Some(Json::Arr(items)) => items.clone(),
                    _ => return Err("missing \"results\" array".to_owned()),
                },
            }),
            "error" => Ok(Response::Error {
                job: v.get("job").and_then(Json::as_u64),
                message: text(&v, "message")?,
            }),
            "status" => Ok(Response::Status {
                queued: v.get("queued").and_then(Json::as_usize).unwrap_or(0),
                running: v.get("running").and_then(Json::as_usize).unwrap_or(0),
                completed: v.get("completed").and_then(Json::as_u64).unwrap_or(0),
                cancelled: v.get("cancelled").and_then(Json::as_u64).unwrap_or(0),
                panicked: v.get("panicked").and_then(Json::as_u64).unwrap_or(0),
                workers: v.get("workers").and_then(Json::as_usize).unwrap_or(0),
                cache: v.get("cache").and_then(|c| {
                    Some(CacheStats {
                        hits: c.get("hits")?.as_u64()?,
                        misses: c.get("misses")?.as_u64()?,
                        stores: c.get("stores")?.as_u64()?,
                        corrupt: c.get("corrupt")?.as_u64()?,
                    })
                }),
            }),
            "metrics" => Ok(Response::Metrics {
                counters: counters_from_json(v.get("counters").ok_or("missing counters")?)?,
                gauges: counters_from_json(v.get("gauges").ok_or("missing gauges")?)?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: job(&v)?,
                found: v.get("found").and_then(Json::as_bool).unwrap_or(false),
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Request, Response};
    use asyncsynth::Json;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Synth {
                spec_text: ".model m\n.outputs x\n.graph\nx+ x-\nx- x+\n.marking {<x-,x+>}\n.end\n"
                    .to_owned(),
                options: asyncsynth::SynthesisOptions {
                    backend: asyncsynth::Backend::Symbolic,
                    max_fanin: Some(3),
                    sweep: asyncsynth::SweepOptions {
                        threads: 4,
                        bound: 50_000,
                        prune: false,
                        ..Default::default()
                    },
                    verify: asyncsynth::VerifyOptions {
                        bound: 25_000,
                        strategy: asyncsynth::VerifyStrategy::ExplicitBfs,
                        incremental: true,
                    },
                    ..Default::default()
                },
                events: true,
            },
            Request::Check {
                spec_text: ".model m\n.end\n".to_owned(),
                options: asyncsynth::SynthesisOptions {
                    backend: asyncsynth::Backend::SymbolicSet,
                    ..Default::default()
                },
            },
            Request::Batch {
                spec_texts: vec![".model a\n.end\n".to_owned(), ".model b\n.end\n".to_owned()],
                options: asyncsynth::SynthesisOptions::default(),
            },
            Request::Status,
            Request::Metrics,
            Request::Cancel { job: 7 },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.render();
            let back = Request::parse_line(&line).expect("own rendering parses");
            assert_eq!(back.render(), line);
        }
    }

    #[test]
    fn synth_request_defaults() {
        let req = Request::parse_line("{\"op\":\"synth\",\"spec\":\".model m\\n.end\"}")
            .expect("minimal synth parses");
        match req {
            Request::Synth {
                options, events, ..
            } => {
                assert_eq!(options.backend, asyncsynth::Backend::Explicit);
                assert!(!events);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn verify_options_round_trip_on_the_wire() {
        let line = "{\"op\":\"synth\",\"spec\":\"x\",\"verify_bound\":1234,\
                    \"verify_strategy\":\"explicit\",\"verify_incremental\":true}";
        let req = Request::parse_line(line).expect("parses");
        match req {
            Request::Synth { options, .. } => {
                assert_eq!(options.verify.bound, 1234);
                assert_eq!(
                    options.verify.strategy,
                    asyncsynth::VerifyStrategy::ExplicitBfs
                );
                assert!(options.verify.incremental);
            }
            other => panic!("wrong request {other:?}"),
        }
        assert!(
            Request::parse_line("{\"op\":\"synth\",\"spec\":\"x\",\"verify_strategy\":\"magic\"}")
                .is_err(),
            "unknown strategy rejected"
        );
    }

    #[test]
    fn bad_requests_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"op\":\"synth\"}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"cancel\"}",
            "{\"op\":\"synth\",\"spec\":\"x\",\"backend\":\"quantum\"}",
            "{\"op\":\"batch\"}",
            "{\"op\":\"batch\",\"specs\":[]}",
            "{\"op\":\"batch\",\"specs\":[\"x\",7]}",
        ] {
            assert!(
                Request::parse_line(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Accepted {
                job: 1,
                key: Some("ab".repeat(32)),
            },
            Response::Event {
                job: 1,
                stage: "check".to_owned(),
                message: "state space built".to_owned(),
            },
            Response::Result {
                job: 1,
                cache: "hit".to_owned(),
                summary: Json::obj(vec![("model", Json::str("m"))]),
            },
            Response::BatchResult {
                job: 4,
                results: vec![
                    Json::obj(vec![
                        ("model", Json::str("a")),
                        ("cache", Json::str("miss")),
                        ("summary", Json::obj(vec![("model", Json::str("a"))])),
                    ]),
                    Json::obj(vec![
                        ("model", Json::str("b")),
                        ("cache", Json::str("miss")),
                        ("error", Json::str("state graph is not consistent")),
                    ]),
                ],
            },
            Response::Error {
                job: None,
                message: "malformed".to_owned(),
            },
            Response::Status {
                queued: 1,
                running: 2,
                completed: 3,
                cancelled: 1,
                panicked: 0,
                workers: 4,
                cache: Some(asyncsynth::CacheStats {
                    hits: 9,
                    misses: 8,
                    stores: 7,
                    corrupt: 0,
                }),
            },
            Response::Metrics {
                counters: telemetry::Counters::from_pairs([
                    ("jobs_completed", 3u64),
                    ("requests_synth", 5),
                    ("worker_panics", 0),
                ]),
                gauges: telemetry::Counters::from_pairs([
                    ("jobs_running", 2u64),
                    ("queue_depth", 1),
                    ("workers", 4),
                ]),
            },
            Response::Cancelled {
                job: 5,
                found: true,
            },
            Response::ShuttingDown,
        ];
        for resp in resps {
            let line = resp.to_json().render();
            let back = Response::parse_line(&line).expect("own rendering parses");
            assert_eq!(back.to_json().render(), line);
        }
    }
}
