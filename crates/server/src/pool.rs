//! The long-lived worker pool.
//!
//! Generalises `run_batch`'s scoped-thread work-stealing into a
//! persistent pool: N workers block on the [`JobQueue`], run each job
//! through the cached flow ([`asyncsynth::run_cached_with`]), stream
//! per-stage events back to the owning connection, honour cancellation
//! between stages, and survive panicking jobs (a panic fails the job,
//! not the worker).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use asyncsynth::{
    cache_key, run_cached_with, CacheStage, FlowEvent, FlowObserver, Json, ResultCache,
    SynthesisSummary,
};
use stg::Stg;

use crate::protocol::Response;
use crate::queue::{Job, JobKind, JobQueue, Reply};

/// Streams stage events into the job's reply channel and polls the
/// job's cancellation flag.
struct JobObserver<'a> {
    job_id: u64,
    stream: bool,
    cancel: &'a std::sync::atomic::AtomicBool,
    reply: &'a Reply,
}

impl FlowObserver for JobObserver<'_> {
    fn stage(&mut self, stage: &str, events: &[FlowEvent]) {
        if !self.stream {
            return;
        }
        for event in events {
            // A dead client is not an error; the job still completes and
            // warms the cache.
            self.reply.send(Response::Event {
                job: self.job_id,
                stage: stage.to_owned(),
                message: event.to_string(),
            });
        }
    }

    fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// A fixed-size pool of worker threads draining a [`JobQueue`].
#[derive(Debug)]
pub struct WorkerPool {
    queue: Arc<JobQueue>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads draining `queue`, all sharing `cache`.
    #[must_use]
    pub fn start(
        workers: usize,
        queue: Arc<JobQueue>,
        cache: Option<Arc<ResultCache>>,
    ) -> WorkerPool {
        let workers = workers.max(1);
        // Split the core budget between pool workers and each job's CSC
        // sweep: a job that leaves the sweep's thread count on "auto"
        // gets cores/workers sweep threads instead of one-per-core —
        // otherwise every concurrent job would spawn a full per-core
        // sweep and oversubscribe the machine quadratically. Explicit
        // client-requested counts are honoured (clamped upstream), and
        // thread count never changes a job's result or cache key.
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let auto_sweep_threads = (cores / workers).max(1);
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let cache = cache.clone();
                std::thread::Builder::new()
                    .name(format!("synth-worker-{i}"))
                    .spawn(move || worker_loop(&queue, cache.as_deref(), auto_sweep_threads))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            queue,
            handles,
            workers,
        }
    }

    /// Pool size.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Closes the queue and joins every worker.
    pub fn shutdown(self) {
        self.queue.close();
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &JobQueue, cache: Option<&ResultCache>, auto_sweep_threads: usize) {
    while let Some(job) = queue.take() {
        if job.cancel.load(Ordering::Relaxed) {
            queue.mark_done(&job);
            job.reply.send(Response::Error {
                job: Some(job.id),
                message: "cancelled before start".to_owned(),
            });
            continue;
        }
        queue.mark_running(job.id, Arc::clone(&job.cancel));
        // A panicking specification must fail its job, never take the
        // worker (and with it the whole service) down.
        let response = catch_unwind(AssertUnwindSafe(|| {
            run_job(&job, cache, auto_sweep_threads)
        }))
        .unwrap_or_else(|panic| {
            queue.note_panic();
            Response::Error {
                job: Some(job.id),
                message: format!("job panicked: {}", panic_message(&panic)),
            }
        });
        // Counters first: by the time a client holds this job's result,
        // `status` already reports it as completed (and the client's
        // quota slot is free for the follow-up submission).
        queue.mark_done(&job);
        job.reply.send(response);
    }
}

fn run_job(job: &Job, cache: Option<&ResultCache>, auto_sweep_threads: usize) -> Response {
    match &job.kind {
        JobKind::Synth { stream_events } => {
            let stream_events = *stream_events;
            let mut observer = JobObserver {
                job_id: job.id,
                stream: stream_events,
                cancel: &job.cancel,
                reply: &job.reply,
            };
            let mut options = job.options.clone();
            if options.sweep.threads == 0 {
                options.sweep.threads = auto_sweep_threads;
            }
            match run_cached_with(&job.spec, &options, cache, &mut observer) {
                Ok(run) => Response::Result {
                    job: job.id,
                    cache: run.outcome.name().to_owned(),
                    summary: run.summary.to_json(),
                },
                Err(e) => Response::Error {
                    job: Some(job.id),
                    message: e.to_string(),
                },
            }
        }
        JobKind::Check => {
            let key = cache.map(|_| cache_key(&job.spec, &job.options, CacheStage::Check));
            if let (Some(cache), Some(key)) = (cache, key) {
                if let Some(report) = cache.load(&key) {
                    return Response::CheckResult {
                        job: job.id,
                        cache: "hit".to_owned(),
                        report,
                    };
                }
            }
            let report = match job.options.backend.build(&job.spec) {
                Ok(space) => stg::properties::report_from_sg(&job.spec, &*space),
                Err(e) => stg::properties::failure_report(e),
            };
            let payload = asyncsynth::summary::report_to_json(&report);
            if let (Some(cache), Some(key)) = (cache, key) {
                let _ = cache.store(&key, &payload);
            }
            Response::CheckResult {
                job: job.id,
                cache: if cache.is_some() {
                    "miss".to_owned()
                } else {
                    "disabled".to_owned()
                },
                report: payload,
            }
        }
        JobKind::Batch { rest } => run_batch_job(job, rest, cache),
    }
}

/// One batch job: per-spec probe of the result cache, then the misses
/// run through work-stealing worker threads (mirroring
/// [`asyncsynth::run_batch`]: one CSC-sweep thread per member, batch
/// parallelism comes from the member spread), storing each fresh result
/// back so later `synth` submissions of the same specs hit.
///
/// The job's cancellation flag is polled as each member *starts*: a
/// `cancel` against a running batch stops at the next spec boundary,
/// and the members that never ran are reported honestly as `cancelled`
/// entries (`"cancelled": true`, counted separately from failures in
/// the `batch_result` totals) rather than silently missing or
/// masquerading as errors. Per-spec failures become `error` entries;
/// the batch itself always yields a `batch_result`.
fn run_batch_job(job: &Job, rest: &[Stg], cache: Option<&ResultCache>) -> Response {
    let specs: Vec<&Stg> = std::iter::once(&job.spec).chain(rest.iter()).collect();
    let options = &job.options;
    let mut entries: Vec<Option<Json>> = vec![None; specs.len()];
    let mut misses: Vec<usize> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let cached = cache.and_then(|c| c.load(&cache_key(spec, options, CacheStage::Full)));
        match cached {
            Some(summary) => entries[i] = Some(batch_entry(spec.name(), "hit", Ok(summary))),
            None => misses.push(i),
        }
    }
    let miss_specs: Vec<Stg> = misses.iter().map(|&i| specs[i].clone()).collect();
    // Each member's CSC sweep is pinned to one thread (as in
    // `run_batch`), so the auto sweep-thread split does not apply here.
    let mut member_options = options.clone();
    member_options.sweep.threads = 1;
    let cancel = &job.cancel;
    let outcomes = synth::par::par_map(&miss_specs, 0, |_, spec| {
        if cancel.load(Ordering::Relaxed) {
            return None;
        }
        Some(asyncsynth::Synthesis::with_options(spec.clone(), member_options.clone()).run())
    });
    let miss_label = if cache.is_some() { "miss" } else { "disabled" };
    for (&i, outcome) in misses.iter().zip(outcomes) {
        entries[i] = Some(match outcome {
            None => cancelled_batch_entry(specs[i].name()),
            Some(Ok(verified)) => {
                let summary = SynthesisSummary::from_verified(&verified, options).to_json();
                if let Some(cache) = cache {
                    let _ = cache.store(&cache_key(specs[i], options, CacheStage::Full), &summary);
                }
                batch_entry(specs[i].name(), miss_label, Ok(summary))
            }
            Some(Err(e)) => batch_entry(specs[i].name(), miss_label, Err(e.to_string())),
        });
    }
    Response::BatchResult {
        job: job.id,
        results: entries.into_iter().flatten().collect(),
    }
}

fn batch_entry(model: &str, cache: &str, outcome: Result<Json, String>) -> Json {
    let mut pairs = vec![("model", Json::str(model)), ("cache", Json::str(cache))];
    match outcome {
        Ok(summary) => pairs.push(("summary", summary)),
        Err(message) => pairs.push(("error", Json::str(&message))),
    }
    Json::obj(pairs)
}

/// The `batch_result` entry of a member skipped by cancellation.
fn cancelled_batch_entry(model: &str) -> Json {
    Json::obj(vec![
        ("model", Json::str(model)),
        ("cache", Json::str("skipped")),
        ("cancelled", Json::Bool(true)),
        (
            "error",
            Json::str("cancelled before this batch member started"),
        ),
    ])
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_owned()
    }
}
