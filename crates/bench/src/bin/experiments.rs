//! Regenerates every figure and inline table of the DAC'98 tutorial
//! (see `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! the recorded paper-vs-measured comparison).
//!
//! Run with `cargo run --release -p bench --bin experiments`.

use std::time::Instant;

use asyncsynth::{CscStrategy, Synthesis};
use petri::invariant::{dense_encoding, place_invariants, sm_components};
use petri::reach::ReachabilityGraph;
use petri::reduce::reduce_linear;
use petri::symbolic::{compare_exact_vs_approximation, symbolic_reachability};
use petri::unfold::Unfolding;
use petri::{classify, generators};
use stg::examples::{vme_read, vme_read_csc, vme_read_write};
use stg::StateGraph;
use synth::complex_gate::synthesize_complex_gates;
use synth::decompose::{decompose, resubstitute};
use synth::latch_arch::{synthesize_latch_circuit, LatchStyle};
use synth::NetId;
use timing::{
    apply_assumptions, cycle_time, max_separation, retime_trigger, SeparationQuery,
    TimedMarkedGraph, TimingAssumption,
};
use verify::verify_circuit;

fn heading(tag: &str, title: &str) {
    println!("\n================================================================");
    println!("{tag}: {title}");
    println!("================================================================");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    f2_waveforms()?;
    f3_read_stg()?;
    f4_state_graph()?;
    f5_read_write()?;
    f6_reduction_invariants()?;
    f7_csc_resolution()?;
    e1_equations()?;
    f8_latch_implementations()?;
    f9_decomposition()?;
    f10_back_annotation()?;
    f11_timing_optimisation()?;
    t_props()?;
    a1_explicit_vs_symbolic()?;
    a2_unfolding_vs_rg()?;
    a3_invariant_approximation()?;
    a4_minimisation()?;
    p1_performance()?;
    println!("\nall experiments completed");
    Ok(())
}

fn f2_waveforms() -> Result<(), Box<dyn std::error::Error>> {
    heading("F2", "Fig. 2 — waveforms of the READ cycle");
    let spec = vme_read();
    let sg = StateGraph::build(&spec)?;
    let cycle = stg::waveform::canonical_cycle(&sg, 100);
    println!(
        "trace: {}",
        stg::waveform::render_trace_header(&spec, &cycle)
    );
    print!("{}", stg::waveform::render_waveforms(&spec, &sg, &cycle));
    Ok(())
}

fn f3_read_stg() -> Result<(), Box<dyn std::error::Error>> {
    heading("F3", "Fig. 3 — STG for the READ cycle");
    let spec = vme_read();
    let c = classify::classify(spec.net());
    println!(
        "transitions: {}   places: {}   marked graph: {}   free choice: {}",
        spec.net().num_transitions(),
        spec.net().num_places(),
        c.marked_graph,
        c.free_choice
    );
    let rg = ReachabilityGraph::build(spec.net())?;
    println!(
        "safe: yes   live+cyclic: {}   deadlocks: {}",
        rg.is_live_and_cyclic(spec.net()),
        rg.deadlocks().len()
    );
    print!("{}", stg::parse::write_g(&spec));
    Ok(())
}

fn f4_state_graph() -> Result<(), Box<dyn std::error::Error>> {
    heading("F4", "Fig. 4 — RG/SG for the READ cycle (paper: 14 states)");
    let spec = vme_read();
    let sg = StateGraph::build(&spec)?;
    println!("states: {}  <DSr,DTACK,LDTACK,LDS,D>", sg.num_states());
    for i in 0..sg.num_states() {
        println!(
            "  s{i:<3} {:<12} {}",
            sg.code_string(&spec, i),
            sg.state(i).marking
        );
    }
    let conflicts = stg::encoding::csc_conflicts(&spec, &sg);
    for c in &conflicts {
        let code: String = c.code.iter().map(|&b| if b { '1' } else { '0' }).collect();
        println!(
            "CSC conflict (the paper's underlined pair): s{} / s{} share code {code}",
            c.states.0, c.states.1
        );
    }
    Ok(())
}

fn f5_read_write() -> Result<(), Box<dyn std::error::Error>> {
    heading("F5", "Fig. 5 — STG for READ and WRITE cycles (choice)");
    let spec = vme_read_write();
    let sg = StateGraph::build(&spec)?;
    let choices = classify::choice_places(spec.net());
    let merges = classify::merge_places(spec.net());
    println!(
        "states: {}   choice places: {}   merge places: {}",
        sg.num_states(),
        choices.len(),
        merges.len()
    );
    let input_choices = stg::persistency::persistency_violations(&spec, &sg)
        .iter()
        .filter(|v| v.kind == stg::persistency::ViolationKind::InputChoice)
        .count();
    println!("input-choice (DSr+/DSw+ arbitration) disablings: {input_choices}");
    println!(
        "output-persistent: {}",
        stg::persistency::is_persistent(&spec, &sg)
    );
    Ok(())
}

fn f6_reduction_invariants() -> Result<(), Box<dyn std::error::Error>> {
    heading(
        "F6",
        "Fig. 6 — linear reduction, SM components, invariants, dense encoding",
    );
    let spec = vme_read_write();
    let (reduced, stats) = reduce_linear(spec.net().clone());
    println!(
        "reduced net: {} places, {} transitions ({} rule applications)",
        reduced.num_places(),
        reduced.num_transitions(),
        stats.total()
    );
    print!("{}", reduced.describe());
    println!("place invariants (the paper's I1, I2):");
    for inv in place_invariants(&reduced) {
        println!("  {}", inv.display(&reduced));
    }
    let comps = sm_components(&reduced);
    println!("state-machine components: {}", comps.len());
    for (i, c) in comps.iter().enumerate() {
        let ts: Vec<&str> = c
            .transitions
            .iter()
            .map(|&t| reduced.transition_name(t))
            .collect();
        println!("  SM{i}: transitions {{{}}}", ts.join(", "));
    }
    let enc = dense_encoding(&reduced);
    println!(
        "dense encoding: {} boolean variables for {} places (paper: 4 variables)",
        enc.num_vars,
        reduced.num_places()
    );
    let (exact, approx, contained) = compare_exact_vs_approximation(&reduced);
    println!(
        "reachable: {exact}   invariant conjunction: {approx}   exact: {}   contained: {contained}",
        exact == approx
    );
    // The paper also reduces the READ-cycle MG to a single self-loop.
    let (read_reduced, _) = reduce_linear(vme_read().net().clone());
    println!(
        "READ cycle reduces to {} transition(s) (paper: a single self-loop transition)",
        read_reduced.num_transitions()
    );
    Ok(())
}

fn f7_csc_resolution() -> Result<(), Box<dyn std::error::Error>> {
    heading(
        "F7",
        "Fig. 7 — SG with complete state coding (paper: csc0, 16 states)",
    );
    let spec = vme_read();
    let result = Synthesis::new(spec).run()?;
    match &result.transformation {
        Some(t) => println!("automatic resolution: {t}"),
        None => println!("automatic resolution: none"),
    }
    println!("states: {} (paper: 16)", result.num_states());
    println!(
        "CSC holds: {}",
        stg::encoding::has_csc(&result.spec, result.state_space())
    );
    // The manual Fig. 7 STG for comparison.
    let manual = vme_read_csc();
    let msg = StateGraph::build(&manual)?;
    println!(
        "manual Fig. 7 STG: {} states, CSC: {}",
        msg.num_states(),
        stg::encoding::has_csc(&manual, &msg)
    );
    Ok(())
}

fn e1_equations() -> Result<(), Box<dyn std::error::Error>> {
    heading("E1", "§3.2 — next-state functions and equations");
    let spec = vme_read_csc();
    let sg = StateGraph::build(&spec)?;
    let circuit = synthesize_complex_gates(&spec, &sg)?;
    println!("{}", circuit.display_equations(&spec));
    println!("(paper: D = LDTACK csc0; LDS = D + csc0; DTACK = D; csc0 = DSr (csc0 + LDTACK'))");
    // §3.2's f_LDS table rows.
    let lds = spec.signal_by_name("LDS").unwrap();
    let f = synth::derive_function(&spec, &sg, lds)?;
    println!("\nf_LDS samples (code <DSr,DTACK,LDTACK,LDS,D,csc0> -> value):");
    for (code, expect) in [
        ("100001", "1 (ER(LDS+))"),
        ("101111", "1 (QR(LDS+))"),
        ("101100", "0 (ER(LDS-))"),
        ("000000", "0 (QR(LDS-))"),
    ] {
        let bits: Vec<bool> = code.chars().map(|c| c == '1').collect();
        println!("  {code} -> {:?}   (paper: {expect})", f.value(&bits));
    }
    Ok(())
}

fn f8_latch_implementations() -> Result<(), Box<dyn std::error::Error>> {
    heading("F8", "Fig. 8 — C-element and RS-latch implementations");
    let spec = vme_read_csc();
    let sg = StateGraph::build(&spec)?;
    for (style, name) in [
        (LatchStyle::CElement, "Fig. 8a (C-element)"),
        (LatchStyle::RsLatch, "Fig. 8b (RS latch)"),
    ] {
        let circ = synthesize_latch_circuit(&spec, &sg, style)?;
        println!("--- {name} ---");
        print!("{}", circ.netlist().describe());
        let violations = synth::latch_arch::monotonic_violations(&spec, &sg, &circ.covers);
        let (atomic, nets) = circ.atomic_netlist(&spec);
        let v = verify_circuit(&spec, &sg, &atomic, &nets);
        println!(
            "monotonous covers: {}   speed-independent: {}",
            violations.is_empty(),
            v.is_speed_independent()
        );
    }
    Ok(())
}

fn f9_decomposition() -> Result<(), Box<dyn std::error::Error>> {
    heading(
        "F9",
        "Fig. 9 — two-input decomposition: (a) accepted, (b) rejected",
    );
    let spec = vme_read_csc();
    let sg = StateGraph::build(&spec)?;
    let circuit = synthesize_complex_gates(&spec, &sg)?;
    let naive = decompose(&spec, &circuit, 2);
    let nets: Vec<NetId> = spec.signals().map(|s| naive.signal_net(s)).collect();
    let naive_report = verify_circuit(&spec, &sg, naive.netlist(), &nets);
    println!("--- naive decomposition (the paper's hazardous Fig. 9b shape) ---");
    print!("{}", naive.netlist().describe());
    println!("verdict: {}", naive_report.summary());
    for h in naive_report.hazards.iter().take(3) {
        println!(
            "  hazard witness: {} de-excited by {}",
            h.gate_output, h.caused_by
        );
    }
    let resub = resubstitute(&spec, &sg, &naive);
    let rnets: Vec<NetId> = spec.signals().map(|s| resub.signal_net(s)).collect();
    let resub_report = verify_circuit(&spec, &sg, resub.netlist(), &rnets);
    println!("--- after resubstitution (the paper's Fig. 9a, multiple acknowledgment) ---");
    print!("{}", resub.netlist().describe());
    println!("verdict: {}", resub_report.summary());
    let lib = synth::library::Library::two_input();
    match synth::library::map_to_library(resub.netlist(), &lib) {
        Ok(m) => println!(
            "two-input library mapping: {} cells, area {}",
            m.num_cells(),
            m.area()
        ),
        Err(e) => println!("mapping failed: {e:?}"),
    }
    Ok(())
}

fn f10_back_annotation() -> Result<(), Box<dyn std::error::Error>> {
    heading("F10", "Fig. 10 — back-annotated STG via theory of regions");
    let spec = vme_read_csc();
    let sg = StateGraph::build(&spec)?;
    let ts = sg.ts().map_labels(|&t| spec.label_string(t));
    let t0 = Instant::now();
    let extracted = regions::synthesize_net(&ts)?;
    println!(
        "extracted net: {} places, {} transitions in {:?}",
        extracted.net.num_places(),
        extracted.net.num_transitions(),
        t0.elapsed()
    );
    println!("trace-equivalent to the SG: {}", extracted.trace_equivalent);
    print!("{}", extracted.net.describe());
    Ok(())
}

fn f11_timing_optimisation() -> Result<(), Box<dyn std::error::Error>> {
    heading("F11", "Fig. 11 — circuits after timing optimisation");
    let spec = vme_read();
    // (a) sep(LDTACK-, DSr+) < 0.
    let timed = apply_assumptions(&spec, &[TimingAssumption::new("LDTACK-", "DSr+")])?;
    let sg_a = StateGraph::build(&timed)?;
    println!("--- (a) sep(LDTACK-, DSr+) < 0 ---");
    println!(
        "states: {} (untimed: 14)   CSC without state signal: {}",
        sg_a.num_states(),
        stg::encoding::has_csc(&timed, &sg_a)
    );
    let r = Synthesis::new(timed.clone()).csc(CscStrategy::Fail).run()?;
    println!("{}", r.equations_text);
    // (b) lazy LDS- under sep(D-, LDS-) < 0.
    let lazy = retime_trigger(&spec, "LDS-", "D-", "DSr-")?;
    let sg_b = StateGraph::build(&lazy)?;
    println!("--- (b) lazy LDS- (enabled from DSr-, sep(D-, LDS-) < 0) ---");
    println!("states: {}", sg_b.num_states());
    // (c) both.
    let both = apply_assumptions(&lazy, &[TimingAssumption::new("LDTACK-", "DSr+")])?;
    let sg_c = StateGraph::build(&both)?;
    println!("--- (c) both assumptions ---");
    println!(
        "states: {}   CSC: {}",
        sg_c.num_states(),
        stg::encoding::has_csc(&both, &sg_c)
    );
    if let Ok(r) = Synthesis::new(both.clone()).csc(CscStrategy::Fail).run() {
        println!("{}", r.equations_text);
    }
    Ok(())
}

fn t_props() -> Result<(), Box<dyn std::error::Error>> {
    heading("T-props", "§2.1 — implementability property suite");
    for (name, spec) in [
        ("vme-read", vme_read()),
        ("vme-read-csc", vme_read_csc()),
        ("vme-read-write", vme_read_write()),
        ("toggle", stg::examples::toggle()),
        ("micropipeline-2", stg::examples::micropipeline(2)),
    ] {
        println!("--- {name} ---");
        println!("{}", stg::properties::check_implementability(&spec));
    }
    Ok(())
}

fn a1_explicit_vs_symbolic() -> Result<(), Box<dyn std::error::Error>> {
    heading(
        "A1",
        "§2.2 ablation — explicit vs BDD reachability (FIFO rings)",
    );
    println!("-- FIFO rings (modest concurrency) --");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "n", "states", "explicit", "symbolic", "bdd nodes"
    );
    for n in [6usize, 8, 10, 12, 14] {
        let net = generators::pipeline_with_tokens(n, n / 2);
        let t0 = Instant::now();
        let rg = ReachabilityGraph::build(&net)?;
        let te = t0.elapsed();
        let t1 = Instant::now();
        let sym = symbolic_reachability(&net);
        let ts = t1.elapsed();
        assert_eq!(sym.num_markings, rg.num_states() as u128);
        println!(
            "{:<8} {:>10} {:>12?} {:>12?} {:>10}",
            n,
            rg.num_states(),
            te,
            ts,
            sym.manager.node_count()
        );
    }
    println!("-- independent handshakes (exponential concurrency: 2^m states) --");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "m", "states", "explicit", "symbolic", "bdd nodes"
    );
    for m in [8usize, 12, 16] {
        let net = generators::parallel_handshakes(m);
        let t0 = Instant::now();
        let rg = ReachabilityGraph::build_bounded(&net, 1, 1 << 22)?;
        let te = t0.elapsed();
        let t1 = Instant::now();
        let sym = symbolic_reachability(&net);
        let ts = t1.elapsed();
        assert_eq!(sym.num_markings, rg.num_states() as u128);
        println!(
            "{:<8} {:>10} {:>12?} {:>12?} {:>10}",
            m,
            rg.num_states(),
            te,
            ts,
            sym.manager.node_count()
        );
    }
    println!("(the BDD stays linear in m while the explicit graph doubles per cell —");
    println!(" the paper's \"implicit representation ... much more compact\" claim)");
    Ok(())
}

fn a2_unfolding_vs_rg() -> Result<(), Box<dyn std::error::Error>> {
    heading(
        "A2",
        "§2.2 ablation — unfolding prefix vs reachability graph",
    );
    println!(
        "{:<6} {:>10} {:>10} {:>10}",
        "m", "RG states", "events", "conditions"
    );
    for m in [2usize, 4, 6, 8] {
        let net = generators::parallel_handshakes(m);
        let rg = ReachabilityGraph::build(&net)?;
        let u = Unfolding::build(&net, 100_000).map_err(|e| e.to_string())?;
        println!(
            "{:<6} {:>10} {:>10} {:>10}",
            m,
            rg.num_states(),
            u.num_events(),
            u.num_conditions()
        );
    }
    println!("(RG grows as 2^m; the prefix stays linear — the paper's compactness claim)");
    Ok(())
}

fn a3_invariant_approximation() -> Result<(), Box<dyn std::error::Error>> {
    heading(
        "A3",
        "§2.2 ablation — invariant conjunction as an upper approximation",
    );
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "net", "exact", "approx", "contained"
    );
    for (name, net) in [
        ("pipeline(6)", generators::pipeline(6)),
        ("handshakes(4)", generators::parallel_handshakes(4)),
        ("choice_ring(3)", generators::choice_ring(3)),
        ("fifo(6,3)", generators::pipeline_with_tokens(6, 3)),
    ] {
        let (exact, approx, contained) = compare_exact_vs_approximation(&net);
        println!("{name:<24} {exact:>10} {approx:>10} {contained:>10}");
    }
    Ok(())
}

fn a4_minimisation() -> Result<(), Box<dyn std::error::Error>> {
    heading(
        "A4",
        "§3.2 ablation — exact vs heuristic two-level minimisation",
    );
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10}",
        "function", "exact", "heur", "t_exact", "t_heur"
    );
    for (vars, cubes, seed) in [(6usize, 6usize, 1u64), (8, 8, 2), (8, 12, 3), (10, 10, 4)] {
        let f = bench::random_function(vars, cubes, seed);
        let t0 = Instant::now();
        let exact = boolmin::minimize_exact(&f);
        let te = t0.elapsed();
        let t1 = Instant::now();
        let heur = boolmin::minimize_heuristic(&f);
        let th = t1.elapsed();
        println!(
            "{:<10} {:>8} {:>8} {:>10?} {:>10?}",
            format!("{vars}v/{cubes}c"),
            exact.cubes().len(),
            heur.cubes().len(),
            te,
            th
        );
    }
    Ok(())
}

fn p1_performance() -> Result<(), Box<dyn std::error::Error>> {
    heading(
        "P1",
        "§5 — cycle time and separation bounds of the timed READ cycle",
    );
    let spec = vme_read();
    let net = spec.net().clone();
    let mut delays = vec![(1.0, 2.0); net.num_transitions()];
    let dsr_p = net.transition_by_name("DSr+").unwrap();
    delays[dsr_p.index()] = (20.0, 30.0);
    let tmg = TimedMarkedGraph::new(net, delays);
    println!(
        "cycle time (max delays, slow bus master): {:.1}",
        cycle_time(&tmg)
    );
    let ldtack_m = tmg.net().transition_by_name("LDTACK-").unwrap();
    let dsr_p = tmg.net().transition_by_name("DSr+").unwrap();
    let sep = max_separation(
        &tmg,
        SeparationQuery {
            from: ldtack_m,
            to: dsr_p,
            offset: 1,
        },
        16,
    );
    println!("sep(LDTACK-, next DSr+) = {sep:.1}  (< 0 discharges the Fig. 11a assumption)");
    let d_m = tmg.net().transition_by_name("D-").unwrap();
    let lds_m = tmg.net().transition_by_name("LDS-").unwrap();
    let sep_b = max_separation(
        &tmg,
        SeparationQuery {
            from: d_m,
            to: lds_m,
            offset: 0,
        },
        16,
    );
    println!("sep(D-, LDS-) = {sep_b:.1}  (Fig. 11b requires < 0 after retiming)");
    // Simulation-based throughput of the synthesised circuit.
    let result = Synthesis::new(spec.clone()).run()?;
    let nets = result.circuit.signal_nets(&result.spec);
    let mut simulator = sim::Simulator::new(
        &result.spec,
        result.state_space(),
        result.circuit.netlist().clone(),
        nets,
        sim::SimConfig::default(),
    );
    let stats = simulator.run(20_000.0);
    println!(
        "simulated circuit: {} cycles, avg cycle time {:.2}, glitches {}",
        stats.cycles,
        stats.avg_cycle_time.unwrap_or(f64::NAN),
        stats.glitches
    );
    Ok(())
}
