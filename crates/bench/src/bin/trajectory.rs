//! `trajectory` — merge archived `BENCH_corpus.json` artifacts into a
//! per-family trend table.
//!
//! CI uploads one `BENCH_corpus.json` per run; this tool lines up any
//! number of them (oldest first, in argument order) and prints how one
//! metric moved per corpus family:
//!
//! ```text
//! trajectory run1/BENCH_corpus.json run2/BENCH_corpus.json [--metric cold_ms] [--json]
//! ```
//!
//! `--metric` accepts the per-family timing/count fields (`cold_ms`,
//! `warm_ms`, `specs`, `synthesized`, `states`, `states_explored`,
//! `warm_hits`) or, for `corpus-bench-v2` artifacts, any deterministic
//! counter name from the family's `counters` object (`primes`,
//! `sweep_evaluated`, `verify_runs`, …). Families absent from an
//! artifact (or metrics predating the v2 schema) show as `-`.

use std::collections::BTreeMap;
use std::process::ExitCode;

use asyncsynth::Json;

/// Per-family timing/count fields present in every schema version.
const FAMILY_FIELDS: [&str; 7] = [
    "specs",
    "synthesized",
    "states",
    "states_explored",
    "cold_ms",
    "warm_ms",
    "warm_hits",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut metric = "cold_ms".to_owned();
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metric" => {
                i += 1;
                match args.get(i) {
                    Some(name) => metric = name.clone(),
                    None => {
                        eprintln!("trajectory: --metric needs a value");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => json = true,
            other => paths.push(other.to_owned()),
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!(
            "usage: trajectory <BENCH_corpus.json>... [--metric NAME] [--json]\n\
             fields: {} or any v2 counter name",
            FAMILY_FIELDS.join(", ")
        );
        return ExitCode::FAILURE;
    }

    // family → per-artifact value (None where absent).
    let mut table: BTreeMap<String, Vec<Option<u64>>> = BTreeMap::new();
    for (idx, path) in paths.iter().enumerate() {
        let artifact = match load_artifact(path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("trajectory: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (family, value) in family_metric(&artifact, &metric) {
            let row = table
                .entry(family)
                .or_insert_with(|| vec![None; paths.len()]);
            row[idx] = value;
        }
    }
    if table.is_empty() {
        eprintln!("trajectory: no families found in the given artifacts");
        return ExitCode::FAILURE;
    }

    if json {
        let families: Vec<Json> = table
            .iter()
            .map(|(family, values)| {
                Json::obj(vec![
                    ("family", Json::str(family)),
                    (
                        "values",
                        Json::Arr(
                            values
                                .iter()
                                .map(|v| {
                                    v.map_or(Json::Null, |n| {
                                        Json::num(usize::try_from(n).unwrap_or(usize::MAX))
                                    })
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let out = Json::obj(vec![
            ("schema", Json::str("corpus-trajectory-v1")),
            ("metric", Json::str(&metric)),
            (
                "artifacts",
                Json::Arr(paths.iter().map(Json::str).collect()),
            ),
            ("families", Json::Arr(families)),
        ]);
        println!("{}", out.render());
    } else {
        print_table(&metric, &paths, &table);
    }
    ExitCode::SUCCESS
}

fn load_artifact(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v = Json::parse(&text).map_err(|e| format!("malformed JSON: {e}"))?;
    match v.get("schema").and_then(Json::as_str) {
        Some(s) if s.starts_with("corpus-bench-") => Ok(v),
        Some(other) => Err(format!("not a corpus bench artifact (schema {other:?})")),
        None => Err("not a corpus bench artifact (no schema field)".to_owned()),
    }
}

/// Extracts `metric` for every family of one artifact: a per-family
/// field when `metric` names one, otherwise a `counters` entry (absent
/// in pre-v2 artifacts → `None`).
fn family_metric(artifact: &Json, metric: &str) -> Vec<(String, Option<u64>)> {
    let Some(families) = artifact.get("families").and_then(Json::as_arr) else {
        return Vec::new();
    };
    families
        .iter()
        .filter_map(|f| {
            let name = f.get("family").and_then(Json::as_str)?.to_owned();
            let value = if FAMILY_FIELDS.contains(&metric) {
                f.get(metric).and_then(Json::as_u64)
            } else {
                f.get("counters")
                    .and_then(|c| c.get(metric))
                    .and_then(Json::as_u64)
            };
            Some((name, value))
        })
        .collect()
}

fn print_table(metric: &str, paths: &[String], table: &BTreeMap<String, Vec<Option<u64>>>) {
    // Column labels: the artifact's file stem is rarely unique across
    // archived runs, so label by position and list the paths up front.
    println!("metric: {metric}");
    for (i, path) in paths.iter().enumerate() {
        println!("  [{i}] {path}");
    }
    let label = |v: &Option<u64>| v.map_or_else(|| "-".to_owned(), |n| n.to_string());
    let width = table.keys().map(String::len).max().unwrap_or(6).max(6);
    let cols: Vec<String> = (0..paths.len()).map(|i| format!("[{i}]")).collect();
    println!("{:<width$}  {}  delta", "family", cols.join("  "));
    for (family, values) in table {
        let cells: Vec<String> = values
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{:>w$}", label(v), w = cols[i].len().max(label(v).len())))
            .collect();
        let delta = match (
            values.first().copied().flatten(),
            values.last().copied().flatten(),
        ) {
            (Some(first), Some(last)) if values.len() > 1 => {
                let diff = i128::from(last) - i128::from(first);
                format!("{diff:+}")
            }
            _ => "-".to_owned(),
        };
        println!("{family:<width$}  {}  {delta}", cells.join("  "));
    }
}
