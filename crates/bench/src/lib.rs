//! Shared helpers for the benchmark harness and the experiment
//! reproduction binary (see `src/bin/experiments.rs` and `benches/`).

use boolmin::{Cover, Cube, IncompleteFunction};

/// A deterministic pseudo-random incompletely specified function over
/// `num_vars` variables, for the minimisation ablation (A4).
#[must_use]
pub fn random_function(num_vars: usize, on_cubes: usize, seed: u64) -> IncompleteFunction {
    let mut state = seed.wrapping_mul(0x9e37_79b9_97f4_a7c1).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) as usize
    };
    let mut cubes = Vec::with_capacity(on_cubes);
    for _ in 0..on_cubes {
        let mut lits = Vec::with_capacity(num_vars);
        for _ in 0..num_vars {
            lits.push(match next() % 3 {
                0 => boolmin::Literal::Zero,
                1 => boolmin::Literal::One,
                _ => boolmin::Literal::DontCare,
            });
        }
        cubes.push(Cube::from_literals(lits));
    }
    let on = Cover::from_cubes(num_vars, cubes);
    // A sparse dc-set disjoint from the on-set.
    let mut dc_cubes = Vec::new();
    for _ in 0..on_cubes / 2 {
        let mut lits = Vec::with_capacity(num_vars);
        for _ in 0..num_vars {
            lits.push(match next() % 3 {
                0 => boolmin::Literal::Zero,
                1 => boolmin::Literal::One,
                _ => boolmin::Literal::DontCare,
            });
        }
        dc_cubes.push(Cube::from_literals(lits));
    }
    let dc = Cover::from_cubes(num_vars, dc_cubes).subtract(&on);
    IncompleteFunction::new(on, dc)
}
