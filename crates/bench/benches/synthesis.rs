//! End-to-end synthesis benchmarks: the staged pipeline of §3 per
//! architecture and per state-space backend on the paper's controllers.

use asyncsynth::{Architecture, Backend, Synthesis};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stg::StateGraph;

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    let read = stg::examples::vme_read();
    for (name, arch) in [
        ("complex", Architecture::ComplexGate),
        ("celement", Architecture::CElement),
        ("rs", Architecture::RsLatch),
        ("decomposed", Architecture::Decomposed),
    ] {
        group.bench_with_input(BenchmarkId::new("vme-read", name), &arch, |b, &arch| {
            b.iter(|| {
                Synthesis::new(read.clone())
                    .architecture(arch)
                    .run()
                    .unwrap()
                    .verification
                    .passed()
            });
        });
    }
    // Backend comparison on the full pipeline.
    for (name, backend) in [
        ("explicit", Backend::Explicit),
        ("symbolic", Backend::Symbolic),
    ] {
        group.bench_with_input(
            BenchmarkId::new("backend", name),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    Synthesis::new(read.clone())
                        .backend(backend)
                        .run()
                        .unwrap()
                        .num_states()
                });
            },
        );
    }
    // State-graph generation scaling on micropipelines.
    for n in [1usize, 2, 3] {
        let spec = stg::examples::micropipeline(n);
        group.bench_with_input(BenchmarkId::new("state-graph", n), &spec, |b, spec| {
            b.iter(|| StateGraph::build(spec).unwrap().num_states());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
