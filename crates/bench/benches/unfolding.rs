//! A2: unfolding prefix vs reachability graph on concurrent handshakes —
//! §2.2's "often more compact than the reachability graph".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use petri::generators;
use petri::reach::ReachabilityGraph;
use petri::unfold::Unfolding;

fn bench_unfolding(c: &mut Criterion) {
    let mut group = c.benchmark_group("unfolding");
    group.sample_size(10);
    for m in [2usize, 4, 6] {
        let net = generators::parallel_handshakes(m);
        group.bench_with_input(BenchmarkId::new("reachability", m), &net, |b, net| {
            b.iter(|| ReachabilityGraph::build(net).unwrap().num_states());
        });
        group.bench_with_input(BenchmarkId::new("prefix", m), &net, |b, net| {
            b.iter(|| Unfolding::build(net, 100_000).unwrap().num_events());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unfolding);
criterion_main!(benches);
