//! Resident-BDD backend at combinatorial state counts: building
//! `token_ring(half, k)` spaces of `C(2·half, k)` states and answering
//! set-level implementability queries without enumerating a single
//! marking.
//!
//! The contrast with `explicit-build` (run only at the smallest size —
//! beyond it, enumeration is exactly what the resident backend exists to
//! avoid) is the point of the benchmark: the resident build scales with
//! the BDD, not the state count. `queries` measures the post-build
//! set-level workload (USC/CSC verdicts, persistency, deadlock, region
//! partition) at a state count no enumerating backend could hold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stg::{StateSpace, SymbolicSetSpace};

/// `(half, k)` ring parameters with their `C(2·half, k)` state counts.
const SIZES: [(usize, usize, u128); 4] = [
    (6, 6, 924),         // C(12,6)
    (9, 9, 48_620),      // C(18,9)
    (11, 11, 705_432),   // C(22,11)
    (12, 12, 2_704_156), // C(24,12)
];

fn bench_resident_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic-set");
    group.sample_size(10);
    for &(half, k, states) in &SIZES {
        let spec = stg::examples::token_ring(half, k);
        group.bench_with_input(
            BenchmarkId::new("resident-build", states),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let space = SymbolicSetSpace::build_bounded(spec, 5_000_000).expect("builds");
                    assert_eq!(space.num_markings(), states);
                    space.stats().bdd_nodes
                });
            },
        );
    }
    // The explicit baseline, only where enumeration is still feasible.
    let (half, k, states) = SIZES[0];
    let spec = stg::examples::token_ring(half, k);
    group.bench_with_input(
        BenchmarkId::new("explicit-build", states),
        &spec,
        |b, spec| {
            b.iter(|| stg::StateGraph::build(spec).expect("builds").num_states());
        },
    );
    group.finish();
}

fn bench_resident_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic-set");
    group.sample_size(10);
    let (half, k, states) = SIZES[3];
    let spec = stg::examples::token_ring(half, k);
    let space = SymbolicSetSpace::build_bounded(&spec, 5_000_000).expect("builds");
    assert_eq!(space.num_markings(), states);
    group.bench_function(BenchmarkId::new("queries", states), |b| {
        b.iter(|| {
            let usc = stg::encoding::has_usc(&spec, &space);
            let csc = stg::encoding::has_csc(&spec, &space);
            let persistent = stg::persistency::is_persistent(&spec, &space);
            let deadlock = space.has_deadlock();
            let signal = spec.signals().next().expect("ring has signals");
            let regions = synth::regions::signal_region_sets(&spec, &space, signal);
            let er = space.set_count(&regions.er_plus);
            (usc, csc, persistent, deadlock, er)
        });
    });
    assert_eq!(space.decoded_states(), 0, "queries never decode states");
    assert!(!space.is_materialised());
    group.finish();
}

criterion_group!(benches, bench_resident_build, bench_resident_queries);
criterion_main!(benches);
