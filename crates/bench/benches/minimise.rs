//! A4: exact vs heuristic two-level minimisation (§3.2's boolean
//! minimisation step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_minimise(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimise");
    group.sample_size(10);
    for (vars, cubes) in [(6usize, 6usize), (8, 8), (10, 10)] {
        let f = bench::random_function(vars, cubes, 42);
        let id = format!("{vars}v{cubes}c");
        group.bench_with_input(BenchmarkId::new("exact", &id), &f, |b, f| {
            b.iter(|| boolmin::minimize_exact(f).cubes().len());
        });
        group.bench_with_input(BenchmarkId::new("heuristic", &id), &f, |b, f| {
            b.iter(|| boolmin::minimize_heuristic(f).cubes().len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minimise);
criterion_main!(benches);
