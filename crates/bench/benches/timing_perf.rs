//! P1: cycle time and separation analysis throughput (§5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use petri::generators;
use timing::{cycle_time, max_separation, SeparationQuery, TimedMarkedGraph};

fn bench_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let tmg = TimedMarkedGraph::with_fixed_delay(generators::pipeline(n), 1.0);
        group.bench_with_input(BenchmarkId::new("cycle-time", n), &tmg, |b, tmg| {
            b.iter(|| cycle_time(tmg));
        });
        let t0 = tmg.net().transition_by_name("t0").unwrap();
        let t1 = tmg.net().transition_by_name("t1").unwrap();
        group.bench_with_input(BenchmarkId::new("separation", n), &tmg, |b, tmg| {
            b.iter(|| {
                max_separation(
                    tmg,
                    SeparationQuery {
                        from: t1,
                        to: t0,
                        offset: 0,
                    },
                    12,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timing);
criterion_main!(benches);
