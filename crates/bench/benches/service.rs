//! Synthesis-service throughput: cold vs. warm content-addressed cache,
//! concurrent clients against a live TCP server, and a saturation
//! scenario (many× queue capacity concurrent submitters) that reports
//! shed rate and p50/p99 accepted-job latency.
//!
//! The saturation scenario writes `BENCH_service_saturation.json` to
//! the repo root — the overload-trajectory artifact CI uploads. It is
//! skipped in `cargo test` smoke mode (the harness passes `--test`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use asyncsynth::{run_cached, Json, ResultCache, SynthesisOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use server::client::ClientOptions;
use server::protocol::{Priority, Request, Response};
use server::service::{Server, ServerConfig};

fn bench_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "asyncsynth-bench-cache-{}-{tag}",
        std::process::id()
    ))
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    let spec = stg::examples::vme_read();
    let options = SynthesisOptions::default();

    // Cold: a fresh cache directory every iteration — full flow plus
    // the cost of populating the cache.
    let cold_root = bench_root("cold");
    let iteration = AtomicU64::new(0);
    group.bench_function("cold-cache", |b| {
        b.iter(|| {
            let dir = cold_root.join(iteration.fetch_add(1, Ordering::Relaxed).to_string());
            let cache = ResultCache::open(&dir).expect("cache opens");
            let run = run_cached(&spec, &options, &cache).expect("flow succeeds");
            let _ = std::fs::remove_dir_all(&dir);
            run.summary.num_states
        });
    });
    let _ = std::fs::remove_dir_all(&cold_root);

    // Warm: one pre-populated cache — pure lookup + verify path.
    let warm_root = bench_root("warm");
    let _ = std::fs::remove_dir_all(&warm_root);
    let warm = ResultCache::open(&warm_root).expect("cache opens");
    run_cached(&spec, &options, &warm).expect("prewarm");
    group.bench_function("warm-cache", |b| {
        b.iter(|| {
            run_cached(&spec, &options, &warm)
                .expect("warm flow succeeds")
                .summary
                .num_states
        });
    });
    let _ = std::fs::remove_dir_all(&warm_root);
    group.finish();
}

fn bench_concurrent_clients(c: &mut Criterion) {
    let mut group = c.benchmark_group("service-tcp");
    group.sample_size(10);
    let cache_root = bench_root("tcp");
    let _ = std::fs::remove_dir_all(&cache_root);
    let server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            workers: 4,
            cache_dir: Some(cache_root.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let specs: Vec<String> = [
        stg::examples::vme_read,
        stg::examples::vme_read_csc,
        stg::examples::vme_read_write,
        stg::examples::toggle,
    ]
    .iter()
    .map(|build| stg::parse::write_g(&build()))
    .collect();

    // First sample is cold, the rest are warm — the interesting number
    // is the steady-state round-trip with four concurrent clients.
    group.bench_function("four-concurrent-clients", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for spec in &specs {
                    let addr = &addr;
                    scope.spawn(move || {
                        server::client::submit_synth(
                            addr,
                            spec,
                            &SynthesisOptions::default(),
                            false,
                            |_| {},
                        )
                        .expect("concurrent submission succeeds")
                    });
                }
            });
        });
    });

    let _ = server::client::request(&addr, &Request::Shutdown, |_| {});
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(&cache_root);
    group.finish();
}

/// Saturation scenario knobs: SUBMITTERS/QUEUE_CAPACITY concurrent
/// clients per admission slot forces the daemon to shed, and the
/// shared cache is what lets the shed ones converge on retry.
const SATURATION_WORKERS: usize = 2;
const SATURATION_CAPACITY: usize = 4;
const SATURATION_SUBMITTERS: usize = 32;

/// The `p`-th percentile of an unsorted latency sample (nearest-rank).
fn percentile_ms(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// Not a criterion measurement: one overload episode, run start to
/// finish, reporting what admission control did rather than how fast
/// the happy path is. Criterion's repeated-sampling model fits poorly
/// here — the first episode warms the cache, so later samples would
/// measure a different (uncontended) regime.
fn bench_saturation(_c: &mut Criterion) {
    if std::env::args().any(|a| a == "--test") {
        return; // smoke mode: writes nothing
    }
    let cache_root = bench_root("saturation");
    let _ = std::fs::remove_dir_all(&cache_root);
    let server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            workers: SATURATION_WORKERS,
            cache_dir: Some(cache_root.clone()),
            queue_capacity: SATURATION_CAPACITY,
            max_jobs_per_client: 0,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let spec_text = stg::parse::write_g(&stg::examples::vme_read());
    let options = SynthesisOptions::default();
    let client_options = ClientOptions {
        retries: 200,
        backoff_ms: 2,
        max_backoff_ms: 100,
        ..ClientOptions::default()
    };
    let rejections = AtomicU64::new(0);
    let gave_up = AtomicU64::new(0);
    let episode = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SATURATION_SUBMITTERS)
            .map(|_| {
                let (addr, spec_text, options) = (&addr, &spec_text, &options);
                let (rejections, gave_up) = (&rejections, &gave_up);
                scope.spawn(move || {
                    let start = Instant::now();
                    let outcome = server::client::submit_synth_with(
                        addr,
                        spec_text,
                        options,
                        Priority::Normal,
                        &client_options,
                        false,
                        |response| {
                            if matches!(response, Response::Rejected { .. }) {
                                rejections.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                    );
                    if outcome.is_err() {
                        gave_up.fetch_add(1, Ordering::Relaxed);
                    }
                    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .collect()
    });
    let episode_ms = u64::try_from(episode.elapsed().as_millis()).unwrap_or(u64::MAX);
    latencies.sort_unstable();

    let (shed_total, completed) =
        match server::client::request(&addr, &Request::Status, |_| {}).expect("status") {
            Response::Status {
                shed, completed, ..
            } => (shed, completed),
            other => panic!("unexpected status reply: {other:?}"),
        };
    let _ = server::client::request(&addr, &Request::Shutdown, |_| {});
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(&cache_root);

    let rejections = rejections.load(Ordering::Relaxed);
    let gave_up = gave_up.load(Ordering::Relaxed);
    // Every rejection is one extra submission attempt on top of the
    // initial SATURATION_SUBMITTERS, so the shed rate is per attempt.
    let attempts = SATURATION_SUBMITTERS as u64 + rejections;
    let num64 = |n: u64| Json::num(usize::try_from(n).unwrap_or(usize::MAX));
    let artifact = Json::obj(vec![
        ("schema", Json::str("service-saturation-v1")),
        ("workers", Json::num(SATURATION_WORKERS)),
        ("queue_capacity", Json::num(SATURATION_CAPACITY)),
        ("submitters", Json::num(SATURATION_SUBMITTERS)),
        ("attempts", num64(attempts)),
        ("shed_total", num64(shed_total)),
        ("client_rejections", num64(rejections)),
        ("shed_per_mille", num64(shed_total * 1000 / attempts.max(1))),
        ("gave_up", num64(gave_up)),
        ("completed", num64(completed)),
        ("episode_ms", num64(episode_ms)),
        (
            "accepted_latency_ms",
            Json::obj(vec![
                ("p50", num64(percentile_ms(&latencies, 50))),
                ("p99", num64(percentile_ms(&latencies, 99))),
                ("max", num64(latencies.last().copied().unwrap_or(0))),
            ]),
        ),
    ]);
    let bench_path = repo_root().join("BENCH_service_saturation.json");
    std::fs::write(&bench_path, artifact.render() + "\n").expect("write saturation artifact");
    println!(
        "service-saturation: {SATURATION_SUBMITTERS} submitters vs capacity \
         {SATURATION_CAPACITY}: shed {shed_total}/{attempts} attempts, \
         {gave_up} gave up, latency p50 {} ms / p99 {} ms; wrote {}",
        percentile_ms(&latencies, 50),
        percentile_ms(&latencies, 99),
        bench_path.display()
    );
    assert_eq!(
        shed_total, rejections,
        "every shed must surface as a rejected response on some client"
    );
    assert_eq!(gave_up, 0, "retries must converge once the cache is warm");
}

criterion_group!(
    benches,
    bench_cache,
    bench_concurrent_clients,
    bench_saturation
);
criterion_main!(benches);
