//! Synthesis-service throughput: cold vs. warm content-addressed cache,
//! and concurrent clients against a live TCP server.

use std::sync::atomic::{AtomicU64, Ordering};

use asyncsynth::{run_cached, ResultCache, SynthesisOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use server::protocol::Request;
use server::service::{Server, ServerConfig};

fn bench_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "asyncsynth-bench-cache-{}-{tag}",
        std::process::id()
    ))
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    let spec = stg::examples::vme_read();
    let options = SynthesisOptions::default();

    // Cold: a fresh cache directory every iteration — full flow plus
    // the cost of populating the cache.
    let cold_root = bench_root("cold");
    let iteration = AtomicU64::new(0);
    group.bench_function("cold-cache", |b| {
        b.iter(|| {
            let dir = cold_root.join(iteration.fetch_add(1, Ordering::Relaxed).to_string());
            let cache = ResultCache::open(&dir).expect("cache opens");
            let run = run_cached(&spec, &options, &cache).expect("flow succeeds");
            let _ = std::fs::remove_dir_all(&dir);
            run.summary.num_states
        });
    });
    let _ = std::fs::remove_dir_all(&cold_root);

    // Warm: one pre-populated cache — pure lookup + verify path.
    let warm_root = bench_root("warm");
    let _ = std::fs::remove_dir_all(&warm_root);
    let warm = ResultCache::open(&warm_root).expect("cache opens");
    run_cached(&spec, &options, &warm).expect("prewarm");
    group.bench_function("warm-cache", |b| {
        b.iter(|| {
            run_cached(&spec, &options, &warm)
                .expect("warm flow succeeds")
                .summary
                .num_states
        });
    });
    let _ = std::fs::remove_dir_all(&warm_root);
    group.finish();
}

fn bench_concurrent_clients(c: &mut Criterion) {
    let mut group = c.benchmark_group("service-tcp");
    group.sample_size(10);
    let cache_root = bench_root("tcp");
    let _ = std::fs::remove_dir_all(&cache_root);
    let server = Server::bind(
        "127.0.0.1:0",
        &ServerConfig {
            workers: 4,
            cache_dir: Some(cache_root.clone()),
        },
    )
    .expect("server binds");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let specs: Vec<String> = [
        stg::examples::vme_read,
        stg::examples::vme_read_csc,
        stg::examples::vme_read_write,
        stg::examples::toggle,
    ]
    .iter()
    .map(|build| stg::parse::write_g(&build()))
    .collect();

    // First sample is cold, the rest are warm — the interesting number
    // is the steady-state round-trip with four concurrent clients.
    group.bench_function("four-concurrent-clients", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for spec in &specs {
                    let addr = &addr;
                    scope.spawn(move || {
                        server::client::submit_synth(
                            addr,
                            spec,
                            &SynthesisOptions::default(),
                            false,
                            |_| {},
                        )
                        .expect("concurrent submission succeeds")
                    });
                }
            });
        });
    });

    let _ = server::client::request(&addr, &Request::Shutdown, |_| {});
    let _ = handle.join();
    let _ = std::fs::remove_dir_all(&cache_root);
    group.finish();
}

criterion_group!(benches, bench_cache, bench_concurrent_clients);
criterion_main!(benches);
