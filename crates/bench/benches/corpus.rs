//! The corpus replay bench: runs every corpus spec through the full
//! pipeline, diffs the live validation records against the pinned
//! ledger under `corpus/ledger/`, and emits `BENCH_corpus.json` — the
//! perf-trajectory artifact CI uploads.
//!
//! Modes (mutually exclusive, detected from the argument list):
//!
//! * `cargo bench --bench corpus` — full replay: per-family cold
//!   timings (uncached pipeline), warm timings (second pass through a
//!   fresh result cache), deterministic operation counters, drift gate
//!   (non-zero exit on any verdict/count/digest change; timings are
//!   never compared), `BENCH_corpus.json` written to the repo root.
//! * `cargo bench --bench corpus -- --pin` — re-evaluates the corpus
//!   and rewrites the pinned ledger records instead of gating.
//! * `cargo test` (the harness passes `--test`) — smoke mode: replays
//!   the two cheapest families against the ledger, writes nothing.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use asyncsynth::summary::counters_to_json;
use asyncsynth::telemetry::Counters;
use asyncsynth::{Json, ResultCache, SynthesisOptions};
use corpus::ledger::{self, LedgerRecord};

/// Families cheap enough for the debug-build smoke pass.
const SMOKE_FAMILIES: [&str; 2] = ["vme", "gimport"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Deterministic per-family counters plus wall-clock timings.
#[derive(Default)]
struct FamilyStats {
    specs: usize,
    synthesized: usize,
    states: u64,
    states_explored: u64,
    cold_ms: u128,
    warm_ms: u128,
    warm_hits: usize,
    /// Sum of every spec's deterministic flow counters — failed flows
    /// included, so families that end `not_implementable` or
    /// `csc_unresolved` still report the exploration they did.
    counters: Counters,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--test");
    let pin = args.iter().any(|a| a == "--pin");
    let options = SynthesisOptions::default();
    let ledger_root = corpus::ledger_root();

    // Cold pass: evaluate every (selected) spec from scratch.
    let mut live: Vec<LedgerRecord> = Vec::new();
    let mut stats: BTreeMap<String, FamilyStats> = BTreeMap::new();
    let mut specs_by_family: BTreeMap<String, Vec<stg::Stg>> = BTreeMap::new();
    for (family, spec) in corpus::all_specs() {
        if smoke && !SMOKE_FAMILIES.contains(&family) {
            continue;
        }
        let start = Instant::now();
        let record = LedgerRecord::evaluate(family, &spec, &options);
        let entry = stats.entry(family.to_owned()).or_default();
        entry.specs += 1;
        entry.cold_ms += start.elapsed().as_millis();
        // Aggregate from the record's deterministic metrics, which are
        // captured for every outcome — a family whose specs all fail
        // CSC still reports its states and sweep work instead of zeros.
        entry.states += record.metrics.get("states").unwrap_or(0);
        entry.states_explored += record.metrics.get("states_explored").unwrap_or(0);
        entry.counters.merge(&record.metrics);
        if record.outcome == "synthesized" {
            entry.synthesized += 1;
            specs_by_family
                .entry(family.to_owned())
                .or_default()
                .push(spec);
        }
        live.push(record);
    }

    if pin {
        for record in &live {
            if let Err(e) = ledger::store(&ledger_root, record) {
                eprintln!(
                    "corpus: failed to pin {}/{}: {e}",
                    record.family, record.model
                );
                return ExitCode::FAILURE;
            }
        }
        println!(
            "corpus: pinned {} records under {}",
            live.len(),
            ledger_root.display()
        );
        return ExitCode::SUCCESS;
    }

    // Drift gate: every live record must match its pinned twin exactly
    // (minus wall time), and in full mode the pinned set must not
    // contain records the corpus no longer produces.
    let mut drift: Vec<String> = Vec::new();
    for record in &live {
        let path = ledger::record_path(&ledger_root, &record.family, &record.model);
        match ledger::load(&path) {
            Err(e) => drift.push(format!("{}/{}: {e}", record.family, record.model)),
            Ok(pinned) => {
                for d in pinned.diff(record) {
                    drift.push(format!("{}/{}: {d}", record.family, record.model));
                }
            }
        }
    }
    if !smoke {
        match ledger::load_all(&ledger_root) {
            Err(e) => drift.push(format!("ledger unreadable: {e}")),
            Ok(pinned) => {
                for p in &pinned {
                    if !live
                        .iter()
                        .any(|r| r.family == p.family && r.model == p.model)
                    {
                        drift.push(format!(
                            "{}/{}: pinned record has no corpus spec",
                            p.family, p.model
                        ));
                    }
                }
            }
        }
    }

    // Warm pass: synthesisable specs twice through a fresh result
    // cache; the second pass must be all hits (a deterministic counter,
    // unlike the timing next to it).
    let cache_dir = std::env::temp_dir().join(format!("corpus-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    if let Ok(cache) = ResultCache::open(&cache_dir) {
        for (family, specs) in &specs_by_family {
            for spec in specs {
                let _ = asyncsynth::run_cached(spec, &options, &cache);
            }
            let start = Instant::now();
            let mut hits = 0usize;
            for spec in specs {
                if let Ok(run) = asyncsynth::run_cached(spec, &options, &cache) {
                    if run.outcome == asyncsynth::CacheOutcome::Hit {
                        hits += 1;
                    }
                }
            }
            let entry = stats.entry(family.clone()).or_default();
            entry.warm_ms = start.elapsed().as_millis();
            entry.warm_hits = hits;
            if hits != specs.len() {
                drift.push(format!(
                    "{family}: warm pass got {hits}/{} cache hits",
                    specs.len()
                ));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    // The trajectory artifact (full mode only — smoke writes nothing).
    if !smoke {
        let bench_path = repo_root().join("BENCH_corpus.json");
        if let Err(e) = std::fs::write(&bench_path, render_bench(&stats, &live).render() + "\n") {
            eprintln!("corpus: failed to write {}: {e}", bench_path.display());
            return ExitCode::FAILURE;
        }
        println!("corpus: wrote {}", bench_path.display());
    }

    for line in &drift {
        eprintln!("corpus drift: {line}");
    }
    if drift.is_empty() {
        println!(
            "corpus: {} records match the pinned ledger{}",
            live.len(),
            if smoke { " (smoke subset)" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "corpus: {} drift line(s) against {}",
            drift.len(),
            ledger_root.display()
        );
        eprintln!("corpus: rebuild the ledger with: cargo bench --bench corpus -- --pin");
        ExitCode::FAILURE
    }
}

fn render_bench(stats: &BTreeMap<String, FamilyStats>, live: &[LedgerRecord]) -> Json {
    let num128 = |n: u128| Json::num(usize::try_from(n).unwrap_or(usize::MAX));
    let num64 = |n: u64| Json::num(usize::try_from(n).unwrap_or(usize::MAX));
    let families: Vec<Json> = stats
        .iter()
        .map(|(name, s)| {
            Json::obj(vec![
                ("family", Json::str(name)),
                ("specs", Json::num(s.specs)),
                ("synthesized", Json::num(s.synthesized)),
                ("states", num64(s.states)),
                ("states_explored", num64(s.states_explored)),
                ("cold_ms", num128(s.cold_ms)),
                ("warm_ms", num128(s.warm_ms)),
                ("warm_hits", Json::num(s.warm_hits)),
                ("counters", counters_to_json(&s.counters)),
            ])
        })
        .collect();
    // Per-spec deterministic counters, so counter trends are traceable
    // to individual specs across archived artifacts (`*_ms` fields are
    // informational; drift gating happens against the pinned ledger).
    let records: Vec<Json> = live
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("family", Json::str(&r.family)),
                ("model", Json::str(&r.model)),
                ("outcome", Json::str(&r.outcome)),
                ("metrics", counters_to_json(&r.metrics)),
                ("wall_ms", num64(r.wall_ms)),
            ])
        })
        .collect();
    let outcome_count = |outcome: &str| live.iter().filter(|r| r.outcome == outcome).count();
    Json::obj(vec![
        ("schema", Json::str("corpus-bench-v2")),
        ("specs", Json::num(live.len())),
        ("families", Json::Arr(families)),
        ("records", Json::Arr(records)),
        (
            "outcomes",
            Json::obj(vec![
                ("synthesized", Json::num(outcome_count("synthesized"))),
                (
                    "not_implementable",
                    Json::num(outcome_count("not_implementable")),
                ),
                ("csc_unresolved", Json::num(outcome_count("csc_unresolved"))),
                (
                    "candidates_exhausted",
                    Json::num(outcome_count("candidates_exhausted")),
                ),
            ]),
        ),
    ])
}
