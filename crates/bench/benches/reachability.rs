//! A1: explicit vs symbolic (BDD) reachability on FIFO rings — the
//! "symbolic traversal ... is generally much more compact" claim of §2.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use petri::generators;
use petri::reach::ReachabilityGraph;
use petri::symbolic::symbolic_reachability;

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        let net = generators::pipeline_with_tokens(n, n / 2);
        group.bench_with_input(BenchmarkId::new("explicit", n), &net, |b, net| {
            b.iter(|| ReachabilityGraph::build(net).unwrap().num_states());
        });
        group.bench_with_input(BenchmarkId::new("symbolic", n), &net, |b, net| {
            b.iter(|| symbolic_reachability(net).num_markings);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reachability);
criterion_main!(benches);
