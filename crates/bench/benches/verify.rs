//! Verification-engine cost on the decomposed repair loop.
//!
//! `micropipeline-2/*` measures the flow the ROADMAP used to charge
//! *minutes* to (the Decomposed verify/resubstitute loop — the cost
//! actually lived in the repair's exact minimisation, whose prime
//! generation is now the recursive complete sum, plus the per-variant
//! re-verification):
//!
//! * `complex-verify` — the monolithic composed engine on the
//!   complex-gate circuit (the baseline exploration);
//! * `naive-verify` — the same engine on the hazardous fan-in-2
//!   decomposition (bigger composed space, failing);
//! * `loop-cold` — the whole repair loop, decompose → verify →
//!   resubstitute → verify, from scratch each iteration;
//! * `loop-incremental` — the same loop through a shared
//!   [`verify::IncrementalVerifier`]: the spec tracker and the
//!   settled-internal fixed points are reused across the two variants,
//!   and every iteration after the first is served from the
//!   whole-circuit report cache (the pipeline's re-probe pattern);
//! * `reverify-cold` vs `reverify-incremental` — just the probe
//!   re-verification of an already-verified circuit, the pure
//!   cache-hit case.

use criterion::{criterion_group, criterion_main, Criterion};
use stg::StateGraph;
use synth::complex_gate::synthesize_complex_gates;
use synth::decompose::{decompose, resubstitute};
use synth::NetId;
use verify::{verify_with, IncrementalVerifier, VerifyOptions};

fn bench_decomposed_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify-micropipeline-2");
    group.sample_size(10);
    // The single CSC candidate of the decomposed flow (mixed
    // resolution), prepared once.
    let resolved = asyncsynth::Synthesis::new(stg::examples::micropipeline(2))
        .architecture(asyncsynth::Architecture::Decomposed)
        .check()
        .expect("implementable")
        .resolve_csc()
        .expect("resolvable");
    let spec = resolved.candidates()[0].spec.clone();
    let sg = StateGraph::build(&spec).expect("builds");
    let circuit = synthesize_complex_gates(&spec, &sg).expect("synthesises");
    let cnets: Vec<NetId> = spec.signals().map(|s| circuit.signal_net(s)).collect();
    let naive = decompose(&spec, &circuit, 2);
    let nnets: Vec<NetId> = spec.signals().map(|s| naive.signal_net(s)).collect();
    let resub = resubstitute(&spec, &sg, &naive);
    let rnets: Vec<NetId> = spec.signals().map(|s| resub.signal_net(s)).collect();
    let options = VerifyOptions::default();

    group.bench_function("micropipeline-2/complex-verify", |b| {
        b.iter(|| verify_with(&spec, &sg, circuit.netlist(), &cnets, &options).states_explored);
    });
    group.bench_function("micropipeline-2/naive-verify", |b| {
        b.iter(|| {
            let r = verify_with(&spec, &sg, naive.netlist(), &nnets, &options);
            assert!(!r.is_speed_independent());
            r.states_explored
        });
    });
    group.bench_function("micropipeline-2/loop-cold", |b| {
        b.iter(|| {
            let naive = decompose(&spec, &circuit, 2);
            let nets: Vec<NetId> = spec.signals().map(|s| naive.signal_net(s)).collect();
            let first = verify_with(&spec, &sg, naive.netlist(), &nets, &options);
            assert!(!first.is_speed_independent());
            let resub = resubstitute(&spec, &sg, &naive);
            let rnets: Vec<NetId> = spec.signals().map(|s| resub.signal_net(s)).collect();
            verify_with(&spec, &sg, resub.netlist(), &rnets, &options).states_explored
        });
    });
    group.bench_function("micropipeline-2/loop-incremental", |b| {
        let mut verifier = IncrementalVerifier::new();
        let inc = options.clone().with_incremental(true);
        b.iter(|| {
            let naive = decompose(&spec, &circuit, 2);
            let nets: Vec<NetId> = spec.signals().map(|s| naive.signal_net(s)).collect();
            let first = verifier.verify(&spec, &sg, naive.netlist(), &nets, &inc);
            assert!(!first.is_speed_independent());
            let resub = resubstitute(&spec, &sg, &naive);
            let rnets: Vec<NetId> = spec.signals().map(|s| resub.signal_net(s)).collect();
            verifier
                .verify(&spec, &sg, resub.netlist(), &rnets, &inc)
                .states_explored
        });
    });
    group.bench_function("micropipeline-2/reverify-cold", |b| {
        b.iter(|| verify_with(&spec, &sg, resub.netlist(), &rnets, &options).states_explored);
    });
    group.bench_function("micropipeline-2/reverify-incremental", |b| {
        let mut verifier = IncrementalVerifier::new();
        let inc = options.clone().with_incremental(true);
        let _ = verifier.verify(&spec, &sg, resub.netlist(), &rnets, &inc);
        b.iter(|| {
            verifier
                .verify(&spec, &sg, resub.netlist(), &rnets, &inc)
                .states_explored
        });
    });
    group.finish();
}

criterion_group!(benches, bench_decomposed_loop);
criterion_main!(benches);
