//! CSC candidate-sweep cost: serial vs multi-threaded grid evaluation,
//! and the effect of conflict-locality pruning.
//!
//! `vme-read/sweep-1t` vs `sweep-4t` measures the work-stealing
//! parallelisation of the `(t⁺, t⁻)` insertion grid (the dominant CSC
//! search cost); on a multi-core host the 4-thread sweep should be at
//! least 2× faster. `sweep-pruned` shows the grid cut that needs no
//! extra cores: pairs that provably cannot separate a conflicting state
//! pair are skipped before any state space is built. The micropipeline
//! group shows pruning on a controller whose whole grid is refutable.

use criterion::{criterion_group, criterion_main, Criterion};
use synth::csc::{insertion_sweep, SweepOptions};

fn sweep_opts(threads: usize, prune: bool) -> SweepOptions {
    SweepOptions {
        threads,
        prune,
        ..SweepOptions::default()
    }
}

fn bench_vme_read_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("csc-sweep");
    group.sample_size(10);
    let spec = stg::examples::vme_read();
    for (id, threads, prune) in [
        ("vme-read/sweep-1t", 1, false),
        ("vme-read/sweep-4t", 4, false),
        ("vme-read/sweep-pruned-1t", 1, true),
        ("vme-read/sweep-pruned-4t", 4, true),
    ] {
        let options = sweep_opts(threads, prune);
        group.bench_function(id, |b| {
            b.iter(|| {
                let sweep = insertion_sweep(&spec, stg::Backend::Explicit, &options);
                assert_eq!(sweep.stats.accepted, 6);
                sweep.candidates.len()
            });
        });
    }
    group.finish();
}

fn bench_micropipeline_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("csc-sweep-micropipeline");
    group.sample_size(10);
    let spec = stg::examples::micropipeline(2);
    for (id, prune) in [
        ("micropipeline-2/unpruned", false),
        ("micropipeline-2/pruned", true),
    ] {
        let options = sweep_opts(1, prune);
        group.bench_function(id, |b| {
            b.iter(|| {
                insertion_sweep(&spec, stg::Backend::Explicit, &options)
                    .stats
                    .evaluated
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vme_read_sweep, bench_micropipeline_prune);
criterion_main!(benches);
