//! Incompletely specified single-output boolean functions.

use crate::cover::Cover;

/// An incompletely specified function: an on-set and a dc-set (don't-care
/// set); the off-set is everything else.
///
/// This is the exact shape produced by next-state function derivation in
/// §3.2 of the paper: binary codes not corresponding to any state of the
/// state graph are don't-care conditions for minimisation.
///
/// # Example
///
/// ```
/// use boolmin::{Cover, Cube, IncompleteFunction};
/// let on = Cover::from_cubes(2, vec![Cube::parse("11").unwrap()]);
/// let dc = Cover::from_cubes(2, vec![Cube::parse("01").unwrap()]);
/// let f = IncompleteFunction::new(on, dc);
/// assert_eq!(f.value(&[true, true]), Some(true));
/// assert_eq!(f.value(&[false, true]), None);       // don't-care
/// assert_eq!(f.value(&[true, false]), Some(false));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncompleteFunction {
    on: Cover,
    dc: Cover,
}

impl IncompleteFunction {
    /// Creates a function from its on-set and dc-set.
    ///
    /// Overlap between the sets is resolved in favour of the on-set (a
    /// minterm in both is treated as on); callers deriving from state
    /// graphs never produce overlap.
    ///
    /// # Panics
    ///
    /// Panics if the two covers range over different variable counts.
    #[must_use]
    pub fn new(on: Cover, dc: Cover) -> Self {
        assert_eq!(on.num_vars(), dc.num_vars(), "on/dc arity mismatch");
        IncompleteFunction { on, dc }
    }

    /// A completely specified function (empty dc-set).
    #[must_use]
    pub fn completely_specified(on: Cover) -> Self {
        let n = on.num_vars();
        IncompleteFunction {
            on,
            dc: Cover::empty(n),
        }
    }

    /// Number of input variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.on.num_vars()
    }

    /// The on-set.
    #[must_use]
    pub fn on_set(&self) -> &Cover {
        &self.on
    }

    /// The dc-set.
    #[must_use]
    pub fn dc_set(&self) -> &Cover {
        &self.dc
    }

    /// The off-set, computed as ¬(on ∪ dc).
    #[must_use]
    pub fn off_set(&self) -> Cover {
        self.on.union(&self.dc).complement()
    }

    /// The union on ∪ dc (the "care-or-free" upper bound for expansion).
    #[must_use]
    pub fn upper_bound(&self) -> Cover {
        self.on.union(&self.dc)
    }

    /// Value at a complete assignment: `Some(true)` (on), `Some(false)`
    /// (off) or `None` (don't-care).
    #[must_use]
    pub fn value(&self, assignment: &[bool]) -> Option<bool> {
        if self.on.covers_minterm(assignment) {
            Some(true)
        } else if self.dc.covers_minterm(assignment) {
            None
        } else {
            Some(false)
        }
    }

    /// `true` if `cover` implements this function: it covers the whole
    /// on-set and stays inside on ∪ dc.
    #[must_use]
    pub fn is_implemented_by(&self, cover: &Cover) -> bool {
        cover.covers_cover(&self.on) && self.upper_bound().covers_cover(cover)
    }
}
