//! Algebraic factoring of two-level covers into expression trees.
//!
//! §3.4 of the paper bases decomposition on *"candidates for decomposition
//! extracted by algebraic factorization"*. This module implements the
//! classic quick-factor procedure: pick the most frequent literal, divide
//! the cover by it, and recurse on quotient and remainder.

use crate::cover::Cover;
use crate::cube::{Cube, Literal};
use crate::expr::Expr;

/// Factors a cover into an [`Expr`] tree using literal division.
///
/// The resulting expression is logically equivalent to the cover (as a
/// completely specified function) and usually has fewer literals; it is the
/// starting point for fan-in-bounded decomposition.
///
/// # Example
///
/// ```
/// use boolmin::{factor::factor_cover, Cover, Cube};
/// // a b + a c  =>  a (b + c)
/// let f = Cover::from_cubes(3, vec![
///     Cube::parse("11-").unwrap(),
///     Cube::parse("1-1").unwrap(),
/// ]);
/// let e = factor_cover(&f);
/// assert_eq!(e.literal_count(), 3);
/// for bits in 0..8u8 {
///     let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
///     assert_eq!(e.eval(&asg), f.covers_minterm(&asg));
/// }
/// ```
#[must_use]
pub fn factor_cover(cover: &Cover) -> Expr {
    if cover.is_empty() {
        return Expr::Const(false);
    }
    if cover.cubes().iter().any(|c| c.literal_count() == 0) {
        return Expr::Const(true);
    }
    if cover.cubes().len() == 1 {
        return cube_expr(&cover.cubes()[0]);
    }
    match best_literal(cover) {
        None => {
            // No literal shared by ≥ 2 cubes: plain SOP.
            Expr::from_cover(cover)
        }
        Some((var, lit)) => {
            let n = cover.num_vars();
            let mut quotient_cubes = Vec::new();
            let mut remainder_cubes = Vec::new();
            for c in cover.cubes() {
                if c.literal(var) == lit {
                    quotient_cubes.push(c.with(var, Literal::DontCare));
                } else {
                    remainder_cubes.push(c.clone());
                }
            }
            let quotient = Cover::from_cubes(n, quotient_cubes);
            let divisor = Expr::literal(var, lit == Literal::One);
            let q_expr = factor_cover(&quotient);
            let product = Expr::and(vec![divisor, q_expr]);
            if remainder_cubes.is_empty() {
                product
            } else {
                let remainder = Cover::from_cubes(n, remainder_cubes);
                Expr::or(vec![product, factor_cover(&remainder)])
            }
        }
    }
}

fn cube_expr(c: &Cube) -> Expr {
    let lits: Vec<Expr> = c
        .literals()
        .map(|(v, lit)| Expr::literal(v, lit == Literal::One))
        .collect();
    Expr::and(lits)
}

/// The literal `(var, phase)` occurring in the largest number of cubes, if
/// any literal occurs at least twice.
fn best_literal(cover: &Cover) -> Option<(usize, Literal)> {
    let n = cover.num_vars();
    let mut counts: Vec<[usize; 2]> = vec![[0, 0]; n];
    for c in cover.cubes() {
        for (v, lit) in c.literals() {
            match lit {
                Literal::Zero => counts[v][0] += 1,
                Literal::One => counts[v][1] += 1,
                Literal::DontCare => {}
            }
        }
    }
    let mut best: Option<(usize, Literal, usize)> = None;
    for (v, phases) in counts.iter().enumerate().take(n) {
        for (phase, lit) in [(0, Literal::Zero), (1, Literal::One)] {
            let cnt = phases[phase];
            if cnt >= 2 && best.as_ref().is_none_or(|&(_, _, bc)| cnt > bc) {
                best = Some((v, lit, cnt));
            }
        }
    }
    best.map(|(v, l, _)| (v, l))
}

/// Rewrites an expression so no AND/OR node exceeds `max_fanin` inputs, by
/// splitting wide operators into balanced trees.
///
/// # Panics
///
/// Panics if `max_fanin < 2`.
#[must_use]
pub fn bound_fanin(expr: &Expr, max_fanin: usize) -> Expr {
    assert!(max_fanin >= 2, "gates need at least two inputs");
    match expr {
        Expr::Const(_) | Expr::Var(_) => expr.clone(),
        Expr::Not(e) => Expr::not(bound_fanin(e, max_fanin)),
        Expr::And(parts) => {
            let bounded: Vec<Expr> = parts.iter().map(|p| bound_fanin(p, max_fanin)).collect();
            split_tree(bounded, max_fanin, true)
        }
        Expr::Or(parts) => {
            let bounded: Vec<Expr> = parts.iter().map(|p| bound_fanin(p, max_fanin)).collect();
            split_tree(bounded, max_fanin, false)
        }
    }
}

fn split_tree(mut parts: Vec<Expr>, max_fanin: usize, is_and: bool) -> Expr {
    while parts.len() > max_fanin {
        let mut next = Vec::with_capacity(parts.len().div_ceil(max_fanin));
        for chunk in parts.chunks(max_fanin) {
            let group = chunk.to_vec();
            next.push(if is_and {
                Expr::and(group)
            } else {
                Expr::or(group)
            });
        }
        parts = next;
    }
    if is_and {
        Expr::and(parts)
    } else {
        Expr::or(parts)
    }
}
