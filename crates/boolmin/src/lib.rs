//! Two-level boolean logic: cubes, covers, minimisation, factoring.
//!
//! This crate is the boolean-minimisation substrate required by §3.2 of the
//! DAC'98 tutorial (*"Once the next-state function has been derived, boolean
//! minimization can be performed to obtain a logic equation... it is crucial
//! to make an efficient use of the don't care conditions"*).
//!
//! It provides:
//!
//! * [`Cube`] / [`Cover`] — the classic positional-cube algebra
//!   (intersection, containment, cofactors, tautology, complement, …);
//! * [`IncompleteFunction`] — an incompletely specified single-output
//!   function (on-set, dc-set) with exact ([`minimize_exact`]) and
//!   heuristic ([`minimize_heuristic`]) two-level minimisers;
//! * [`factor`](crate::factor::factor_cover) — algebraic factoring of a
//!   minimised cover into a fan-in-bounded expression tree, used by the
//!   hazard-free decomposition step (§3.4).
//!
//! # Example
//!
//! ```
//! use boolmin::{Cover, Cube, IncompleteFunction};
//!
//! // f(a,b) with on-set {11}, dc-set {10}: minimises to just "a".
//! let on = Cover::from_cubes(2, vec![Cube::parse("11").unwrap()]);
//! let dc = Cover::from_cubes(2, vec![Cube::parse("10").unwrap()]);
//! let f = IncompleteFunction::new(on, dc);
//! let min = boolmin::minimize_exact(&f);
//! assert_eq!(min.cubes().len(), 1);
//! assert_eq!(min.cubes()[0].to_string(), "1-");
//! ```

mod cover;
mod cube;
pub mod expr;
pub mod factor;
mod function;
mod minimize;

pub use cover::Cover;
pub use cube::{Cube, Literal};
pub use expr::Expr;
pub use function::IncompleteFunction;
pub use minimize::{minimize_exact, minimize_heuristic, primes_generated, primes_of};

#[cfg(test)]
mod tests;
