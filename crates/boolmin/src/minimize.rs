//! Two-level minimisation: exact (Quine–McCluskey + branch-and-bound
//! covering) and heuristic (espresso-style expand/irredundant).

use std::cell::Cell;
use std::collections::HashMap;

use crate::cover::Cover;
use crate::cube::{Cube, Literal};
use crate::function::IncompleteFunction;

thread_local! {
    /// Primes generated on this thread since start (or last snapshot
    /// delta). Thread-local so concurrent flows (one flow per thread)
    /// never observe each other's work; the synthesis stage of a single
    /// flow always runs on one thread, so deltas taken around it are
    /// exact and thread-count-invariant.
    static PRIMES_GENERATED: Cell<u64> = const { Cell::new(0) };
}

/// Total prime implicants generated on the current thread. Callers take
/// a delta around a unit of work: the difference is a deterministic
/// operation counter for that work.
#[must_use]
pub fn primes_generated() -> u64 {
    PRIMES_GENERATED.with(Cell::get)
}

/// All prime implicants of `on ∪ dc`, by recursive complete-sum
/// computation (Shannon expansion on the most binate variable, unate
/// covers terminate as their absorbed selves).
///
/// A prime implicant is a maximal cube contained in on ∪ dc. The prime
/// set of a function is canonical, so the result — deterministic,
/// sorted — is identical to what the previous iterated-consensus
/// closure produced; the recursion merely avoids that closure's
/// quadratic passes over combinatorially many intermediate cubes, which
/// made near-tautological upper bounds (the resubstitution don't-care
/// sets over extended variable spaces) take minutes instead of
/// milliseconds.
#[must_use]
pub fn primes_of(f: &IncompleteFunction) -> Vec<Cube> {
    let mut primes = complete_sum(&f.upper_bound());
    primes.sort();
    primes.dedup();
    PRIMES_GENERATED.with(|c| c.set(c.get() + primes.len() as u64));
    primes
}

/// The complete sum (set of all primes) of a cover, recursively.
fn complete_sum(cover: &Cover) -> Vec<Cube> {
    let n = cover.num_vars();
    if cover.cubes().is_empty() {
        return Vec::new();
    }
    let universe = Cube::universe(n);
    if cover.cubes().contains(&universe) {
        return vec![universe];
    }
    // A unate cover has no consensus terms, so by Quine's complete-sum
    // theorem its absorbed cubes already are all its primes. (This also
    // covers unate tautologies: a tautological unate cover must contain
    // the universe cube, handled above.)
    let Some(x) = cover.most_binate_var() else {
        let mut c = cover.clone();
        c.remove_contained();
        return c.cubes().to_vec();
    };
    let p0 = complete_sum(&cover.cofactor_literal(x, false));
    let p1 = complete_sum(&cover.cofactor_literal(x, true));
    // Merge: x'·P0 ∪ x·P1 plus every consensus on x (the pairwise
    // intersections), then absorb.
    let mut out: Vec<Cube> = Vec::with_capacity(p0.len() + p1.len());
    for p in &p0 {
        for q in &p1 {
            if let Some(c) = p.intersect(q) {
                out.push(c);
            }
        }
    }
    for p in p0 {
        out.push(p.with(x, Literal::Zero));
    }
    for p in p1 {
        out.push(p.with(x, Literal::One));
    }
    absorb(out)
}

/// Removes duplicate and strictly contained cubes.
fn absorb(mut cubes: Vec<Cube>) -> Vec<Cube> {
    // Wider cubes (fewer literals) first: a cube can only be absorbed
    // by one at least as wide, so one forward pass suffices.
    cubes.sort_by_key(Cube::literal_count);
    let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
    for c in cubes {
        if !kept.iter().any(|k| k.covers(&c)) {
            kept.push(c);
        }
    }
    kept
}

/// Exact two-level minimisation of an incompletely specified function.
///
/// Generates all primes of on ∪ dc, then solves the covering problem over
/// the on-set cubes with essential-prime extraction followed by
/// branch-and-bound (minimising cube count, tie-broken by literal count).
///
/// Complexity is exponential in the worst case; intended for controller-
/// sized functions (≲ 16 variables, small on-sets). Use
/// [`minimize_heuristic`] beyond that.
#[must_use]
pub fn minimize_exact(f: &IncompleteFunction) -> Cover {
    let n = f.num_vars();
    if f.on_set().is_empty() {
        return Cover::empty(n);
    }
    let primes = primes_of(f);
    // Covering matrix: rows = on-set "care" chunks. We use the on-set cubes
    // fragmented against primes: element (i,j) = prime j covers row cube i.
    // To keep rows exact we fragment the on-set into disjoint cubes first.
    let rows = disjoint_cover(f.on_set());
    let covers_row = |p: &Cube, row: &Cube| p.covers(row);
    // For correctness rows must each be covered entirely by a single prime
    // — guaranteed because rows are fragments of on-cubes and primes are
    // maximal implicants, but a row could straddle primes. Fragment rows
    // further against primes where needed.
    let rows = fragment_rows(rows, &primes);
    let mut chosen: Vec<usize> = Vec::new();
    let mut uncovered: Vec<usize> = (0..rows.len()).collect();

    // Essential primes: a row covered by exactly one prime forces it.
    loop {
        let mut essential: Option<usize> = None;
        for &r in &uncovered {
            let covering: Vec<usize> = primes
                .iter()
                .enumerate()
                .filter(|(_, p)| covers_row(p, &rows[r]))
                .map(|(j, _)| j)
                .collect();
            if covering.len() == 1 && !chosen.contains(&covering[0]) {
                essential = Some(covering[0]);
                break;
            }
        }
        match essential {
            Some(j) => {
                chosen.push(j);
                uncovered.retain(|&r| !covers_row(&primes[j], &rows[r]));
            }
            None => break,
        }
    }

    if !uncovered.is_empty() {
        // Branch and bound over the remaining rows.
        let candidates: Vec<usize> = (0..primes.len()).filter(|j| !chosen.contains(j)).collect();
        let mut best: Option<Vec<usize>> = None;
        let mut stack: Vec<(Vec<usize>, Vec<usize>)> = vec![(Vec::new(), uncovered.clone())];
        while let Some((picked, left)) = stack.pop() {
            if let Some(b) = &best {
                if picked.len() >= b.len() {
                    continue;
                }
            }
            if left.is_empty() {
                best = Some(picked);
                continue;
            }
            // Branch on the first uncovered row: try each prime covering it.
            let r = left[0];
            for &j in &candidates {
                if picked.contains(&j) || !covers_row(&primes[j], &rows[r]) {
                    continue;
                }
                let mut p2 = picked.clone();
                p2.push(j);
                let l2: Vec<usize> = left
                    .iter()
                    .copied()
                    .filter(|&rr| !covers_row(&primes[j], &rows[rr]))
                    .collect();
                stack.push((p2, l2));
            }
        }
        if let Some(extra) = best {
            chosen.extend(extra);
        } else {
            // Fall back: cover each leftover row with any covering prime.
            for &r in &uncovered {
                if let Some((j, _)) = primes
                    .iter()
                    .enumerate()
                    .find(|(_, p)| covers_row(p, &rows[r]))
                {
                    if !chosen.contains(&j) {
                        chosen.push(j);
                    }
                }
            }
        }
    }

    chosen.sort_unstable();
    chosen.dedup();
    let mut out = Cover::from_cubes(n, chosen.into_iter().map(|j| primes[j].clone()).collect());
    out.remove_contained();
    debug_assert!(
        f.is_implemented_by(&out),
        "exact minimisation must implement f"
    );
    out
}

/// Heuristic (espresso-style) minimisation: EXPAND each on-cube against the
/// off-set, then make the result IRREDUNDANT. Much faster than
/// [`minimize_exact`] for larger functions, at the cost of optimality.
#[must_use]
pub fn minimize_heuristic(f: &IncompleteFunction) -> Cover {
    let n = f.num_vars();
    if f.on_set().is_empty() {
        return Cover::empty(n);
    }
    let off = f.off_set();
    // EXPAND: raise each literal to don't-care while staying off the
    // off-set; greedy, literal order by frequency (most shared first).
    let mut expanded: Vec<Cube> = Vec::new();
    for cube in f.on_set().cubes() {
        let mut c = cube.clone();
        let lits: Vec<usize> = c.literals().map(|(v, _)| v).collect();
        for v in lits {
            let candidate = c.with(v, Literal::DontCare);
            if !intersects_cover(&candidate, &off) {
                c = candidate;
            }
        }
        expanded.push(c);
    }
    let mut cover = Cover::from_cubes(n, expanded);
    cover.remove_contained();

    // IRREDUNDANT: drop cubes whose on-part is covered by the rest ∪ dc.
    let cubes: Vec<Cube> = cover.cubes().to_vec();
    let mut kept: Vec<Cube> = cubes.clone();
    for c in &cubes {
        let rest: Vec<Cube> = kept.iter().filter(|k| *k != c).cloned().collect();
        if rest.is_empty() {
            continue;
        }
        let rest_cover = Cover::from_cubes(n, rest.clone()).union(f.dc_set());
        if rest_cover.covers_cube(c) {
            kept = rest;
        }
    }
    let out = Cover::from_cubes(n, kept);
    debug_assert!(
        f.is_implemented_by(&out),
        "heuristic minimisation must implement f"
    );
    out
}

fn intersects_cover(cube: &Cube, cover: &Cover) -> bool {
    cover.cubes().iter().any(|c| c.intersect(cube).is_some())
}

/// Rewrites a cover as a union of pairwise-disjoint cubes.
fn disjoint_cover(cover: &Cover) -> Vec<Cube> {
    let n = cover.num_vars();
    let mut out: Vec<Cube> = Vec::new();
    let mut covered = Cover::empty(n);
    for c in cover.cubes() {
        // c \ covered as disjoint pieces.
        let piece = Cover::from_cubes(n, vec![c.clone()]).subtract(&covered);
        for p in piece.cubes() {
            out.push(p.clone());
        }
        covered.push(c.clone());
    }
    out
}

/// Splits rows until each row is, for every prime, either fully covered by
/// it or disjoint from it. This makes the covering matrix exact: a set of
/// primes covers the on-set iff every row is fully covered by some chosen
/// prime, so essential-prime extraction and branch-and-bound are sound.
fn fragment_rows(rows: Vec<Cube>, primes: &[Cube]) -> Vec<Cube> {
    let mut out = Vec::new();
    let mut work = rows;
    'rows: while let Some(r) = work.pop() {
        for p in primes {
            if p.intersect(&r).is_some() && !p.covers(&r) {
                // p straddles r: split r on a variable constrained in p but
                // free in r. Such a variable exists because the cubes
                // intersect (no conflicting literals) yet p does not cover r.
                let var = (0..r.num_vars())
                    .find(|&v| {
                        p.literal(v) != Literal::DontCare && r.literal(v) == Literal::DontCare
                    })
                    .expect("straddling prime constrains a variable free in the row");
                work.push(r.with(var, Literal::Zero));
                work.push(r.with(var, Literal::One));
                continue 'rows;
            }
        }
        out.push(r);
    }
    // Deduplicate: identical fragments can arise from overlapping on-cubes.
    let mut seen: HashMap<String, ()> = HashMap::new();
    out.retain(|c| seen.insert(c.to_string(), ()).is_none());
    out
}
