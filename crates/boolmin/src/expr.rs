//! Boolean expression trees (factored forms).

use std::fmt;

use crate::cover::Cover;
use crate::cube::Literal;

/// A boolean expression over numbered variables.
///
/// Used as the factored-form output of [`factor`](crate::factor::factor_cover)
/// and as the gate-function input of technology mapping.
///
/// # Example
///
/// ```
/// use boolmin::Expr;
/// let e = Expr::or(vec![
///     Expr::and(vec![Expr::Var(0), Expr::Var(1)]),
///     Expr::not(Expr::Var(2)),
/// ]);
/// assert!(e.eval(&[true, true, true]));
/// assert!(e.eval(&[false, false, false]));
/// assert!(!e.eval(&[false, true, true]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Constant true or false.
    Const(bool),
    /// A variable by index.
    Var(usize),
    /// Negation.
    Not(Box<Expr>),
    /// N-ary conjunction.
    And(Vec<Expr>),
    /// N-ary disjunction.
    Or(Vec<Expr>),
}

impl Expr {
    /// Builds a conjunction, flattening trivial cases.
    #[must_use]
    pub fn and(mut parts: Vec<Expr>) -> Expr {
        parts.retain(|p| !matches!(p, Expr::Const(true)));
        if parts.iter().any(|p| matches!(p, Expr::Const(false))) {
            return Expr::Const(false);
        }
        match parts.len() {
            0 => Expr::Const(true),
            1 => parts.pop().expect("len checked"),
            _ => Expr::And(parts),
        }
    }

    /// Builds a disjunction, flattening trivial cases.
    #[must_use]
    pub fn or(mut parts: Vec<Expr>) -> Expr {
        parts.retain(|p| !matches!(p, Expr::Const(false)));
        if parts.iter().any(|p| matches!(p, Expr::Const(true))) {
            return Expr::Const(true);
        }
        match parts.len() {
            0 => Expr::Const(false),
            1 => parts.pop().expect("len checked"),
            _ => Expr::Or(parts),
        }
    }

    /// Builds a negation, collapsing double negations.
    ///
    /// A static constructor, deliberately not `std::ops::Not` (it takes
    /// the operand by value, like [`Expr::and`] / [`Expr::or`]).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        match e {
            Expr::Not(inner) => *inner,
            Expr::Const(b) => Expr::Const(!b),
            other => Expr::Not(Box::new(other)),
        }
    }

    /// A literal: variable `v`, possibly negated.
    #[must_use]
    pub fn literal(v: usize, positive: bool) -> Expr {
        if positive {
            Expr::Var(v)
        } else {
            Expr::not(Expr::Var(v))
        }
    }

    /// Evaluates under a complete assignment (index = variable).
    #[must_use]
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(v) => assignment[*v],
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(parts) => parts.iter().all(|p| p.eval(assignment)),
            Expr::Or(parts) => parts.iter().any(|p| p.eval(assignment)),
        }
    }

    /// Number of leaf literals (size measure for factored forms).
    #[must_use]
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(_) => 1,
            Expr::Not(e) => e.literal_count(),
            Expr::And(parts) | Expr::Or(parts) => parts.iter().map(Expr::literal_count).sum(),
        }
    }

    /// Maximum fan-in of any operator node.
    #[must_use]
    pub fn max_fanin(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Not(e) => e.max_fanin().max(1),
            Expr::And(parts) | Expr::Or(parts) => parts
                .iter()
                .map(Expr::max_fanin)
                .max()
                .unwrap_or(0)
                .max(parts.len()),
        }
    }

    /// Variables occurring in the expression, ascending and deduplicated.
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        let mut vars = std::collections::BTreeSet::new();
        self.collect_support(&mut vars);
        vars.into_iter().collect()
    }

    fn collect_support(&self, vars: &mut std::collections::BTreeSet<usize>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                vars.insert(*v);
            }
            Expr::Not(e) => e.collect_support(vars),
            Expr::And(parts) | Expr::Or(parts) => {
                for p in parts {
                    p.collect_support(vars);
                }
            }
        }
    }

    /// Converts a cover (SOP) into an expression tree.
    #[must_use]
    pub fn from_cover(cover: &Cover) -> Expr {
        let terms: Vec<Expr> = cover
            .cubes()
            .iter()
            .map(|c| {
                let lits: Vec<Expr> = c
                    .literals()
                    .map(|(v, lit)| Expr::literal(v, lit == Literal::One))
                    .collect();
                Expr::and(lits)
            })
            .collect();
        Expr::or(terms)
    }

    /// Pretty-prints with variable names (`'` postfix for negation, `·`
    /// implicit as a space, `+` for disjunction).
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range of `names`.
    #[must_use]
    pub fn to_string_named(&self, names: &[String]) -> String {
        self.render(names, false)
    }

    fn render(&self, names: &[String], parenthesise: bool) -> String {
        match self {
            Expr::Const(true) => "1".to_owned(),
            Expr::Const(false) => "0".to_owned(),
            Expr::Var(v) => names[*v].clone(),
            Expr::Not(e) => match &**e {
                Expr::Var(v) => format!("{}'", names[*v]),
                inner => format!("({})'", inner.render(names, false)),
            },
            Expr::And(parts) => {
                let s = parts
                    .iter()
                    .map(|p| p.render(names, matches!(p, Expr::Or(_))))
                    .collect::<Vec<_>>()
                    .join(" ");
                if parenthesise {
                    format!("({s})")
                } else {
                    s
                }
            }
            Expr::Or(parts) => {
                let s = parts
                    .iter()
                    .map(|p| p.render(names, false))
                    .collect::<Vec<_>>()
                    .join(" + ");
                if parenthesise {
                    format!("({s})")
                } else {
                    s
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.support().into_iter().max().map_or(0, |v| v + 1);
        let names: Vec<String> = (0..max).map(|i| format!("x{i}")).collect();
        write!(f, "{}", self.to_string_named(&names))
    }
}
