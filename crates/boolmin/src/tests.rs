//! Unit and property tests for the two-level logic substrate.

use crate::factor::{bound_fanin, factor_cover};
use crate::{minimize_exact, minimize_heuristic, primes_of, Cover, Cube, IncompleteFunction};

fn assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << n)).map(move |bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect())
}

#[test]
fn cube_parse_roundtrip() {
    let c = Cube::parse("10-1").unwrap();
    assert_eq!(c.to_string(), "10-1");
    assert_eq!(c.num_vars(), 4);
    assert_eq!(c.literal_count(), 3);
    assert!(Cube::parse("10x").is_err());
}

#[test]
fn cube_cover_relation() {
    let big = Cube::parse("1--").unwrap();
    let small = Cube::parse("1-0").unwrap();
    assert!(big.covers(&small));
    assert!(!small.covers(&big));
    assert!(big.covers(&big));
}

#[test]
fn cube_intersection_and_distance() {
    let a = Cube::parse("1-0").unwrap();
    let b = Cube::parse("11-").unwrap();
    assert_eq!(a.intersect(&b).unwrap().to_string(), "110");
    let c = Cube::parse("0--").unwrap();
    assert!(a.intersect(&c).is_none());
    assert_eq!(a.distance(&c), 1);
    assert_eq!(a.distance(&b), 0);
}

#[test]
fn cube_consensus() {
    let a = Cube::parse("1-1").unwrap();
    let b = Cube::parse("0-1").unwrap();
    // Consensus across var 0: "--1".
    assert_eq!(a.consensus(&b).unwrap().to_string(), "--1");
    let c = Cube::parse("00-").unwrap();
    // distance(a, c) = 2 (vars 0 and 2)? a=1-1, c=00-: var0 conflict only.
    assert_eq!(a.distance(&c), 1);
}

#[test]
fn cube_minterms() {
    let c = Cube::parse("1-").unwrap();
    let ms = c.minterms();
    assert_eq!(ms.len(), 2);
    assert!(ms.contains(&vec![true, false]));
    assert!(ms.contains(&vec![true, true]));
    assert_eq!(c.minterm_count(), 2);
}

#[test]
fn cover_tautology() {
    let t = Cover::parse(2, "1- 0-").unwrap();
    assert!(t.is_tautology());
    let nt = Cover::parse(2, "1- -1").unwrap();
    assert!(!nt.is_tautology());
    assert!(Cover::universe(3).is_tautology());
    assert!(!Cover::empty(3).is_tautology());
}

#[test]
fn cover_complement_small() {
    let f = Cover::parse(2, "11").unwrap();
    let nf = f.complement();
    for asg in assignments(2) {
        assert_eq!(nf.covers_minterm(&asg), !f.covers_minterm(&asg));
    }
    // Complement of a complement is equivalent to the original.
    assert!(nf.complement().equivalent(&f));
}

#[test]
fn cover_subtract() {
    let f = Cover::parse(2, "1-").unwrap();
    let g = Cover::parse(2, "11").unwrap();
    let d = f.subtract(&g);
    for asg in assignments(2) {
        assert_eq!(
            d.covers_minterm(&asg),
            f.covers_minterm(&asg) && !g.covers_minterm(&asg)
        );
    }
}

#[test]
fn cover_containment_checks() {
    let f = Cover::parse(3, "1-- -1-").unwrap();
    assert!(f.covers_cube(&Cube::parse("11-").unwrap()));
    assert!(!f.covers_cube(&Cube::parse("0-0").unwrap()));
    // The cube 110 is covered jointly even though neither cube alone works
    // — straddling case.
    let g = Cover::parse(2, "1- -1").unwrap();
    assert!(g.covers_cube(&Cube::parse("11").unwrap()));
}

#[test]
fn remove_contained_cleans_up() {
    let mut f = Cover::parse(2, "11 1-").unwrap();
    f.remove_contained();
    assert_eq!(f.cubes().len(), 1);
    assert_eq!(f.cubes()[0].to_string(), "1-");
}

#[test]
fn primes_xor() {
    // XOR has exactly two primes: 01 and 10.
    let on = Cover::parse(2, "01 10").unwrap();
    let f = IncompleteFunction::completely_specified(on);
    let primes = primes_of(&f);
    assert_eq!(primes.len(), 2);
}

#[test]
fn primes_with_merge() {
    // on = {00, 01, 11}: primes are 0- and -1.
    let on = Cover::parse(2, "00 01 11").unwrap();
    let f = IncompleteFunction::completely_specified(on);
    let primes = primes_of(&f);
    let strs: Vec<String> = primes.iter().map(ToString::to_string).collect();
    assert!(strs.contains(&"0-".to_owned()));
    assert!(strs.contains(&"-1".to_owned()));
    assert_eq!(primes.len(), 2);
}

#[test]
fn exact_minimisation_uses_dont_cares() {
    // on = {11}, dc = {10}: result should be the single cube "1-".
    let on = Cover::parse(2, "11").unwrap();
    let dc = Cover::parse(2, "10").unwrap();
    let f = IncompleteFunction::new(on, dc);
    let min = minimize_exact(&f);
    assert_eq!(min.cubes().len(), 1);
    assert_eq!(min.cubes()[0].to_string(), "1-");
}

#[test]
fn exact_minimisation_full_adder_carry() {
    // carry(a,b,c) = ab + ac + bc: 3 cubes, 6 literals, already minimal.
    let on = Cover::parse(3, "110 101 011 111").unwrap();
    let f = IncompleteFunction::completely_specified(on);
    let min = minimize_exact(&f);
    assert_eq!(min.cubes().len(), 3);
    assert_eq!(min.literal_count(), 6);
    assert!(f.is_implemented_by(&min));
}

#[test]
fn heuristic_minimisation_sound() {
    let on = Cover::parse(3, "110 101 011 111").unwrap();
    let f = IncompleteFunction::completely_specified(on);
    let min = minimize_heuristic(&f);
    assert!(f.is_implemented_by(&min));
}

#[test]
fn minimize_empty_and_tautology() {
    let empty = IncompleteFunction::completely_specified(Cover::empty(2));
    assert!(minimize_exact(&empty).is_empty());
    let full = IncompleteFunction::completely_specified(Cover::universe(2));
    let m = minimize_exact(&full);
    assert!(m.is_tautology());
    assert_eq!(m.literal_count(), 0);
}

#[test]
fn function_values() {
    let on = Cover::parse(2, "11").unwrap();
    let dc = Cover::parse(2, "01").unwrap();
    let f = IncompleteFunction::new(on, dc);
    assert_eq!(f.value(&[true, true]), Some(true));
    assert_eq!(f.value(&[false, true]), None);
    assert_eq!(f.value(&[false, false]), Some(false));
    let off = f.off_set();
    assert!(off.covers_minterm(&[false, false]));
    assert!(!off.covers_minterm(&[true, true]));
    assert!(!off.covers_minterm(&[false, true]));
}

#[test]
fn factoring_preserves_function() {
    // a b + a c + d
    let f = Cover::parse(4, "11-- 1-1- ---1").unwrap();
    let e = factor_cover(&f);
    for asg in assignments(4) {
        assert_eq!(e.eval(&asg), f.covers_minterm(&asg));
    }
    // a(b + c) + d has 4 literals vs 5 in the SOP.
    assert_eq!(e.literal_count(), 4);
}

#[test]
fn fanin_bounding() {
    let wide = crate::Expr::or((0..7).map(crate::Expr::Var).collect());
    let bounded = bound_fanin(&wide, 2);
    assert!(bounded.max_fanin() <= 2);
    for asg in assignments(7) {
        assert_eq!(bounded.eval(&asg), wide.eval(&asg));
    }
}

#[test]
fn expr_printing() {
    let f = Cover::parse(3, "10- -11").unwrap();
    let names: Vec<String> = ["a", "b", "c"].iter().map(|s| (*s).to_owned()).collect();
    assert_eq!(f.to_expr_string(&names), "a b' + b c");
    let e = crate::Expr::from_cover(&f);
    assert_eq!(e.to_string_named(&names), "a b' + b c");
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    const VARS: usize = 4;

    fn cube_strategy() -> impl Strategy<Value = Cube> {
        proptest::collection::vec(0..3u8, VARS).prop_map(|vals| {
            Cube::from_literals(
                vals.into_iter()
                    .map(|v| match v {
                        0 => crate::Literal::Zero,
                        1 => crate::Literal::One,
                        _ => crate::Literal::DontCare,
                    })
                    .collect(),
            )
        })
    }

    fn cover_strategy() -> impl Strategy<Value = Cover> {
        proptest::collection::vec(cube_strategy(), 0..6)
            .prop_map(|cubes| Cover::from_cubes(VARS, cubes))
    }

    proptest! {
        #[test]
        fn complement_is_pointwise_negation(f in cover_strategy()) {
            let nf = f.complement();
            for asg in assignments(VARS) {
                prop_assert_eq!(nf.covers_minterm(&asg), !f.covers_minterm(&asg));
            }
        }

        #[test]
        fn tautology_matches_truth_table(f in cover_strategy()) {
            let brute = assignments(VARS).all(|asg| f.covers_minterm(&asg));
            prop_assert_eq!(f.is_tautology(), brute);
        }

        #[test]
        fn exact_minimisation_implements(f in cover_strategy(), g in cover_strategy()) {
            // Use g \ f as the dc-set so on/dc are disjoint.
            let dc = g.subtract(&f);
            let func = IncompleteFunction::new(f.clone(), dc);
            let min = minimize_exact(&func);
            prop_assert!(func.is_implemented_by(&min));
            // The minimised cover never has more cubes than the on-set
            // needs minterm-wise; sanity: each on-minterm stays covered.
            for asg in assignments(VARS) {
                if f.covers_minterm(&asg) {
                    prop_assert!(min.covers_minterm(&asg));
                }
            }
        }

        #[test]
        fn heuristic_minimisation_implements(f in cover_strategy(), g in cover_strategy()) {
            let dc = g.subtract(&f);
            let func = IncompleteFunction::new(f.clone(), dc);
            let min = minimize_heuristic(&func);
            prop_assert!(func.is_implemented_by(&min));
        }

        #[test]
        fn exact_never_beaten_by_heuristic(f in cover_strategy()) {
            let func = IncompleteFunction::completely_specified(f);
            let exact = minimize_exact(&func);
            let heur = minimize_heuristic(&func);
            prop_assert!(exact.cubes().len() <= heur.cubes().len());
        }

        #[test]
        fn factoring_equivalent(f in cover_strategy()) {
            let e = factor_cover(&f);
            for asg in assignments(VARS) {
                prop_assert_eq!(e.eval(&asg), f.covers_minterm(&asg));
            }
        }

        #[test]
        fn bounded_fanin_equivalent(f in cover_strategy()) {
            let e = factor_cover(&f);
            let b = bound_fanin(&e, 2);
            prop_assert!(b.max_fanin() <= 2);
            for asg in assignments(VARS) {
                prop_assert_eq!(b.eval(&asg), e.eval(&asg));
            }
        }

        #[test]
        fn primes_are_maximal_implicants(f in cover_strategy()) {
            let func = IncompleteFunction::completely_specified(f.clone());
            for p in primes_of(&func) {
                // Implicant: contained in f.
                prop_assert!(f.covers_cube(&p));
                // Maximal: freeing any literal escapes f.
                for (v, _) in p.literals() {
                    let bigger = p.with(v, crate::Literal::DontCare);
                    prop_assert!(!f.covers_cube(&bigger));
                }
            }
        }
    }
}
