//! Cubes (product terms) over a fixed set of boolean variables.

use std::fmt;

/// The value a cube assigns to one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// The variable must be 0 (negative literal).
    Zero,
    /// The variable must be 1 (positive literal).
    One,
    /// The variable is unconstrained in this cube.
    DontCare,
}

impl Literal {
    /// `true` if this position constrains its variable.
    #[must_use]
    pub fn is_literal(self) -> bool {
        self != Literal::DontCare
    }
}

/// A product term over `n` variables, e.g. `a·¬c` over `{a,b,c}` = `1-0`.
///
/// Cubes use the textual convention of espresso PLA files: `0` for a
/// negative literal, `1` for a positive literal, `-` for an absent one.
///
/// # Example
///
/// ```
/// use boolmin::Cube;
/// let c = Cube::parse("1-0").unwrap();
/// assert!(c.covers_minterm(&[true, true, false]));
/// assert!(!c.covers_minterm(&[true, true, true]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    vals: Vec<Literal>,
}

impl Cube {
    /// The universal cube (all don't-cares) over `n` variables.
    #[must_use]
    pub fn universe(n: usize) -> Self {
        Cube {
            vals: vec![Literal::DontCare; n],
        }
    }

    /// Builds a cube from explicit literal values.
    #[must_use]
    pub fn from_literals(vals: Vec<Literal>) -> Self {
        Cube { vals }
    }

    /// Builds the minterm cube for a complete assignment.
    #[must_use]
    pub fn from_minterm(assignment: &[bool]) -> Self {
        Cube {
            vals: assignment
                .iter()
                .map(|&b| if b { Literal::One } else { Literal::Zero })
                .collect(),
        }
    }

    /// Parses the espresso notation (`0`, `1`, `-`).
    ///
    /// # Errors
    ///
    /// Returns `Err` with the offending character if any position is not
    /// one of `0`, `1`, `-`.
    pub fn parse(s: &str) -> Result<Self, char> {
        let mut vals = Vec::with_capacity(s.len());
        for ch in s.chars() {
            vals.push(match ch {
                '0' => Literal::Zero,
                '1' => Literal::One,
                '-' => Literal::DontCare,
                other => return Err(other),
            });
        }
        Ok(Cube { vals })
    }

    /// Number of variables this cube ranges over.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vals.len()
    }

    /// The literal at position `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[must_use]
    pub fn literal(&self, var: usize) -> Literal {
        self.vals[var]
    }

    /// Sets the literal at position `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set(&mut self, var: usize, lit: Literal) {
        self.vals[var] = lit;
    }

    /// Returns a copy with position `var` replaced by `lit`.
    #[must_use]
    pub fn with(&self, var: usize, lit: Literal) -> Self {
        let mut c = self.clone();
        c.set(var, lit);
        c
    }

    /// Number of literals (constrained positions).
    #[must_use]
    pub fn literal_count(&self) -> usize {
        self.vals.iter().filter(|v| v.is_literal()).count()
    }

    /// Iterates over `(var, Literal)` for the constrained positions.
    pub fn literals(&self) -> impl Iterator<Item = (usize, Literal)> + '_ {
        self.vals
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_literal())
            .map(|(i, v)| (i, *v))
    }

    /// `true` if the cube covers the given complete assignment.
    #[must_use]
    pub fn covers_minterm(&self, assignment: &[bool]) -> bool {
        self.vals.iter().zip(assignment).all(|(v, &b)| match v {
            Literal::Zero => !b,
            Literal::One => b,
            Literal::DontCare => true,
        })
    }

    /// `true` if `self` covers `other` (every minterm of `other` is in
    /// `self`).
    #[must_use]
    pub fn covers(&self, other: &Cube) -> bool {
        self.vals.iter().zip(&other.vals).all(|(a, b)| match a {
            Literal::DontCare => true,
            _ => a == b,
        })
    }

    /// Intersection of two cubes, or `None` if they are disjoint.
    #[must_use]
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let mut vals = Vec::with_capacity(self.vals.len());
        for (a, b) in self.vals.iter().zip(&other.vals) {
            vals.push(match (a, b) {
                (Literal::DontCare, x) => *x,
                (x, Literal::DontCare) => *x,
                (x, y) if x == y => *x,
                _ => return None,
            });
        }
        Some(Cube { vals })
    }

    /// Number of variables on which the cubes have opposing literals.
    #[must_use]
    pub fn distance(&self, other: &Cube) -> usize {
        self.vals
            .iter()
            .zip(&other.vals)
            .filter(|(a, b)| {
                matches!(
                    (a, b),
                    (Literal::Zero, Literal::One) | (Literal::One, Literal::Zero)
                )
            })
            .count()
    }

    /// Consensus of two cubes at distance 1, else `None`.
    ///
    /// The consensus merges the two cubes across their single conflicting
    /// variable — the merging step of iterated-consensus prime generation.
    #[must_use]
    pub fn consensus(&self, other: &Cube) -> Option<Cube> {
        if self.distance(other) != 1 {
            return None;
        }
        let mut vals = Vec::with_capacity(self.vals.len());
        for (a, b) in self.vals.iter().zip(&other.vals) {
            vals.push(match (a, b) {
                (Literal::Zero, Literal::One) | (Literal::One, Literal::Zero) => Literal::DontCare,
                (Literal::DontCare, x) | (x, Literal::DontCare) => *x,
                (x, _) => *x,
            });
        }
        Some(Cube { vals })
    }

    /// Smallest cube containing both inputs.
    #[must_use]
    pub fn supercube(&self, other: &Cube) -> Cube {
        let vals = self
            .vals
            .iter()
            .zip(&other.vals)
            .map(|(a, b)| if a == b { *a } else { Literal::DontCare })
            .collect();
        Cube { vals }
    }

    /// Cofactor of `self` with respect to a literal `(var = value)`:
    /// the restriction of this cube to the half-space, with the variable
    /// freed; `None` if the cube does not intersect the half-space.
    #[must_use]
    pub fn cofactor_literal(&self, var: usize, value: bool) -> Option<Cube> {
        match (self.vals[var], value) {
            (Literal::Zero, true) | (Literal::One, false) => None,
            _ => Some(self.with(var, Literal::DontCare)),
        }
    }

    /// Number of minterms the cube covers, as a power of two.
    #[must_use]
    pub fn minterm_count(&self) -> u128 {
        let free = self.vals.len() - self.literal_count();
        1u128 << free
    }

    /// Enumerates all minterms covered by the cube (each as a `Vec<bool>`).
    ///
    /// Intended for small variable counts; cost is `2^(free positions)`.
    #[must_use]
    pub fn minterms(&self) -> Vec<Vec<bool>> {
        let free: Vec<usize> = self
            .vals
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_literal())
            .map(|(i, _)| i)
            .collect();
        let mut out = Vec::with_capacity(1 << free.len());
        for bits in 0..(1u64 << free.len()) {
            let mut m: Vec<bool> = self
                .vals
                .iter()
                .map(|v| matches!(v, Literal::One))
                .collect();
            for (k, &i) in free.iter().enumerate() {
                m[i] = (bits >> k) & 1 == 1;
            }
            out.push(m);
        }
        out
    }

    /// Renders the cube as a product of named literals, e.g. `a·¬c`;
    /// the universal cube renders as `1`.
    ///
    /// # Panics
    ///
    /// Panics if `names` is shorter than the cube.
    #[must_use]
    pub fn to_expr_string(&self, names: &[String]) -> String {
        let mut parts = Vec::new();
        for (i, v) in self.vals.iter().enumerate() {
            match v {
                Literal::One => parts.push(names[i].clone()),
                Literal::Zero => parts.push(format!("{}'", names[i])),
                Literal::DontCare => {}
            }
        }
        if parts.is_empty() {
            "1".to_owned()
        } else {
            parts.join(" ")
        }
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.vals {
            let ch = match v {
                Literal::Zero => '0',
                Literal::One => '1',
                Literal::DontCare => '-',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}
