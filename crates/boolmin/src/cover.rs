//! Covers: sums of cubes, with the unate-recursive tautology/complement
//! paradigm.

use std::fmt;

use crate::cube::{Cube, Literal};

/// A sum (union) of [`Cube`]s over a fixed variable count.
///
/// # Example
///
/// ```
/// use boolmin::{Cover, Cube};
/// let f = Cover::from_cubes(2, vec![
///     Cube::parse("1-").unwrap(),
///     Cube::parse("-1").unwrap(),
/// ]);
/// assert!(f.covers_minterm(&[false, true]));
/// assert!(!f.covers_minterm(&[false, false]));
/// assert!(!f.is_tautology());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant false) over `n` variables.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Cover {
            num_vars: n,
            cubes: Vec::new(),
        }
    }

    /// The universal cover (constant true) over `n` variables.
    #[must_use]
    pub fn universe(n: usize) -> Self {
        Cover {
            num_vars: n,
            cubes: vec![Cube::universe(n)],
        }
    }

    /// Builds a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube ranges over a different variable count.
    #[must_use]
    pub fn from_cubes(n: usize, cubes: Vec<Cube>) -> Self {
        for c in &cubes {
            assert_eq!(c.num_vars(), n, "cube arity mismatch");
        }
        Cover { num_vars: n, cubes }
    }

    /// Parses a newline/whitespace-separated list of espresso-style cube
    /// strings, e.g. `"1-0 011"`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed token, if any.
    pub fn parse(n: usize, text: &str) -> Result<Self, String> {
        let mut cubes = Vec::new();
        for tok in text.split_whitespace() {
            let c = Cube::parse(tok).map_err(|ch| format!("bad character {ch:?} in {tok:?}"))?;
            if c.num_vars() != n {
                return Err(format!("cube {tok:?} has arity {} != {n}", c.num_vars()));
            }
            cubes.push(c);
        }
        Ok(Cover { num_vars: n, cubes })
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The cubes of the cover.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// `true` if the cover has no cubes (constant false).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total literal count over all cubes (a standard cost measure).
    #[must_use]
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Adds a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube arity differs from the cover's.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.num_vars(), self.num_vars, "cube arity mismatch");
        self.cubes.push(cube);
    }

    /// `true` if some cube covers the assignment.
    #[must_use]
    pub fn covers_minterm(&self, assignment: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.covers_minterm(assignment))
    }

    /// Union of two covers.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    #[must_use]
    pub fn union(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_vars, other.num_vars);
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover {
            num_vars: self.num_vars,
            cubes,
        }
    }

    /// Pairwise intersection of two covers.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    #[must_use]
    pub fn intersect(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_vars, other.num_vars);
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersect(b) {
                    cubes.push(c);
                }
            }
        }
        let mut out = Cover {
            num_vars: self.num_vars,
            cubes,
        };
        out.remove_contained();
        out
    }

    /// Removes cubes covered by other single cubes of the cover
    /// (single-cube containment cleanup).
    pub fn remove_contained(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        for c in cubes {
            if kept.iter().any(|k| k.covers(&c)) {
                continue;
            }
            kept.retain(|k| !c.covers(k));
            kept.push(c);
        }
        self.cubes = kept;
    }

    /// Cofactor of the cover with respect to the literal `(var = value)`.
    #[must_use]
    pub fn cofactor_literal(&self, var: usize, value: bool) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| c.cofactor_literal(var, value))
            .collect();
        Cover {
            num_vars: self.num_vars,
            cubes,
        }
    }

    /// Cofactor of the cover with respect to a cube (Shannon generalised).
    #[must_use]
    pub fn cofactor_cube(&self, cube: &Cube) -> Cover {
        let mut out = self.clone();
        for (var, lit) in cube.literals() {
            out = out.cofactor_literal(var, lit == Literal::One);
        }
        out
    }

    /// `true` if the cover is a tautology (covers every minterm).
    ///
    /// Implemented with the unate-recursive paradigm: unate covers are
    /// tautologies iff they contain the universal cube; binate covers are
    /// split on their most binate variable.
    #[must_use]
    pub fn is_tautology(&self) -> bool {
        // Quick exits.
        if self.cubes.iter().any(|c| c.literal_count() == 0) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        match self.most_binate_var() {
            None => {
                // Unate cover without the universal cube: a unate cover is
                // a tautology iff it contains the universal cube.
                false
            }
            Some(var) => {
                self.cofactor_literal(var, false).is_tautology()
                    && self.cofactor_literal(var, true).is_tautology()
            }
        }
    }

    /// `true` if `self` ⊇ `other` as sets of minterms.
    #[must_use]
    pub fn covers_cover(&self, other: &Cover) -> bool {
        other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// `true` if the cover covers every minterm of `cube`
    /// (cofactor-tautology test).
    #[must_use]
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        self.cofactor_cube(cube).is_tautology()
    }

    /// Complement of the cover, by the unate-recursive paradigm.
    #[must_use]
    pub fn complement(&self) -> Cover {
        if self.cubes.is_empty() {
            return Cover::universe(self.num_vars);
        }
        if self.cubes.iter().any(|c| c.literal_count() == 0) {
            return Cover::empty(self.num_vars);
        }
        if self.cubes.len() == 1 {
            return self.complement_single_cube(&self.cubes[0]);
        }
        let var = self.most_binate_var().unwrap_or_else(|| {
            // Unate: split on any constrained variable (first found).
            self.cubes
                .iter()
                .flat_map(|c| c.literals().map(|(v, _)| v))
                .next()
                .expect("non-empty non-universal cover has a literal")
        });
        let c0 = self.cofactor_literal(var, false).complement();
        let c1 = self.cofactor_literal(var, true).complement();
        // Merge: ¬f = ¬x·¬f0 + x·¬f1.
        let mut cubes = Vec::with_capacity(c0.cubes.len() + c1.cubes.len());
        for c in c0.cubes {
            cubes.push(c.with(var, Literal::Zero));
        }
        for c in c1.cubes {
            cubes.push(c.with(var, Literal::One));
        }
        let mut out = Cover {
            num_vars: self.num_vars,
            cubes,
        };
        out.remove_contained();
        out
    }

    fn complement_single_cube(&self, cube: &Cube) -> Cover {
        // De Morgan: complement of a product is the sum of complemented
        // literals.
        let mut cubes = Vec::new();
        for (var, lit) in cube.literals() {
            let flipped = match lit {
                Literal::Zero => Literal::One,
                Literal::One => Literal::Zero,
                Literal::DontCare => unreachable!("literals() yields no don't-cares"),
            };
            cubes.push(Cube::universe(self.num_vars).with(var, flipped));
        }
        Cover {
            num_vars: self.num_vars,
            cubes,
        }
    }

    /// The variable appearing most often in both phases, or `None` if the
    /// cover is unate.
    #[must_use]
    pub fn most_binate_var(&self) -> Option<usize> {
        let mut pos = vec![0usize; self.num_vars];
        let mut neg = vec![0usize; self.num_vars];
        for c in &self.cubes {
            for (var, lit) in c.literals() {
                match lit {
                    Literal::One => pos[var] += 1,
                    Literal::Zero => neg[var] += 1,
                    Literal::DontCare => {}
                }
            }
        }
        (0..self.num_vars)
            .filter(|&v| pos[v] > 0 && neg[v] > 0)
            .max_by_key(|&v| pos[v] + neg[v])
    }

    /// `true` if the cover is unate (no variable appears in both phases).
    #[must_use]
    pub fn is_unate(&self) -> bool {
        self.most_binate_var().is_none()
    }

    /// Enumerates all covered minterms (deduplicated, sorted).
    ///
    /// Cost is exponential in the don't-care positions; intended for the
    /// small functions of interface controllers and for tests.
    #[must_use]
    pub fn minterms(&self) -> Vec<Vec<bool>> {
        let mut out: Vec<Vec<bool>> = self.cubes.iter().flat_map(|c| c.minterms()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// `self ∧ ¬other`, as a new cover (sharp operation).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    #[must_use]
    pub fn subtract(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_vars, other.num_vars);
        self.intersect(&other.complement())
    }

    /// `true` if the two covers denote the same function.
    #[must_use]
    pub fn equivalent(&self, other: &Cover) -> bool {
        self.covers_cover(other) && other.covers_cover(self)
    }

    /// Renders as a sum-of-products over named variables, e.g. `a b' + c`.
    ///
    /// # Panics
    ///
    /// Panics if `names` is shorter than the variable count.
    #[must_use]
    pub fn to_expr_string(&self, names: &[String]) -> String {
        if self.cubes.is_empty() {
            return "0".to_owned();
        }
        self.cubes
            .iter()
            .map(|c| c.to_expr_string(names))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "(empty)");
        }
        let strs: Vec<String> = self.cubes.iter().map(ToString::to_string).collect();
        write!(f, "{}", strs.join(" "))
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty (the arity cannot be inferred) or if
    /// cube arities disagree. Prefer [`Cover::from_cubes`] when the arity is
    /// statically known.
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let n = cubes
            .first()
            .map(Cube::num_vars)
            .expect("cannot infer arity of an empty cover; use Cover::empty");
        Cover::from_cubes(n, cubes)
    }
}
