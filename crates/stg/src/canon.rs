//! Canonical serialisation and content hashing of STGs.
//!
//! The synthesis flow (check → CSC → logic → verify) is deterministic in
//! its inputs, which makes its results content-addressable: two
//! structurally identical specifications must map to the same cache key
//! regardless of the order their places and transitions happened to be
//! inserted in. This module provides that stable identity:
//!
//! * [`canonical_text`] — a sorted, line-based rendering of an [`Stg`]
//!   that is invariant under place/transition insertion order (signals
//!   are sorted by name, transitions by label token, places by their
//!   arc neighbourhoods);
//! * [`Digest`] / [`Sha256`] — a self-contained SHA-256 implementation
//!   (the workspace builds offline, so no external hashing crate);
//! * [`stg_digest`] / [`keyed_digest`] — content hashes of a
//!   specification, optionally salted with configuration strings
//!   (backend, architecture, cache schema version, …).
//!
//! The canonicalisation is conservative: it never identifies two
//! semantically different STGs (every signal, label, arc, token count and
//! explicit initial value is part of the text), but it may distinguish
//! isomorphic nets whose repeated-edge instance numbers (`a+/1` vs
//! `a+/2`) were assigned differently. For a cache key that trade-off is
//! exactly right — a false miss costs a recomputation, a false hit would
//! return the wrong circuit.

use std::fmt;
use std::str::FromStr;

use crate::model::{SignalKind, Stg};

/// Version tag folded into every digest; bump when the canonical format
/// changes so stale cache entries can never match.
pub const CANON_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Incremental SHA-256 hasher (FIPS 180-4).
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buffer: [u8; 64],
    buffered: usize,
    /// Total message length in bytes.
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Starts a fresh hash.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09_e667,
                0xbb67_ae85,
                0x3c6e_f372,
                0xa54f_f53a,
                0x510e_527f,
                0x9b05_688c,
                0x1f83_d9ab,
                0x5be0_cd19,
            ],
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Finishes the hash and returns the digest.
    #[must_use]
    pub fn finish(mut self) -> Digest {
        let bit_length = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length is appended directly (update would double-count it).
        self.buffer[56..64].copy_from_slice(&bit_length.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// A 256-bit content hash, rendered as 64 lowercase hex digits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The lowercase-hex rendering.
    #[must_use]
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
            s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
        }
        s
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({self})")
    }
}

impl FromStr for Digest {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 64 {
            return Err(format!("digest must be 64 hex digits, got {}", s.len()));
        }
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            let hi = s.as_bytes()[2 * i];
            let lo = s.as_bytes()[2 * i + 1];
            let nib = |c: u8| -> Result<u8, String> {
                (c as char)
                    .to_digit(16)
                    .map(|d| d as u8)
                    .ok_or_else(|| format!("bad hex digit {:?}", c as char))
            };
            *byte = (nib(hi)? << 4) | nib(lo)?;
        }
        Ok(Digest(out))
    }
}

/// SHA-256 of a byte string.
#[must_use]
pub fn digest_bytes(bytes: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finish()
}

// ---------------------------------------------------------------------
// Canonical text
// ---------------------------------------------------------------------

/// The canonical, insertion-order-independent rendering of an STG.
///
/// Layout (all sections sorted lexicographically):
///
/// ```text
/// canon 1
/// model <name>
/// signal <name> input|output|internal [=0|=1]
/// transition <token>
/// place <tokens> [<sorted preset tokens>] -> [<sorted postset tokens>] <name?>
/// ```
///
/// Transition tokens are label strings (`dsr+`, `d-/2`) for labelled
/// transitions and `dummy:<name>` for dummies. Auto-generated place
/// names (starting with `<`) are elided — such places are identified
/// purely by their arc neighbourhoods, which is what makes the rendering
/// stable when the same net is built in a different order.
#[must_use]
pub fn canonical_text(stg: &Stg) -> String {
    use std::fmt::Write as _;
    let net = stg.net();
    let token = |t: petri::TransitionId| -> String {
        match stg.label(t) {
            Some(_) => stg.label_string(t),
            None => format!("dummy:{}", net.transition_name(t)),
        }
    };

    let mut out = String::new();
    let _ = writeln!(out, "canon {CANON_VERSION}");
    let _ = writeln!(out, "model {}", stg.name());

    let mut signal_lines: Vec<String> = stg
        .signals()
        .map(|s| {
            let kind = match stg.signal_kind(s) {
                SignalKind::Input => "input",
                SignalKind::Output => "output",
                SignalKind::Internal => "internal",
            };
            let initial = match stg.initial_values() {
                Some(v) => {
                    if v[s.index()] {
                        " =1"
                    } else {
                        " =0"
                    }
                }
                None => "",
            };
            format!("signal {} {kind}{initial}", stg.signal_name(s))
        })
        .collect();
    signal_lines.sort();
    let mut transition_lines: Vec<String> = net
        .transitions()
        .map(|t| format!("transition {}", token(t)))
        .collect();
    transition_lines.sort();
    let mut place_lines: Vec<String> = net
        .places()
        .map(|p| {
            let mut pre: Vec<String> = net.place_preset(p).iter().map(|&t| token(t)).collect();
            let mut post: Vec<String> = net.place_postset(p).iter().map(|&t| token(t)).collect();
            pre.sort();
            post.sort();
            let name = net.place_name(p);
            let shown = if name.starts_with('<') { "" } else { name };
            format!(
                "place {} [{}] -> [{}] {shown}",
                net.initial_tokens(p),
                pre.join(","),
                post.join(","),
            )
        })
        .collect();
    place_lines.sort();
    for line in signal_lines
        .iter()
        .chain(transition_lines.iter())
        .chain(place_lines.iter())
    {
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Content hash of a specification: SHA-256 of its canonical text.
#[must_use]
pub fn stg_digest(stg: &Stg) -> Digest {
    keyed_digest(stg, &[])
}

/// Content hash of a specification salted with configuration strings
/// (flow options, cache schema versions, stage tags, …). Each extra is
/// length-prefixed so distinct extra lists can never collide by
/// concatenation.
#[must_use]
pub fn keyed_digest(stg: &Stg, extras: &[&str]) -> Digest {
    let mut h = Sha256::new();
    let text = canonical_text(stg);
    h.update(&(text.len() as u64).to_be_bytes());
    h.update(text.as_bytes());
    for extra in extras {
        h.update(&(extra.len() as u64).to_be_bytes());
        h.update(extra.as_bytes());
    }
    h.finish()
}
