//! State-encoding analysis: USC and CSC (§2.1, §3.1).
//!
//! *"Completeness of state encoding [checks] that there are no conflicts in
//! definition of Boolean functions for each non-input signal."* Two states
//! conflict if they carry the same binary code; the conflict matters for
//! implementability (CSC) when the states disagree on the excitation of
//! some non-input signal.
//!
//! The *verdict* queries ([`has_usc`], [`has_csc`],
//! [`csc_conflict_pair_count`]) are phrased over the set-level
//! [`StateSpace`] API — marking counts, code projections, excitation
//! regions — so the resident-BDD backend answers them without enumerating
//! states. Only the witness-producing [`encoding_conflicts`] /
//! [`csc_conflicts`] materialise state indices, and only for the codes
//! that are actually duplicated.

use crate::model::{SignalEdge, SignalId, Stg};
use crate::state_space::{StateSet, StateSpace};

/// A pair of states with identical binary codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodingConflict {
    /// The two state indices (ascending).
    pub states: (usize, usize),
    /// The shared binary code.
    pub code: Vec<bool>,
    /// Non-input signals whose excitation differs between the two states —
    /// empty for harmless USC conflicts, non-empty for CSC conflicts.
    pub conflicting_signals: Vec<SignalId>,
}

impl EncodingConflict {
    /// `true` if this conflict violates *Complete State Coding*.
    #[must_use]
    pub fn is_csc(&self) -> bool {
        !self.conflicting_signals.is_empty()
    }
}

/// All pairs of states with equal codes (*Unique State Coding* violations),
/// annotated with the non-input signals whose excitation disagrees.
///
/// This is the witness extractor: per-state decode happens only for the
/// states of genuinely duplicated codes. For verdicts and counts use
/// [`has_usc`] / [`has_csc`] / [`csc_conflict_pair_count`], which never
/// materialise states.
#[must_use]
pub fn encoding_conflicts<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> Vec<EncodingConflict> {
    let non_inputs = stg.non_input_signals();
    let mut out = Vec::new();
    for (code, states) in sg.duplicate_code_classes() {
        for (a_idx, &a) in states.iter().enumerate() {
            for &b in &states[a_idx + 1..] {
                let conflicting_signals: Vec<SignalId> = non_inputs
                    .iter()
                    .copied()
                    .filter(|&s| excitation_of(stg, sg, a, s) != excitation_of(stg, sg, b, s))
                    .collect();
                out.push(EncodingConflict {
                    states: (a, b),
                    code: code.clone(),
                    conflicting_signals,
                });
            }
        }
    }
    out
}

fn excitation_of<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    state: usize,
    s: SignalId,
) -> Option<SignalEdge> {
    sg.excitations(stg, state)
        .into_iter()
        .find(|&(_, sig, _)| sig == s)
        .map(|(_, _, e)| e)
}

/// `true` if the STG has *Unique State Coding*: no two states share a
/// code — equivalently, the number of distinct codes equals the number of
/// states (a pure counting query: two BDD counts on the resident
/// backend).
#[must_use]
pub fn has_usc<S: StateSpace + ?Sized>(_stg: &Stg, sg: &S) -> bool {
    sg.distinct_code_count() == sg.marking_count()
}

/// The three excitation classes of one signal: rising-excited,
/// falling-excited and unexcited states.
fn excitation_classes<S: StateSpace + ?Sized>(stg: &Stg, sg: &S, s: SignalId) -> [StateSet; 3] {
    let rise = sg.excitation_region(stg, s, SignalEdge::Rise);
    let fall = sg.excitation_region(stg, s, SignalEdge::Fall);
    let excited = sg.set_union(&rise, &fall);
    let none = sg.set_minus(&sg.all_states(), &excited);
    [rise, fall, none]
}

/// `true` if the STG has *Complete State Coding*: states sharing a code
/// agree on all non-input excitations (§3.1 — the property logic
/// synthesis requires).
///
/// Set-level formulation: a CSC conflict exists iff, for some non-input
/// signal, two of its three excitation classes (rising / falling /
/// unexcited) contain states with a common code.
#[must_use]
pub fn has_csc<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> bool {
    if has_usc(stg, sg) {
        return true;
    }
    if !sg.set_level_native() {
        // Enumerating backends: one indexed pass over the duplicated
        // classes beats per-signal full-space scans (this verdict sits
        // in the CSC sweeps' per-candidate hot path).
        let non_inputs = stg.non_input_signals();
        return sg.duplicate_code_classes().iter().all(|(_, states)| {
            let first = excitation_profile(stg, sg, states[0], &non_inputs);
            states[1..]
                .iter()
                .all(|&b| excitation_profile(stg, sg, b, &non_inputs) == first)
        });
    }
    for s in stg.non_input_signals() {
        let [rise, fall, none] = excitation_classes(stg, sg, s);
        if sg.sets_share_code(&rise, &fall)
            || sg.sets_share_code(&rise, &none)
            || sg.sets_share_code(&fall, &none)
        {
            return false;
        }
    }
    true
}

/// The non-input excitation profile of one state (the equivalence whose
/// disagreement on a shared code *is* a CSC conflict).
fn excitation_profile<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    state: usize,
    non_inputs: &[SignalId],
) -> Vec<Option<SignalEdge>> {
    let excitations = sg.excitations(stg, state);
    non_inputs
        .iter()
        .map(|&s| {
            excitations
                .iter()
                .find(|&&(_, sig, _)| sig == s)
                .map(|&(_, _, e)| e)
        })
        .collect()
}

/// Number of CSC-violating state pairs: same-code pairs disagreeing on
/// some non-input excitation.
///
/// Counted per duplicated code by refining its state set against the
/// excitation classes of every non-input signal: pairs inside one
/// refined part agree everywhere, so `C(total, 2) − Σ C(part, 2)` is the
/// conflict count — set counts only, witnesses are never materialised.
#[must_use]
pub fn csc_conflict_pair_count<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> usize {
    if has_usc(stg, sg) {
        return 0;
    }
    let non_inputs = stg.non_input_signals();
    if !sg.set_level_native() {
        // Enumerating backends: group each duplicated class by profile.
        let pairs_of = |n: usize| n * n.saturating_sub(1) / 2;
        let mut conflicts = 0usize;
        for (_, states) in sg.duplicate_code_classes() {
            let mut groups: std::collections::HashMap<Vec<Option<SignalEdge>>, usize> =
                std::collections::HashMap::new();
            for &s in &states {
                *groups
                    .entry(excitation_profile(stg, sg, s, &non_inputs))
                    .or_default() += 1;
            }
            let agreeing: usize = groups.values().map(|&n| pairs_of(n)).sum();
            conflicts += pairs_of(states.len()) - agreeing;
        }
        return conflicts;
    }
    let classes: Vec<[StateSet; 3]> = non_inputs
        .iter()
        .map(|&s| excitation_classes(stg, sg, s))
        .collect();
    let pairs_of = |n: u128| n * n.saturating_sub(1) / 2;
    let mut conflicts = 0u128;
    for code in duplicate_codes(sg) {
        let set = sg.states_with_code_set(&code);
        let total = sg.set_count(&set);
        if total < 2 {
            continue;
        }
        // Refine the code's states by excitation profile.
        let mut parts = vec![set];
        for class3 in &classes {
            let mut next = Vec::with_capacity(parts.len());
            for part in &parts {
                if sg.set_count(part) < 2 {
                    next.push(part.clone());
                    continue;
                }
                for class in class3 {
                    let piece = sg.set_intersect(part, class);
                    if !sg.set_is_empty(&piece) {
                        next.push(piece);
                    }
                }
            }
            parts = next;
        }
        let agreeing: u128 = parts.iter().map(|p| pairs_of(sg.set_count(p))).sum();
        conflicts += pairs_of(total) - agreeing;
    }
    usize::try_from(conflicts).expect("conflict pair count fits usize")
}

/// The duplicated codes of a space, without state materialisation.
fn duplicate_codes<S: StateSpace + ?Sized>(sg: &S) -> Vec<Vec<bool>> {
    if sg.set_level_native() {
        // Enumerate codes from the projection and keep the duplicated
        // ones by count — states stay symbolic.
        sg.set_codes(&sg.all_states())
            .into_iter()
            .filter(|c| sg.set_count(&sg.states_with_code_set(c)) > 1)
            .collect()
    } else {
        sg.duplicate_code_classes()
            .into_iter()
            .map(|(c, _)| c)
            .collect()
    }
}

/// Only the CSC-violating conflicts (witness-producing; see
/// [`encoding_conflicts`]).
#[must_use]
pub fn csc_conflicts<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> Vec<EncodingConflict> {
    encoding_conflicts(stg, sg)
        .into_iter()
        .filter(EncodingConflict::is_csc)
        .collect()
}
