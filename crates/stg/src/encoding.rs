//! State-encoding analysis: USC and CSC (§2.1, §3.1).
//!
//! *"Completeness of state encoding [checks] that there are no conflicts in
//! definition of Boolean functions for each non-input signal."* Two states
//! conflict if they carry the same binary code; the conflict matters for
//! implementability (CSC) when the states disagree on the excitation of
//! some non-input signal.

use std::collections::HashMap;

use crate::model::{SignalEdge, SignalId, Stg};
use crate::state_space::StateSpace;

/// A pair of states with identical binary codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodingConflict {
    /// The two state indices (ascending).
    pub states: (usize, usize),
    /// The shared binary code.
    pub code: Vec<bool>,
    /// Non-input signals whose excitation differs between the two states —
    /// empty for harmless USC conflicts, non-empty for CSC conflicts.
    pub conflicting_signals: Vec<SignalId>,
}

impl EncodingConflict {
    /// `true` if this conflict violates *Complete State Coding*.
    #[must_use]
    pub fn is_csc(&self) -> bool {
        !self.conflicting_signals.is_empty()
    }
}

/// All pairs of states with equal codes (*Unique State Coding* violations),
/// annotated with the non-input signals whose excitation disagrees.
#[must_use]
pub fn encoding_conflicts<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> Vec<EncodingConflict> {
    let mut by_code: HashMap<Vec<bool>, Vec<usize>> = HashMap::new();
    for i in 0..sg.num_states() {
        by_code.entry(sg.code(i).to_vec()).or_default().push(i);
    }
    let non_inputs = stg.non_input_signals();
    let mut out = Vec::new();
    let mut groups: Vec<(Vec<bool>, Vec<usize>)> = by_code.into_iter().collect();
    groups.sort();
    for (code, states) in groups {
        for (a_idx, &a) in states.iter().enumerate() {
            for &b in &states[a_idx + 1..] {
                let conflicting_signals: Vec<SignalId> = non_inputs
                    .iter()
                    .copied()
                    .filter(|&s| excitation_of(stg, sg, a, s) != excitation_of(stg, sg, b, s))
                    .collect();
                out.push(EncodingConflict {
                    states: (a, b),
                    code: code.clone(),
                    conflicting_signals,
                });
            }
        }
    }
    out
}

fn excitation_of<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    state: usize,
    s: SignalId,
) -> Option<SignalEdge> {
    sg.excitations(stg, state)
        .into_iter()
        .find(|&(_, sig, _)| sig == s)
        .map(|(_, _, e)| e)
}

/// `true` if the STG has *Unique State Coding*: no two states share a code.
#[must_use]
pub fn has_usc<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> bool {
    encoding_conflicts(stg, sg).is_empty()
}

/// `true` if the STG has *Complete State Coding*: states sharing a code
/// agree on all non-input excitations (§3.1 — the property logic synthesis
/// requires).
#[must_use]
pub fn has_csc<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> bool {
    encoding_conflicts(stg, sg).iter().all(|c| !c.is_csc())
}

/// Only the CSC-violating conflicts.
#[must_use]
pub fn csc_conflicts<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> Vec<EncodingConflict> {
    encoding_conflicts(stg, sg)
        .into_iter()
        .filter(EncodingConflict::is_csc)
        .collect()
}
