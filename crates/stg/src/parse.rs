//! Reader and writer for the `.g` (astg / petrify / SIS) text format —
//! the interchange format of the tool the paper's flow is built around
//! (§7 mentions `petrify`; its input format is reproduced here).
//!
//! Supported sections: `.model`, `.inputs`, `.outputs`, `.internal`,
//! `.dummy`, `.initial`, `.graph`, `.marking`, `.end`; transition tokens
//! `sig+`, `sig-`, `sig+/2`; explicit places (any other token on the left
//! of a `.graph` line); markings `{ p1 <a+,b-> }`.
//!
//! `.initial sig=1 sig=0 ...` pins explicit initial signal values (the
//! builder's `set_initial_values`); signals not listed default to `0`.
//! The writer emits the directive only when the STG carries explicit
//! values, so specs without them round-trip to byte-identical canonical
//! text.

use std::collections::HashMap;
use std::fmt;

use petri::{PlaceId, TransitionId};

use crate::model::{SignalEdge, SignalId, SignalKind, Stg, StgBuilder};

/// Errors from `.g` parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGError {
    /// 1-based line of the offending construct (0 = global).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseGError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseGError {}

fn err(line: usize, message: impl Into<String>) -> ParseGError {
    ParseGError {
        line,
        message: message.into(),
    }
}

/// A parsed transition token: signal name, edge, instance.
fn parse_transition_token(tok: &str) -> Option<(String, SignalEdge, u32)> {
    let (base, instance) = match tok.split_once('/') {
        Some((b, i)) => (b, i.parse().ok()?),
        None => (tok, 1),
    };
    let edge = if base.ends_with('+') {
        SignalEdge::Rise
    } else if base.ends_with('-') {
        SignalEdge::Fall
    } else {
        return None;
    };
    let name = &base[..base.len() - 1];
    if name.is_empty() {
        return None;
    }
    Some((name.to_owned(), edge, instance))
}

/// Parses an STG from `.g` text.
///
/// # Errors
///
/// Returns a [`ParseGError`] describing the first malformed construct:
/// unknown signals in the graph section, re-declared signals, bad marking
/// tokens, missing `.graph`.
pub fn parse_g(text: &str) -> Result<Stg, ParseGError> {
    let mut name = "stg".to_owned();
    let mut declared: Vec<(String, SignalKind)> = Vec::new();
    let mut dummies: Vec<String> = Vec::new();
    let mut signal_ids: HashMap<String, SignalId> = HashMap::new();
    let mut transitions: HashMap<String, TransitionId> = HashMap::new();
    let mut places: HashMap<String, PlaceId> = HashMap::new();
    // Arcs recorded as (from-token, to-token, line) and resolved after the
    // graph section so forward references work.
    let mut graph_lines: Vec<(usize, Vec<String>)> = Vec::new();
    let mut marking_tokens: Vec<(usize, String)> = Vec::new();
    let mut initial_tokens: Vec<(usize, String)> = Vec::new();
    let mut in_graph = false;
    let mut saw_graph = false;

    for (lineno0, raw) in text.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".model") {
            name = rest.trim().to_owned();
        } else if let Some(rest) = line.strip_prefix(".inputs") {
            for tok in rest.split_whitespace() {
                declared.push((tok.to_owned(), SignalKind::Input));
            }
        } else if let Some(rest) = line.strip_prefix(".outputs") {
            for tok in rest.split_whitespace() {
                declared.push((tok.to_owned(), SignalKind::Output));
            }
        } else if let Some(rest) = line.strip_prefix(".internal") {
            for tok in rest.split_whitespace() {
                declared.push((tok.to_owned(), SignalKind::Internal));
            }
        } else if let Some(rest) = line.strip_prefix(".dummy") {
            for tok in rest.split_whitespace() {
                dummies.push(tok.to_owned());
            }
        } else if let Some(rest) = line.strip_prefix(".initial") {
            for tok in rest.split_whitespace() {
                initial_tokens.push((lineno, tok.to_owned()));
            }
        } else if line.starts_with(".graph") {
            in_graph = true;
            saw_graph = true;
        } else if let Some(rest) = line.strip_prefix(".marking") {
            in_graph = false;
            let inner = rest.trim().trim_start_matches('{').trim_end_matches('}');
            // Tokens are either plain place names or `<a+,b->` pairs; the
            // latter contain no spaces in well-formed files.
            for tok in inner.split_whitespace() {
                marking_tokens.push((lineno, tok.to_owned()));
            }
        } else if line.starts_with(".end") {
            in_graph = false;
        } else if line.starts_with('.') {
            return Err(err(lineno, format!("unknown directive {line:?}")));
        } else if in_graph {
            let toks: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
            if toks.len() < 2 {
                return Err(err(
                    lineno,
                    "graph line needs a source and at least one target",
                ));
            }
            graph_lines.push((lineno, toks));
        } else {
            return Err(err(
                lineno,
                format!("unexpected text outside sections: {line:?}"),
            ));
        }
    }
    if !saw_graph {
        return Err(err(0, "missing .graph section"));
    }

    // Build signals.
    let mut b = StgBuilder::new(name);
    for (n, kind) in &declared {
        if signal_ids.contains_key(n) {
            return Err(err(0, format!("signal {n:?} declared twice")));
        }
        let id = b.add_signal(n.clone(), *kind);
        signal_ids.insert(n.clone(), id);
    }

    // Explicit initial values (`.initial sig=0 sig=1 ...`). Unlisted
    // signals default to 0, matching the writer which always lists all.
    if !initial_tokens.is_empty() {
        let mut values = vec![false; declared.len()];
        for (lineno, tok) in &initial_tokens {
            let Some((sig, val)) = tok.split_once('=') else {
                return Err(err(*lineno, format!("malformed initial value {tok:?}")));
            };
            let Some(&id) = signal_ids.get(sig) else {
                return Err(err(
                    *lineno,
                    format!("undeclared signal in .initial {tok:?}"),
                ));
            };
            values[id.index()] = match val {
                "0" => false,
                "1" => true,
                _ => {
                    return Err(err(
                        *lineno,
                        format!("initial value {tok:?} must be 0 or 1"),
                    ))
                }
            };
        }
        b.set_initial_values(values);
    }

    // First pass: create transitions (and remember explicit places).
    let ensure_node = |b: &mut StgBuilder,
                       tok: &str,
                       lineno: usize,
                       transitions: &mut HashMap<String, TransitionId>,
                       places: &mut HashMap<String, PlaceId>|
     -> Result<(), ParseGError> {
        if transitions.contains_key(tok) || places.contains_key(tok) {
            return Ok(());
        }
        if let Some((sig, edge, _instance)) = parse_transition_token(tok) {
            if let Some(&id) = signal_ids.get(&sig) {
                let t = b.add_edge(id, edge);
                transitions.insert(tok.to_owned(), t);
                return Ok(());
            }
            // A +/- suffixed token with unknown signal is an error, not a
            // place: places may not end in +/-.
            return Err(err(
                lineno,
                format!("undeclared signal in transition {tok:?}"),
            ));
        }
        if dummies.contains(&tok.to_owned()) {
            let t = b.add_dummy(tok);
            transitions.insert(tok.to_owned(), t);
        } else {
            let p = b.add_place(tok, 0);
            places.insert(tok.to_owned(), p);
        }
        Ok(())
    };

    for (lineno, toks) in &graph_lines {
        for tok in toks {
            ensure_node(&mut b, tok, *lineno, &mut transitions, &mut places)?;
        }
    }

    // Second pass: arcs. Place→transition, transition→place, or
    // transition→transition (implicit place).
    let mut implicit: HashMap<(TransitionId, TransitionId), PlaceId> = HashMap::new();
    for (lineno, toks) in &graph_lines {
        let src = &toks[0];
        for dst in &toks[1..] {
            match (
                transitions.get(src),
                places.get(src),
                transitions.get(dst),
                places.get(dst),
            ) {
                (Some(&t1), _, Some(&t2), _) => {
                    let p = b.connect(t1, t2);
                    implicit.insert((t1, t2), p);
                }
                (Some(&t), _, _, Some(&p)) => b.arc_tp(t, p),
                (_, Some(&p), Some(&t), _) => b.arc_pt(p, t),
                (_, Some(_), _, Some(_)) => {
                    return Err(err(*lineno, format!("place-to-place arc {src} -> {dst}")));
                }
                _ => return Err(err(*lineno, format!("unresolved arc {src} -> {dst}"))),
            }
        }
    }

    // Markings.
    for (lineno, tok) in &marking_tokens {
        if let Some(inner) = tok.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
            let Some((a, bb)) = inner.split_once(',') else {
                return Err(err(
                    *lineno,
                    format!("malformed implicit-place marking {tok:?}"),
                ));
            };
            let (Some(&t1), Some(&t2)) = (transitions.get(a), transitions.get(bb)) else {
                return Err(err(
                    *lineno,
                    format!("unknown transitions in marking {tok:?}"),
                ));
            };
            let Some(&p) = implicit.get(&(t1, t2)) else {
                return Err(err(
                    *lineno,
                    format!("no implicit place for marking {tok:?}"),
                ));
            };
            b.mark_place(p, 1);
        } else if let Some(&p) = places.get(tok.as_str()) {
            b.mark_place(p, 1);
        } else {
            return Err(err(*lineno, format!("unknown place {tok:?} in marking")));
        }
    }

    Ok(b.build())
}

/// Serialises an STG to `.g` text; `parse_g(&write_g(&stg))` reproduces an
/// equivalent STG (same signals, transitions, arcs, marking, explicit
/// initial values — hence an identical canonical digest).
#[must_use]
pub fn write_g(stg: &Stg) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", stg.name());
    for (directive, kind) in [
        (".inputs", SignalKind::Input),
        (".outputs", SignalKind::Output),
        (".internal", SignalKind::Internal),
    ] {
        let names: Vec<&str> = stg
            .signals()
            .filter(|&s| stg.signal_kind(s) == kind)
            .map(|s| stg.signal_name(s))
            .collect();
        if !names.is_empty() {
            let _ = writeln!(out, "{directive} {}", names.join(" "));
        }
    }
    if let Some(values) = stg.initial_values() {
        let rendered: Vec<String> = stg
            .signals()
            .map(|s| format!("{}={}", stg.signal_name(s), u8::from(values[s.index()])))
            .collect();
        let _ = writeln!(out, ".initial {}", rendered.join(" "));
    }
    let dummies: Vec<String> = stg
        .net()
        .transitions()
        .filter(|&t| stg.label(t).is_none())
        .map(|t| stg.net().transition_name(t).to_owned())
        .collect();
    if !dummies.is_empty() {
        let _ = writeln!(out, ".dummy {}", dummies.join(" "));
    }
    let _ = writeln!(out, ".graph");
    let net = stg.net();
    // Emit arcs. Implicit places (single producer, single consumer, name
    // starting with '<') print as transition→transition arcs; everything
    // else prints explicitly.
    let is_implicit = |p: petri::PlaceId| {
        net.place_name(p).starts_with('<')
            && net.place_preset(p).len() == 1
            && net.place_postset(p).len() == 1
    };
    for t in net.transitions() {
        let mut targets: Vec<String> = Vec::new();
        for &p in net.postset(t) {
            if is_implicit(p) {
                targets.push(stg.label_string(net.place_postset(p)[0]));
            } else {
                targets.push(net.place_name(p).to_owned());
            }
        }
        if !targets.is_empty() {
            let _ = writeln!(out, "{} {}", stg.label_string(t), targets.join(" "));
        }
    }
    for p in net.places() {
        if is_implicit(p) {
            continue;
        }
        let targets: Vec<String> = net
            .place_postset(p)
            .iter()
            .map(|&t| stg.label_string(t))
            .collect();
        if !targets.is_empty() {
            let _ = writeln!(out, "{} {}", net.place_name(p), targets.join(" "));
        }
    }
    // Marking.
    let mut marks: Vec<String> = Vec::new();
    for p in net.places() {
        if net.initial_tokens(p) > 0 {
            if is_implicit(p) {
                let t1 = net.place_preset(p)[0];
                let t2 = net.place_postset(p)[0];
                marks.push(format!(
                    "<{},{}>",
                    stg.label_string(t1),
                    stg.label_string(t2)
                ));
            } else {
                marks.push(net.place_name(p).to_owned());
            }
        }
    }
    // Sorted for a stable rendering regardless of place creation order.
    marks.sort_unstable();
    let _ = writeln!(out, ".marking {{ {} }}", marks.join(" "));
    let _ = writeln!(out, ".end");
    out
}
