//! Signal Transition Graphs (STGs): Petri nets whose transitions are
//! interpreted as rising/falling signal edges (§1.1 of the DAC'98 tutorial:
//! *"Petri Nets with such signal interpretations are called Signal
//! Transition Graphs"*).
//!
//! This crate layers the signal interpretation on top of the [`petri`]
//! kernel and provides everything §1–§2 of the paper needs:
//!
//! * [`Stg`] — the model: typed signals (input/output/internal/dummy),
//!   labelled transitions, construction API ([`StgBuilder`]);
//! * [`parse`] — reader/writer for the `.g` (astg, petrify) text format;
//! * [`canon`] — canonical serialisation and SHA-256 content hashing
//!   (the identity the synthesis-service result cache is addressed by);
//! * [`StateSpace`] — the pluggable state-space abstraction every
//!   analysis and synthesis stage consumes, with two engines selected by
//!   [`Backend`]: the explicit [`StateGraph`] (§1.4, Fig. 4) and the
//!   BDD-backed [`SymbolicStateSpace`] (§2.2);
//! * [`encoding`] — USC/CSC conflict detection (§2.1, §3.1);
//! * [`persistency`] — output-persistency analysis (§2.1);
//! * [`properties`] — the aggregated implementability report;
//! * [`examples`] — the VME-bus controller specifications of Figs. 3/5/7;
//! * [`waveform`] — ASCII waveform rendering of firing traces (Fig. 2).
//!
//! # Example
//!
//! ```
//! use stg::{examples, StateGraph};
//!
//! let vme = examples::vme_read();
//! let sg = StateGraph::build(&vme)?;
//! assert_eq!(sg.num_states(), 14); // Fig. 4 of the paper
//! # Ok::<(), stg::StgError>(())
//! ```

pub mod canon;
pub mod encoding;
pub mod examples;
mod model;
pub mod parse;
pub mod persistency;
pub mod properties;
mod state_graph;
mod state_space;
mod symbolic;
mod symbolic_set;
pub mod waveform;

pub use model::{SignalEdge, SignalId, SignalKind, Stg, StgBuilder, TransitionLabel};
pub use state_graph::{SgState, StateGraph, StgError};
pub use state_space::{Backend, BuildContext, StateSet, StateSpace, DEFAULT_STATE_BOUND};
pub use symbolic::{SymbolicStateSpace, SymbolicStats};
pub use symbolic_set::{SymbolicSetSpace, MATERIALISE_LIMIT};

#[cfg(test)]
mod tests;
