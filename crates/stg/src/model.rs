//! The STG model: signals, edge labels and the builder API.

use std::collections::HashMap;
use std::fmt;

use petri::{PetriNet, PlaceId, TransitionId};

/// Identifier of a signal within one [`Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Index of the signal in the STG's signal list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The role of a signal (§2.1 distinguishes input from non-input — output
/// and internal — signals; dummies label no signal at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Driven by the environment.
    Input,
    /// Driven by the circuit, visible at the interface.
    Output,
    /// Driven by the circuit, invisible outside (e.g. state signals).
    Internal,
}

impl SignalKind {
    /// `true` for output and internal signals (the ones logic is
    /// synthesised for).
    #[must_use]
    pub fn is_non_input(self) -> bool {
        !matches!(self, SignalKind::Input)
    }
}

/// Direction of a signal edge: rising (`+`) or falling (`−`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SignalEdge {
    /// `0 → 1`, written `a+`.
    Rise,
    /// `1 → 0`, written `a-`.
    Fall,
}

impl SignalEdge {
    /// The opposite edge.
    #[must_use]
    pub fn opposite(self) -> SignalEdge {
        match self {
            SignalEdge::Rise => SignalEdge::Fall,
            SignalEdge::Fall => SignalEdge::Rise,
        }
    }

    /// The signal value after this edge fires.
    #[must_use]
    pub fn value_after(self) -> bool {
        matches!(self, SignalEdge::Rise)
    }
}

impl fmt::Display for SignalEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalEdge::Rise => write!(f, "+"),
            SignalEdge::Fall => write!(f, "-"),
        }
    }
}

/// The interpretation of one net transition: which signal edge it is, and
/// which instance (the same edge may occur several times, as `d+/1` and
/// `d+/2` in the READ/WRITE specification of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransitionLabel {
    /// The signal.
    pub signal: SignalId,
    /// Rising or falling.
    pub edge: SignalEdge,
    /// Instance number, 1-based. Instance 1 prints without the `/k` suffix.
    pub instance: u32,
}

#[derive(Debug, Clone)]
struct SignalInfo {
    name: String,
    kind: SignalKind,
}

/// A Signal Transition Graph: a [`PetriNet`] whose transitions carry signal
/// edge labels (dummy transitions carry none).
///
/// Construct with [`StgBuilder`] or parse from the `.g` format with
/// [`crate::parse::parse_g`].
#[derive(Debug, Clone)]
pub struct Stg {
    net: PetriNet,
    signals: Vec<SignalInfo>,
    /// Label per net transition (`None` = dummy).
    labels: Vec<Option<TransitionLabel>>,
    /// Explicit initial signal values, if provided; otherwise inferred by
    /// the state-graph builder.
    initial_values: Option<Vec<bool>>,
    name: String,
}

impl Stg {
    /// The underlying Petri net.
    #[must_use]
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// The model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of signals.
    #[must_use]
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// Iterator over all signal ids.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len()).map(|i| SignalId(i as u32))
    }

    /// Name of a signal.
    #[must_use]
    pub fn signal_name(&self, s: SignalId) -> &str {
        &self.signals[s.index()].name
    }

    /// Kind of a signal.
    #[must_use]
    pub fn signal_kind(&self, s: SignalId) -> SignalKind {
        self.signals[s.index()].kind
    }

    /// Looks a signal up by name.
    #[must_use]
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId(i as u32))
    }

    /// All signal names in id order.
    #[must_use]
    pub fn signal_names(&self) -> Vec<String> {
        self.signals.iter().map(|s| s.name.clone()).collect()
    }

    /// The label of a net transition (`None` for dummies).
    #[must_use]
    pub fn label(&self, t: TransitionId) -> Option<TransitionLabel> {
        self.labels[t.index()]
    }

    /// All transitions labelled with edges of signal `s`.
    #[must_use]
    pub fn transitions_of_signal(&self, s: SignalId) -> Vec<TransitionId> {
        self.net
            .transitions()
            .filter(|&t| self.labels[t.index()].is_some_and(|l| l.signal == s))
            .collect()
    }

    /// Renders a transition label as text (`dsr+`, `d-/2`, or the raw
    /// transition name for dummies).
    #[must_use]
    pub fn label_string(&self, t: TransitionId) -> String {
        match self.labels[t.index()] {
            Some(l) => {
                let base = format!("{}{}", self.signals[l.signal.index()].name, l.edge);
                if l.instance > 1 {
                    format!("{base}/{}", l.instance)
                } else {
                    base
                }
            }
            None => self.net.transition_name(t).to_owned(),
        }
    }

    /// Explicit initial signal values, if set.
    #[must_use]
    pub fn initial_values(&self) -> Option<&[bool]> {
        self.initial_values.as_deref()
    }

    /// Signals of a given kind, ascending.
    #[must_use]
    pub fn signals_of_kind(&self, kind: SignalKind) -> Vec<SignalId> {
        self.signals()
            .filter(|&s| self.signal_kind(s) == kind)
            .collect()
    }

    /// The non-input (output + internal) signals.
    #[must_use]
    pub fn non_input_signals(&self) -> Vec<SignalId> {
        self.signals()
            .filter(|&s| self.signal_kind(s).is_non_input())
            .collect()
    }

    /// Mutable access for structural transformations (CSC insertion,
    /// concurrency reduction). The caller must keep labels consistent.
    #[must_use]
    pub fn into_builder(self) -> StgBuilder {
        let next_instance = self.compute_instance_counters();
        StgBuilder {
            net: self.net,
            signals: self.signals,
            labels: self.labels,
            initial_values: self.initial_values,
            name: self.name,
            next_instance,
        }
    }

    fn compute_instance_counters(&self) -> HashMap<(SignalId, SignalEdge), u32> {
        let mut m = HashMap::new();
        for l in self.labels.iter().flatten() {
            let e = m.entry((l.signal, l.edge)).or_insert(0);
            *e = (*e).max(l.instance);
        }
        m
    }
}

/// Incremental construction of an [`Stg`].
///
/// # Example
///
/// ```
/// use stg::{SignalKind, SignalEdge, StgBuilder};
///
/// let mut b = StgBuilder::new("toggle");
/// let a = b.add_signal("a", SignalKind::Input);
/// let x = b.add_signal("x", SignalKind::Output);
/// let a_plus = b.add_edge(a, SignalEdge::Rise);
/// let x_plus = b.add_edge(x, SignalEdge::Rise);
/// let a_minus = b.add_edge(a, SignalEdge::Fall);
/// let x_minus = b.add_edge(x, SignalEdge::Fall);
/// b.connect(a_plus, x_plus);
/// b.connect(x_plus, a_minus);
/// b.connect(a_minus, x_minus);
/// let p = b.connect(x_minus, a_plus);
/// b.mark_place(p, 1);
/// let stg = b.build();
/// assert_eq!(stg.num_signals(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct StgBuilder {
    net: PetriNet,
    signals: Vec<SignalInfo>,
    labels: Vec<Option<TransitionLabel>>,
    initial_values: Option<Vec<bool>>,
    name: String,
    next_instance: HashMap<(SignalId, SignalEdge), u32>,
}

impl StgBuilder {
    /// Starts an empty STG with a model name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        StgBuilder {
            net: PetriNet::new(),
            signals: Vec::new(),
            labels: Vec::new(),
            initial_values: None,
            name: name.into(),
            next_instance: HashMap::new(),
        }
    }

    /// Declares a signal.
    pub fn add_signal(&mut self, name: impl Into<String>, kind: SignalKind) -> SignalId {
        let id = SignalId(u32::try_from(self.signals.len()).expect("too many signals"));
        self.signals.push(SignalInfo {
            name: name.into(),
            kind,
        });
        id
    }

    /// Adds a transition labelled with the next free instance of
    /// `signal`/`edge`.
    pub fn add_edge(&mut self, signal: SignalId, edge: SignalEdge) -> TransitionId {
        let counter = self.next_instance.entry((signal, edge)).or_insert(0);
        *counter += 1;
        let instance = *counter;
        let name = {
            let base = format!("{}{}", self.signals[signal.index()].name, edge);
            if instance > 1 {
                format!("{base}/{instance}")
            } else {
                base
            }
        };
        let t = self.net.add_transition(name);
        self.labels.push(Some(TransitionLabel {
            signal,
            edge,
            instance,
        }));
        t
    }

    /// Adds an unlabelled (dummy) transition.
    pub fn add_dummy(&mut self, name: impl Into<String>) -> TransitionId {
        let t = self.net.add_transition(name);
        self.labels.push(None);
        t
    }

    /// Adds an implicit place connecting two transitions (`a → b`), the arc
    /// notation of timing diagrams; returns the created place.
    pub fn connect(&mut self, from: TransitionId, to: TransitionId) -> PlaceId {
        self.net.add_causal_arc(from, to)
    }

    /// Adds an explicit named place.
    pub fn add_place(&mut self, name: impl Into<String>, tokens: u32) -> PlaceId {
        self.net.add_place(name, tokens)
    }

    /// Arc from a place to a transition.
    pub fn arc_pt(&mut self, p: PlaceId, t: TransitionId) {
        self.net.add_arc_place_to_transition(p, t);
    }

    /// Arc from a transition to a place.
    pub fn arc_tp(&mut self, t: TransitionId, p: PlaceId) {
        self.net.add_arc_transition_to_place(t, p);
    }

    /// Sets the token count of a place.
    pub fn mark_place(&mut self, p: PlaceId, tokens: u32) {
        self.net.set_initial_tokens(p, tokens);
    }

    /// Sets explicit initial signal values (index = signal id).
    pub fn set_initial_values(&mut self, values: Vec<bool>) {
        self.initial_values = Some(values);
    }

    /// Read access to the net under construction.
    #[must_use]
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// Label of a transition added so far.
    #[must_use]
    pub fn label(&self, t: TransitionId) -> Option<TransitionLabel> {
        self.labels[t.index()]
    }

    /// Finalises the STG.
    #[must_use]
    pub fn build(self) -> Stg {
        Stg {
            net: self.net,
            signals: self.signals,
            labels: self.labels,
            initial_values: self.initial_values,
            name: self.name,
        }
    }
}
