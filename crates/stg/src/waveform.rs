//! ASCII waveform rendering of firing traces (Fig. 2 of the paper shows
//! the READ cycle as a timing diagram; STGs are "a formalization of timing
//! diagrams", §1.1 — this module goes back the other way).

use petri::TransitionId;

use crate::model::Stg;
use crate::state_space::StateSpace;

/// Renders the signal waveforms along a transition sequence starting at
/// the initial state, one row per signal, two characters per step:
///
/// ```text
///   DSr ___//~~~~~~\\____
/// ```
///
/// (`_` low, `~` high, `//` rising edge, `\\` falling edge.)
///
/// Transitions not enabled where expected stop the rendering early.
#[must_use]
pub fn render_waveforms<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
    trace: &[TransitionId],
) -> String {
    let width = stg
        .signals()
        .map(|s| stg.signal_name(s).len())
        .max()
        .unwrap_or(0);
    // Follow the trace collecting codes.
    let mut states = vec![0usize];
    for &t in trace {
        let cur = *states.last().expect("non-empty");
        match sg.successor(cur, t) {
            Some(next) => states.push(next),
            None => break,
        }
    }
    let mut out = String::new();
    for s in stg.signals() {
        let name = stg.signal_name(s);
        out.push_str(&format!("{name:>width$} "));
        let mut prev = sg.value(states[0], s);
        // Initial half-step shows the starting level.
        out.push_str(if prev { "~~" } else { "__" });
        for &st in &states[1..] {
            let cur = sg.value(st, s);
            match (prev, cur) {
                (false, true) => out.push_str("/~"),
                (true, false) => out.push_str("\\_"),
                (false, false) => out.push_str("__"),
                (true, true) => out.push_str("~~"),
            }
            prev = cur;
        }
        out.push('\n');
    }
    out
}

/// Renders the trace header matching [`render_waveforms`] columns: each
/// fired transition name, one per step.
#[must_use]
pub fn render_trace_header(stg: &Stg, trace: &[TransitionId]) -> String {
    let labels: Vec<String> = trace.iter().map(|&t| stg.label_string(t)).collect();
    labels.join(" ")
}

/// A canonical full cycle of the READ example (Fig. 2's waveform order):
/// the shortest firing sequence leading from the initial state back to it,
/// found by breadth-first search (ties broken by transition id, so the
/// result is deterministic). Returns an empty trace if no cycle through
/// the initial state exists within `max_steps` arcs.
#[must_use]
pub fn canonical_cycle<S: StateSpace + ?Sized>(sg: &S, max_steps: usize) -> Vec<TransitionId> {
    use std::collections::VecDeque;
    // BFS over states, remembering the arc that discovered each state.
    let n = sg.num_states();
    let mut parent: Vec<Option<(usize, TransitionId)>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    // Seed with the successors of state 0 so the path has length ≥ 1.
    let mut first_arcs: Vec<(TransitionId, usize)> =
        sg.ts().successors(0).map(|(&t, to)| (t, to)).collect();
    first_arcs.sort_by_key(|&(t, _)| t);
    for (t, to) in first_arcs {
        if to == 0 {
            return vec![t];
        }
        if !visited[to] {
            visited[to] = true;
            parent[to] = Some((0, t));
            queue.push_back(to);
        }
    }
    let mut steps = 0usize;
    while let Some(s) = queue.pop_front() {
        steps += 1;
        if steps > max_steps.max(n) {
            break;
        }
        let mut arcs: Vec<(TransitionId, usize)> =
            sg.ts().successors(s).map(|(&t, to)| (t, to)).collect();
        arcs.sort_by_key(|&(t, _)| t);
        for (t, to) in arcs {
            if to == 0 {
                // Reconstruct the path 0 → … → s, then append t.
                let mut path = vec![t];
                let mut cur = s;
                while let Some((prev, arc)) = parent[cur] {
                    path.push(arc);
                    cur = prev;
                }
                path.reverse();
                return path;
            }
            if !visited[to] {
                visited[to] = true;
                parent[to] = Some((s, t));
                queue.push_back(to);
            }
        }
    }
    Vec::new()
}
