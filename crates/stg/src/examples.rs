//! The paper's running examples: the VME-bus controller (Figs. 1–7).
//!
//! Signal order everywhere matches the paper's state vectors:
//! `<DSr, (DSw,) DTACK, LDTACK, LDS, D (, csc0)>`.

use crate::model::{SignalEdge, SignalKind, Stg, StgBuilder};

/// The READ-cycle STG of Fig. 3.
///
/// Behaviour (§1.1): a read request arrives on `DSr`; the controller asks
/// the device with `LDS`; when the device has the data ready (`LDTACK`)
/// the transceiver is opened (`D`), the bus is acknowledged (`DTACK`), and
/// all signals return to zero with maximum parallelism between the bus and
/// device handshakes.
///
/// Its state graph has the 14 states of Fig. 4 and the two famous CSC
/// conflict states with code `10110`.
///
/// # Example
///
/// ```
/// use stg::{examples, StateGraph};
/// let sg = StateGraph::build(&examples::vme_read())?;
/// assert_eq!(sg.num_states(), 14);
/// # Ok::<(), stg::StgError>(())
/// ```
#[must_use]
pub fn vme_read() -> Stg {
    let mut b = StgBuilder::new("vme-read");
    let dsr = b.add_signal("DSr", SignalKind::Input);
    let dtack = b.add_signal("DTACK", SignalKind::Output);
    let ldtack = b.add_signal("LDTACK", SignalKind::Input);
    let lds = b.add_signal("LDS", SignalKind::Output);
    let d = b.add_signal("D", SignalKind::Output);

    let dsr_p = b.add_edge(dsr, SignalEdge::Rise);
    let dsr_m = b.add_edge(dsr, SignalEdge::Fall);
    let dtack_p = b.add_edge(dtack, SignalEdge::Rise);
    let dtack_m = b.add_edge(dtack, SignalEdge::Fall);
    let ldtack_p = b.add_edge(ldtack, SignalEdge::Rise);
    let ldtack_m = b.add_edge(ldtack, SignalEdge::Fall);
    let lds_p = b.add_edge(lds, SignalEdge::Rise);
    let lds_m = b.add_edge(lds, SignalEdge::Fall);
    let d_p = b.add_edge(d, SignalEdge::Rise);
    let d_m = b.add_edge(d, SignalEdge::Fall);

    b.connect(dsr_p, lds_p);
    b.connect(lds_p, ldtack_p);
    b.connect(ldtack_p, d_p);
    b.connect(d_p, dtack_p);
    b.connect(dtack_p, dsr_m);
    b.connect(dsr_m, d_m);
    b.connect(d_m, dtack_m);
    b.connect(d_m, lds_m);
    b.connect(lds_m, ldtack_m);
    // Return-to-zero closes the two handshakes: the next request can only
    // be served after DTACK-, and LDS can only rise again after LDTACK-.
    let p0 = b.connect(dtack_m, dsr_p);
    let p8 = b.connect(ldtack_m, lds_p);
    b.mark_place(p0, 1);
    b.mark_place(p8, 1);
    b.build()
}

/// The READ+WRITE STG of Fig. 5, with the two choice places (`p0`
/// selecting between `DSr+` and `DSw+`, `p3` routing the shared `LDS+`
/// return path) and the merge places (`p1` into `DTACK-`, `p2` into
/// `LDS-`).
///
/// In the write cycle data is transferred to the device first (`D+` before
/// `LDS+`), and the transceiver is closed (`D-`) once the device
/// acknowledges (`LDTACK+`), isolating the device from the bus.
#[must_use]
pub fn vme_read_write() -> Stg {
    let mut b = StgBuilder::new("vme-read-write");
    let dsr = b.add_signal("DSr", SignalKind::Input);
    let dsw = b.add_signal("DSw", SignalKind::Input);
    let dtack = b.add_signal("DTACK", SignalKind::Output);
    let ldtack = b.add_signal("LDTACK", SignalKind::Input);
    let lds = b.add_signal("LDS", SignalKind::Output);
    let d = b.add_signal("D", SignalKind::Output);

    // READ branch (instance /1 of the doubled signals).
    let dsr_p = b.add_edge(dsr, SignalEdge::Rise);
    let dsr_m = b.add_edge(dsr, SignalEdge::Fall);
    let lds_p_r = b.add_edge(lds, SignalEdge::Rise);
    let ldtack_p_r = b.add_edge(ldtack, SignalEdge::Rise);
    let d_p_r = b.add_edge(d, SignalEdge::Rise);
    let dtack_p_r = b.add_edge(dtack, SignalEdge::Rise);
    let d_m_r = b.add_edge(d, SignalEdge::Fall);

    // WRITE branch (instance /2).
    let dsw_p = b.add_edge(dsw, SignalEdge::Rise);
    let dsw_m = b.add_edge(dsw, SignalEdge::Fall);
    let d_p_w = b.add_edge(d, SignalEdge::Rise);
    let lds_p_w = b.add_edge(lds, SignalEdge::Rise);
    let ldtack_p_w = b.add_edge(ldtack, SignalEdge::Rise);
    let d_m_w = b.add_edge(d, SignalEdge::Fall);
    let dtack_p_w = b.add_edge(dtack, SignalEdge::Rise);

    // Shared return-to-zero.
    let lds_m = b.add_edge(lds, SignalEdge::Fall);
    let ldtack_m = b.add_edge(ldtack, SignalEdge::Fall);
    let dtack_m = b.add_edge(dtack, SignalEdge::Fall);

    // READ cycle sequencing.
    b.connect(dsr_p, lds_p_r);
    b.connect(lds_p_r, ldtack_p_r);
    b.connect(ldtack_p_r, d_p_r);
    b.connect(d_p_r, dtack_p_r);
    b.connect(dtack_p_r, dsr_m);
    b.connect(dsr_m, d_m_r);

    // WRITE cycle sequencing.
    b.connect(dsw_p, d_p_w);
    b.connect(d_p_w, lds_p_w);
    b.connect(lds_p_w, ldtack_p_w);
    b.connect(ldtack_p_w, d_m_w);
    b.connect(d_m_w, dtack_p_w);
    b.connect(dtack_p_w, dsw_m);

    // Merge place p1 into DTACK- (from D-/1 in read, DSw- in write).
    let p1 = b.add_place("p1", 0);
    b.arc_tp(d_m_r, p1);
    b.arc_tp(dsw_m, p1);
    b.arc_pt(p1, dtack_m);

    // Merge place p2 into LDS- (from D-/1 in read, D-/2 in write).
    let p2 = b.add_place("p2", 0);
    b.arc_tp(d_m_r, p2);
    b.arc_tp(d_m_w, p2);
    b.arc_pt(p2, lds_m);

    b.connect(lds_m, ldtack_m);

    // Choice place p0: serve a read or a write next (§1.5).
    let p0 = b.add_place("p0", 1);
    b.arc_tp(dtack_m, p0);
    b.arc_pt(p0, dsr_p);
    b.arc_pt(p0, dsw_p);

    // Choice place p3: the shared LDS+ return path re-arms either branch.
    let p3 = b.add_place("p3", 1);
    b.arc_tp(ldtack_m, p3);
    b.arc_pt(p3, lds_p_r);
    b.arc_pt(p3, lds_p_w);

    b.build()
}

/// The READ-cycle STG with the state signal `csc0` inserted as in Fig. 7:
/// `csc0+` fires right before `LDS+` (triggered by `DSr+` and the previous
/// cycle's `LDTACK-`), and `csc0-` fires after `DSr-`, gating `D-`.
///
/// Its state graph has 16 states and satisfies CSC, yielding the equations
/// of §3.2:
///
/// ```text
/// D     = LDTACK · csc0
/// LDS   = D + csc0
/// DTACK = D
/// csc0  = DSr · (csc0 + LDTACK')
/// ```
#[must_use]
pub fn vme_read_csc() -> Stg {
    let mut b = StgBuilder::new("vme-read-csc");
    let dsr = b.add_signal("DSr", SignalKind::Input);
    let dtack = b.add_signal("DTACK", SignalKind::Output);
    let ldtack = b.add_signal("LDTACK", SignalKind::Input);
    let lds = b.add_signal("LDS", SignalKind::Output);
    let d = b.add_signal("D", SignalKind::Output);
    let csc0 = b.add_signal("csc0", SignalKind::Internal);

    let dsr_p = b.add_edge(dsr, SignalEdge::Rise);
    let dsr_m = b.add_edge(dsr, SignalEdge::Fall);
    let dtack_p = b.add_edge(dtack, SignalEdge::Rise);
    let dtack_m = b.add_edge(dtack, SignalEdge::Fall);
    let ldtack_p = b.add_edge(ldtack, SignalEdge::Rise);
    let ldtack_m = b.add_edge(ldtack, SignalEdge::Fall);
    let lds_p = b.add_edge(lds, SignalEdge::Rise);
    let lds_m = b.add_edge(lds, SignalEdge::Fall);
    let d_p = b.add_edge(d, SignalEdge::Rise);
    let d_m = b.add_edge(d, SignalEdge::Fall);
    let csc_p = b.add_edge(csc0, SignalEdge::Rise);
    let csc_m = b.add_edge(csc0, SignalEdge::Fall);

    // csc0+ splits the DSr+ → LDS+ arc.
    b.connect(dsr_p, csc_p);
    b.connect(csc_p, lds_p);
    b.connect(lds_p, ldtack_p);
    b.connect(ldtack_p, d_p);
    b.connect(d_p, dtack_p);
    b.connect(dtack_p, dsr_m);
    // csc0- splits the DSr- → D- arc.
    b.connect(dsr_m, csc_m);
    b.connect(csc_m, d_m);
    b.connect(d_m, dtack_m);
    b.connect(d_m, lds_m);
    b.connect(lds_m, ldtack_m);
    let p0 = b.connect(dtack_m, dsr_p);
    // The next csc0+ additionally waits for LDTACK- of this cycle.
    let p8 = b.connect(ldtack_m, csc_p);
    b.mark_place(p0, 1);
    b.mark_place(p8, 1);
    b.build()
}

/// A simple two-signal toggle (environment raises `a`, circuit answers
/// `x`), used in tests and doc examples.
#[must_use]
pub fn toggle() -> Stg {
    let mut b = StgBuilder::new("toggle");
    let a = b.add_signal("a", SignalKind::Input);
    let x = b.add_signal("x", SignalKind::Output);
    let a_p = b.add_edge(a, SignalEdge::Rise);
    let x_p = b.add_edge(x, SignalEdge::Rise);
    let a_m = b.add_edge(a, SignalEdge::Fall);
    let x_m = b.add_edge(x, SignalEdge::Fall);
    b.connect(a_p, x_p);
    b.connect(x_p, a_m);
    b.connect(a_m, x_m);
    let p = b.connect(x_m, a_p);
    b.mark_place(p, 1);
    b.build()
}

/// An `n`-stage micropipeline control: stage `i` handshakes `ri/ai` with
/// the next stage; all stages run concurrently. Input `r0`, outputs
/// `a0..`, `r1..`. Scales the synthesis benchmarks.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn micropipeline(n: usize) -> Stg {
    assert!(n > 0);
    let mut b = StgBuilder::new(format!("micropipeline-{n}"));
    let mut req = Vec::new();
    let mut ack = Vec::new();
    for i in 0..=n {
        let kind = if i == 0 {
            SignalKind::Input
        } else {
            SignalKind::Output
        };
        req.push(b.add_signal(format!("r{i}"), kind));
        ack.push(b.add_signal(format!("a{i}"), SignalKind::Output));
    }
    // Stage i: ri+ → ai+ → ri- → ai- ring, and ai+ → r(i+1)+ forward
    // coupling with back-pressure r(i+1)- → ai+ of the next round.
    let mut r_p = Vec::new();
    let mut r_m = Vec::new();
    let mut a_p = Vec::new();
    let mut a_m = Vec::new();
    for i in 0..=n {
        r_p.push(b.add_edge(req[i], SignalEdge::Rise));
        r_m.push(b.add_edge(req[i], SignalEdge::Fall));
        a_p.push(b.add_edge(ack[i], SignalEdge::Rise));
        a_m.push(b.add_edge(ack[i], SignalEdge::Fall));
    }
    for i in 0..=n {
        b.connect(r_p[i], a_p[i]);
        b.connect(a_p[i], r_m[i]);
        b.connect(r_m[i], a_m[i]);
        let p = b.connect(a_m[i], r_p[i]);
        b.mark_place(p, 1);
        if i < n {
            b.connect(a_p[i], r_p[i + 1]);
            let back = b.connect(a_m[i + 1], a_p[i]);
            b.mark_place(back, 1);
        }
    }
    b.build()
}

/// The signal-labelled `k`-token `n`-stage pipeline ring
/// (`petri::generators::pipeline_with_tokens` with edge labels): stage
/// pair `(t_{2m}, t_{2m+1})` becomes `s_m+ / s_m−`, so the STG is
/// consistent (adjacent ring transitions alternate strictly — the place
/// between them is safe) and its state space has `C(2·half, k)` states.
/// Initial values follow the token layout: `s_m` starts at 1 exactly
/// when its "full" place `f_{2m}` is initially marked.
///
/// This is the scale workload of the resident-BDD backend: state counts
/// grow combinatorially while the net stays linear.
///
/// # Panics
///
/// Panics if `half == 0` or `k > 2 * half`.
#[must_use]
pub fn token_ring(half: usize, k: usize) -> Stg {
    let n = 2 * half;
    assert!(half > 0 && k <= n);
    let mut b = StgBuilder::new(format!("token-ring-{half}-{k}"));
    let sigs: Vec<_> = (0..half)
        .map(|m| b.add_signal(format!("s{m}"), SignalKind::Output))
        .collect();
    let ts: Vec<_> = (0..n)
        .map(|i| {
            let edge = if i % 2 == 0 {
                SignalEdge::Rise
            } else {
                SignalEdge::Fall
            };
            b.add_edge(sigs[i / 2], edge)
        })
        .collect();
    for i in 0..n {
        let j = (i + 1) % n;
        let full = b.add_place(format!("f{i}"), u32::from(i < k));
        let empty = b.add_place(format!("e{i}"), u32::from(i >= k));
        b.arc_pt(full, ts[j]);
        b.arc_tp(ts[j], empty);
        b.arc_pt(empty, ts[i]);
        b.arc_tp(ts[i], full);
    }
    b.set_initial_values((0..half).map(|m| 2 * m < k).collect());
    b.build()
}
