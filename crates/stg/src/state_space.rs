//! Pluggable state-space backends.
//!
//! Every synthesis and verification stage consumes a [`StateSpace`] — the
//! abstract "binary-coded reachable states + transition structure" view —
//! instead of a concrete [`StateGraph`]. Two implementations exist:
//!
//! * [`StateGraph`] — the explicit breadth-first token-game construction
//!   of §1.4 (the seed implementation);
//! * [`crate::SymbolicStateSpace`] — BDD-based symbolic traversal in the
//!   spirit of §2.2, backed by `petri::symbolic`.
//!
//! [`Backend`] selects between them at run time and is what the staged
//! `Synthesis` pipeline and the CLI expose.

use std::fmt;
use std::str::FromStr;

use petri::{Marking, TransitionId, TransitionSystem};

use crate::model::{SignalEdge, SignalId, Stg};
use crate::state_graph::{StateGraph, StgError};
use crate::symbolic::SymbolicStateSpace;

/// The state space of an STG: binary-coded reachable states over a
/// labelled transition structure.
///
/// States are dense indices `0..num_states()` with state `0` initial.
/// Implementations must satisfy the same invariants the explicit
/// [`StateGraph`] establishes: every state is reachable from state `0`,
/// codes are consistent along arcs, and arcs are labelled with net
/// transitions.
pub trait StateSpace: fmt::Debug + Send + Sync {
    /// Number of states.
    fn num_states(&self) -> usize;

    /// Number of signals in each binary code.
    fn num_signals(&self) -> usize;

    /// The binary code of state `i`, indexed by [`SignalId`].
    fn code(&self, i: usize) -> &[bool];

    /// The net marking of state `i`.
    fn marking(&self, i: usize) -> &Marking;

    /// The transition structure (state `0` initial, arcs labelled with net
    /// transitions).
    fn ts(&self) -> &TransitionSystem<TransitionId>;

    /// The (possibly inferred) initial signal values.
    fn initial_values(&self) -> &[bool];

    /// Which backend produced this space.
    fn backend(&self) -> Backend;

    /// Value of signal `sig` in state `i`.
    fn value(&self, i: usize, sig: SignalId) -> bool {
        self.code(i)[sig.index()]
    }

    /// Successor state along a given transition, if enabled.
    fn successor(&self, state: usize, t: TransitionId) -> Option<usize> {
        self.ts().successor_by_label(state, &t)
    }

    /// The signal edges enabled (excited) in state `i`, as
    /// `(transition, signal, edge)` triples; dummies are skipped.
    fn excitations(&self, stg: &Stg, i: usize) -> Vec<(TransitionId, SignalId, SignalEdge)> {
        let mut out = Vec::new();
        for (&t, _) in self.ts().successors(i) {
            if let Some(l) = stg.label(t) {
                out.push((t, l.signal, l.edge));
            }
        }
        out.sort_by_key(|&(t, _, _)| t);
        out.dedup();
        out
    }

    /// `true` if signal `sig` is excited (has an enabled edge) in state `i`.
    fn is_excited(&self, stg: &Stg, i: usize, sig: SignalId) -> bool {
        self.excitations(stg, i).iter().any(|&(_, s, _)| s == sig)
    }

    /// The paper's state rendering: binary code with `*` after each
    /// excited signal.
    fn code_string(&self, stg: &Stg, i: usize) -> String {
        let excited: Vec<SignalId> = self
            .excitations(stg, i)
            .iter()
            .map(|&(_, s, _)| s)
            .collect();
        let mut out = String::new();
        for s in stg.signals() {
            out.push(if self.code(i)[s.index()] { '1' } else { '0' });
            if excited.contains(&s) {
                out.push('*');
            }
        }
        out
    }

    /// The plain binary code of state `i` as a `0`/`1` string.
    fn plain_code_string(&self, i: usize) -> String {
        self.code(i)
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// States whose code equals `code`.
    fn states_with_code(&self, code: &[bool]) -> Vec<usize> {
        (0..self.num_states())
            .filter(|&i| self.code(i) == code)
            .collect()
    }
}

impl StateSpace for StateGraph {
    fn num_states(&self) -> usize {
        StateGraph::num_states(self)
    }

    fn num_signals(&self) -> usize {
        StateGraph::num_signals(self)
    }

    fn code(&self, i: usize) -> &[bool] {
        &self.state(i).code
    }

    fn marking(&self, i: usize) -> &Marking {
        &self.state(i).marking
    }

    fn ts(&self) -> &TransitionSystem<TransitionId> {
        StateGraph::ts(self)
    }

    fn initial_values(&self) -> &[bool] {
        StateGraph::initial_values(self)
    }

    fn backend(&self) -> Backend {
        Backend::Explicit
    }
}

/// Selects the engine used to build [`StateSpace`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Explicit breadth-first reachability ([`StateGraph`], §1.4).
    #[default]
    Explicit,
    /// BDD-based symbolic traversal ([`SymbolicStateSpace`], §2.2).
    Symbolic,
}

impl Backend {
    /// The backend's canonical lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Explicit => "explicit",
            Backend::Symbolic => "symbolic",
        }
    }

    /// Builds the state space of `stg` with this backend.
    ///
    /// # Errors
    ///
    /// Returns [`StgError`] exactly as the explicit builder does: unsafe
    /// nets report boundedness failures, inconsistent specifications
    /// report the offending edge or state.
    pub fn build(self, stg: &Stg) -> Result<Box<dyn StateSpace>, StgError> {
        self.build_bounded(stg, 1_000_000)
    }

    /// Like [`Backend::build`] with an explicit state limit.
    ///
    /// # Errors
    ///
    /// See [`Backend::build`].
    pub fn build_bounded(
        self,
        stg: &Stg,
        max_states: usize,
    ) -> Result<Box<dyn StateSpace>, StgError> {
        self.build_bounded_in(stg, max_states, &mut BuildContext::default())
    }

    /// Like [`Backend::build_bounded`] with reusable cross-build scratch.
    ///
    /// Repeated builds of structurally similar STGs (the CSC candidate
    /// sweep: every candidate shares the base net's place layout) pass
    /// the same [`BuildContext`] so the symbolic backend keeps one BDD
    /// manager — unique table and operation caches included — across
    /// the whole sweep. The produced space is identical to a
    /// fresh-context build; the explicit backend has no scratch and
    /// ignores the context.
    ///
    /// # Errors
    ///
    /// See [`Backend::build`].
    pub fn build_bounded_in(
        self,
        stg: &Stg,
        max_states: usize,
        ctx: &mut BuildContext,
    ) -> Result<Box<dyn StateSpace>, StgError> {
        match self {
            Backend::Explicit => Ok(Box::new(StateGraph::build_bounded(stg, max_states)?)),
            Backend::Symbolic => {
                let manager = ctx.manager_for(stg.net().num_places());
                Ok(Box::new(SymbolicStateSpace::build_bounded_in(
                    stg, max_states, manager,
                )?))
            }
        }
    }
}

/// Reusable scratch for repeated [`Backend::build_bounded_in`] calls.
///
/// Today this is the symbolic backend's shared BDD manager. Managers
/// encode one variable pair per place, so reuse is only sound across
/// nets with the same place count — the context checks and transparently
/// starts a fresh manager when the shape changes.
#[derive(Debug, Default)]
pub struct BuildContext {
    /// `(num_places, manager)` of the manager currently held.
    manager: Option<(usize, bdd::Manager)>,
}

impl BuildContext {
    /// The shared manager for nets with `num_places` places, creating or
    /// replacing it when the held one was built for a different shape.
    fn manager_for(&mut self, num_places: usize) -> &mut bdd::Manager {
        let reusable = matches!(&self.manager, Some((p, _)) if *p == num_places);
        if !reusable {
            self.manager = Some((num_places, bdd::Manager::new()));
        }
        &mut self.manager.as_mut().expect("manager just ensured").1
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "explicit" => Ok(Backend::Explicit),
            "symbolic" => Ok(Backend::Symbolic),
            other => Err(format!(
                "unknown backend {other:?} (expected \"explicit\" or \"symbolic\")"
            )),
        }
    }
}
