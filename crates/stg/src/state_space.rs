//! Pluggable state-space backends.
//!
//! Every synthesis and verification stage consumes a [`StateSpace`] — the
//! abstract "binary-coded reachable states + transition structure" view —
//! instead of a concrete [`StateGraph`]. Three implementations exist:
//!
//! * [`StateGraph`] — the explicit breadth-first token-game construction
//!   of §1.4 (the seed implementation);
//! * [`crate::SymbolicStateSpace`] — BDD-based symbolic traversal in the
//!   spirit of §2.2, backed by `petri::symbolic`; the traversal is
//!   symbolic but every reachable marking is still decoded afterwards;
//! * [`crate::SymbolicSetSpace`] — the resident-BDD backend: the
//!   characteristic function of the reachable (marking, code) pairs stays
//!   in the manager and queries are answered as cube intersections and
//!   satisfying-assignment counts, never by enumerating states.
//!
//! [`Backend`] selects between them at run time and is what the staged
//! `Synthesis` pipeline and the CLI expose.
//!
//! # The set-level API
//!
//! Consumers that used to iterate `0..num_states()` now phrase their
//! queries over [`StateSet`] handles: excitation and quiescent regions,
//! code lookups, counts, unions/intersections. Every set-level method has
//! a default implementation in terms of the per-state accessors, so
//! explicit backends ([`StateGraph`]) work unchanged; the resident-BDD
//! backend overrides them with BDD operations and only falls back to
//! per-state decode ([`StateSpace::decode_code`] /
//! [`StateSpace::decode_marking`], served from a small LRU of materialised
//! blocks) where a *witness* state is genuinely needed.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

use petri::{Marking, TransitionId, TransitionSystem};

use crate::model::{SignalEdge, SignalId, Stg};
use crate::state_graph::{StateGraph, StgError};
use crate::symbolic::SymbolicStateSpace;
use crate::symbolic_set::SymbolicSetSpace;

/// The default state bound of every unbounded `build` entry point
/// ([`Backend::build`], [`StateGraph::build`],
/// [`SymbolicStateSpace::build`], [`SymbolicSetSpace::build`]): builds
/// that exceed it fail with `StgError::Reach(ReachError::StateLimit)`.
///
/// The CSC candidate sweeps deliberately use a *tighter* default
/// (`synth::csc::DEFAULT_SWEEP_BOUND`, 200 000): a sweep builds hundreds
/// of candidate spaces and a candidate five times larger than this bound
/// is never a useful resolution, while a single user-requested build may
/// legitimately be large. Both defaults are overridable (`build_bounded`,
/// `--csc-bound`); only the sweep bound participates in cache keys.
pub const DEFAULT_STATE_BOUND: usize = 1_000_000;

/// A handle to a set of states of one [`StateSpace`].
///
/// Handles are backend-owned: a set produced by one space must only be
/// passed back to that same space. Explicit backends use sorted index
/// lists; the resident-BDD backend wraps the characteristic function of
/// the set's markings.
#[derive(Debug, Clone)]
pub enum StateSet {
    /// Sorted, deduplicated dense state indices (explicit backends).
    Indices(Vec<usize>),
    /// A characteristic-function handle into the owning backend's BDD
    /// manager (the resident-BDD backend). Meaningless outside it.
    Symbolic(bdd::Bdd),
}

impl StateSet {
    /// The indices of an explicit set.
    ///
    /// # Panics
    ///
    /// Panics when handed a symbolic handle — that handle only means
    /// something to the backend that produced it.
    #[must_use]
    pub fn as_indices(&self) -> &[usize] {
        match self {
            StateSet::Indices(v) => v,
            StateSet::Symbolic(_) => {
                panic!("symbolic state-set handle used with an enumerating backend")
            }
        }
    }
}

/// The state space of an STG: binary-coded reachable states over a
/// labelled transition structure.
///
/// States are dense indices `0..num_states()` with state `0` initial.
/// Implementations must satisfy the same invariants the explicit
/// [`StateGraph`] establishes: every state is reachable from state `0`,
/// codes are consistent along arcs, and arcs are labelled with net
/// transitions.
///
/// The per-state reference accessors (`code`, `marking`, `ts`) are only
/// guaranteed on *materialising* backends; the resident-BDD backend
/// serves them from a lazily materialised view for small spaces and
/// panics beyond its materialisation limit — scale-conscious consumers
/// use the set-level methods and the owned decode accessors instead.
pub trait StateSpace: fmt::Debug + Send + Sync {
    /// Number of states (saturated at `usize::MAX`; see
    /// [`StateSpace::marking_count`] for the exact count).
    fn num_states(&self) -> usize;

    /// Number of signals in each binary code.
    fn num_signals(&self) -> usize;

    /// The binary code of state `i`, indexed by [`SignalId`].
    fn code(&self, i: usize) -> &[bool];

    /// The net marking of state `i`.
    fn marking(&self, i: usize) -> &Marking;

    /// The transition structure (state `0` initial, arcs labelled with net
    /// transitions).
    fn ts(&self) -> &TransitionSystem<TransitionId>;

    /// The (possibly inferred) initial signal values.
    fn initial_values(&self) -> &[bool];

    /// Which backend produced this space.
    fn backend(&self) -> Backend;

    /// BDD nodes allocated in the manager backing this space, for the
    /// symbolic backends. Advisory telemetry only: the value varies by
    /// backend and by what else shared the manager, so it must never
    /// join the deterministic (drift-gated) metric set.
    fn bdd_node_count(&self) -> Option<usize> {
        None
    }

    /// States decoded on demand so far, for backends that materialise
    /// lazily. Advisory telemetry only, for the same reason.
    fn decoded_state_count(&self) -> Option<u64> {
        None
    }

    // -----------------------------------------------------------------
    // Per-state queries (defaults in terms of the accessors above)
    // -----------------------------------------------------------------

    /// Value of signal `sig` in state `i`.
    fn value(&self, i: usize, sig: SignalId) -> bool {
        self.code(i)[sig.index()]
    }

    /// Successor state along a given transition, if enabled.
    fn successor(&self, state: usize, t: TransitionId) -> Option<usize> {
        self.ts().successor_by_label(state, &t)
    }

    /// The signal edges enabled (excited) in state `i`, as
    /// `(transition, signal, edge)` triples; dummies are skipped.
    fn excitations(&self, stg: &Stg, i: usize) -> Vec<(TransitionId, SignalId, SignalEdge)> {
        let mut out = Vec::new();
        for (&t, _) in self.ts().successors(i) {
            if let Some(l) = stg.label(t) {
                out.push((t, l.signal, l.edge));
            }
        }
        out.sort_by_key(|&(t, _, _)| t);
        out.dedup();
        out
    }

    /// `true` if signal `sig` is excited (has an enabled edge) in state `i`.
    fn is_excited(&self, stg: &Stg, i: usize, sig: SignalId) -> bool {
        self.excitations(stg, i).iter().any(|&(_, s, _)| s == sig)
    }

    /// The paper's state rendering: binary code with `*` after each
    /// excited signal.
    fn code_string(&self, stg: &Stg, i: usize) -> String {
        let excited: Vec<SignalId> = self
            .excitations(stg, i)
            .iter()
            .map(|&(_, s, _)| s)
            .collect();
        let code = self.decode_code(i);
        let mut out = String::new();
        for s in stg.signals() {
            out.push(if code[s.index()] { '1' } else { '0' });
            if excited.contains(&s) {
                out.push('*');
            }
        }
        out
    }

    /// The plain binary code of state `i` as a `0`/`1` string.
    fn plain_code_string(&self, i: usize) -> String {
        self.decode_code(i)
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// The binary code of state `i`, by value. Unlike [`StateSpace::code`]
    /// this never requires materialised per-state storage — the
    /// resident-BDD backend decodes it on demand (through its LRU).
    fn decode_code(&self, i: usize) -> Vec<bool> {
        self.code(i).to_vec()
    }

    /// The marking of state `i`, by value (see [`StateSpace::decode_code`]).
    fn decode_marking(&self, i: usize) -> Marking {
        self.marking(i).clone()
    }

    /// The initial marking (state `0`'s marking). Unlike
    /// [`StateSpace::marking`] this never requires materialised
    /// per-state storage — the resident-BDD backend serves it from the
    /// net, so the composed verification engine can anchor its
    /// marking-tracked exploration on any backend at any scale.
    fn initial_marking(&self) -> Marking {
        self.marking(0).clone()
    }

    /// States whose code equals `code`.
    fn states_with_code(&self, code: &[bool]) -> Vec<usize> {
        (0..self.num_states())
            .filter(|&i| self.code(i) == code)
            .collect()
    }

    // -----------------------------------------------------------------
    // Set-level queries
    // -----------------------------------------------------------------

    /// Exact number of reachable states (not saturated).
    fn marking_count(&self) -> u128 {
        self.num_states() as u128
    }

    /// The set of all states.
    fn all_states(&self) -> StateSet {
        StateSet::Indices((0..self.num_states()).collect())
    }

    /// Number of states in a set.
    fn set_count(&self, set: &StateSet) -> u128 {
        set.as_indices().len() as u128
    }

    /// `true` when the set is empty.
    fn set_is_empty(&self, set: &StateSet) -> bool {
        self.set_count(set) == 0
    }

    /// Union of two sets.
    fn set_union(&self, a: &StateSet, b: &StateSet) -> StateSet {
        let (a, b) = (a.as_indices(), b.as_indices());
        let mut out = Vec::with_capacity(a.len() + b.len());
        merge_sorted(a, b, &mut out);
        StateSet::Indices(out)
    }

    /// Intersection of two sets.
    fn set_intersect(&self, a: &StateSet, b: &StateSet) -> StateSet {
        let (a, b) = (a.as_indices(), b.as_indices());
        let mut out = Vec::new();
        let mut j = 0;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j < b.len() && b[j] == x {
                out.push(x);
            }
        }
        StateSet::Indices(out)
    }

    /// Difference `a ∖ b`.
    fn set_minus(&self, a: &StateSet, b: &StateSet) -> StateSet {
        let (a, b) = (a.as_indices(), b.as_indices());
        let mut out = Vec::new();
        let mut j = 0;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j >= b.len() || b[j] != x {
                out.push(x);
            }
        }
        StateSet::Indices(out)
    }

    /// Materialises up to `limit` state indices of a set, ascending. This
    /// is the witness extractor: set-level consumers only call it on sets
    /// already known (or expected) to be small.
    fn set_states(&self, set: &StateSet, limit: usize) -> Vec<usize> {
        let idx = set.as_indices();
        idx[..idx.len().min(limit)].to_vec()
    }

    /// The distinct binary codes of a set's states. Explicit backends
    /// report them in order of first occurrence (ascending state index);
    /// the resident-BDD backend in lexicographic code order. Consumers
    /// needing a canonical order sort the result.
    fn set_codes(&self, set: &StateSet) -> Vec<Vec<bool>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for &i in set.as_indices() {
            let code = self.code(i).to_vec();
            if seen.insert(code.clone()) {
                out.push(code);
            }
        }
        out
    }

    /// Number of distinct codes across the whole space.
    fn distinct_code_count(&self) -> u128 {
        let mut seen = std::collections::HashSet::new();
        for i in 0..self.num_states() {
            seen.insert(self.code(i).to_vec());
        }
        seen.len() as u128
    }

    /// `true` when some code occurs in both sets (the CSC-conflict
    /// primitive: two states with equal codes in different excitation
    /// classes).
    fn sets_share_code(&self, a: &StateSet, b: &StateSet) -> bool {
        let codes: std::collections::HashSet<Vec<bool>> = a
            .as_indices()
            .iter()
            .map(|&i| self.code(i).to_vec())
            .collect();
        b.as_indices().iter().any(|&i| codes.contains(self.code(i)))
    }

    /// States whose code equals `code`, as a set.
    fn states_with_code_set(&self, code: &[bool]) -> StateSet {
        StateSet::Indices(self.states_with_code(code))
    }

    /// Codes shared by two or more states, each with its (ascending)
    /// state list, sorted by code — the grist of USC/CSC conflict
    /// reporting. The resident-BDD backend only decodes witnesses for
    /// the (typically few) genuinely duplicated codes.
    fn duplicate_code_classes(&self) -> Vec<(Vec<bool>, Vec<usize>)> {
        let mut by_code: HashMap<Vec<bool>, Vec<usize>> = HashMap::new();
        for i in 0..self.num_states() {
            by_code.entry(self.code(i).to_vec()).or_default().push(i);
        }
        let mut out: Vec<(Vec<bool>, Vec<usize>)> = by_code
            .into_iter()
            .filter(|(_, states)| states.len() > 1)
            .collect();
        out.sort();
        out
    }

    /// The excitation region of `(signal, edge)`: states where some
    /// transition labelled with that edge is enabled.
    fn excitation_region(&self, stg: &Stg, signal: SignalId, edge: SignalEdge) -> StateSet {
        let mut out = Vec::new();
        for i in 0..self.num_states() {
            if self
                .excitations(stg, i)
                .iter()
                .any(|&(_, s, e)| s == signal && e == edge)
            {
                out.push(i);
            }
        }
        StateSet::Indices(out)
    }

    /// The states where `signal` has the given value (`ON`/`OFF` sets).
    fn value_region(&self, signal: SignalId, value: bool) -> StateSet {
        StateSet::Indices(
            (0..self.num_states())
                .filter(|&i| self.code(i)[signal.index()] == value)
                .collect(),
        )
    }

    /// `true` when some reachable state enables no transition.
    fn has_deadlock(&self) -> bool {
        !self.ts().deadlocks().is_empty()
    }

    /// Number of states where `t` and `u` are both enabled and firing `u`
    /// disables `t` — the persistency primitive, counted per ordered
    /// transition pair so the report never enumerates states.
    fn disabling_count(&self, t: TransitionId, u: TransitionId) -> u128 {
        if t == u {
            return 0;
        }
        let mut count = 0u128;
        for s in 0..self.num_states() {
            let Some(next) = self.successor(s, u) else {
                continue;
            };
            if self.successor(s, t).is_some() && self.successor(next, t).is_none() {
                count += 1;
            }
        }
        count
    }

    /// `true` if some path `from → to` (of length ≥ 1) fires neither
    /// avoided transition — the CSC sweep pruner's reachability probe.
    fn reaches_avoiding(
        &self,
        from: usize,
        to: usize,
        avoid: (TransitionId, TransitionId),
    ) -> bool {
        let ts = self.ts();
        let mut visited = vec![false; ts.num_states()];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(s) = queue.pop_front() {
            for (&t, succ) in ts.successors(s) {
                if t == avoid.0 || t == avoid.1 {
                    continue;
                }
                if succ == to {
                    return true;
                }
                if !visited[succ] {
                    visited[succ] = true;
                    queue.push_back(succ);
                }
            }
        }
        false
    }

    /// `true` when this backend answers the set-level queries natively
    /// (resident symbolic representation) rather than by enumerating
    /// states. Dispatch hint for consumers that keep a specialised
    /// enumeration path for explicit backends.
    fn set_level_native(&self) -> bool {
        false
    }
}

/// Merges two sorted, deduplicated index slices.
fn merge_sorted(a: &[usize], b: &[usize], out: &mut Vec<usize>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let x = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        out.push(x);
    }
}

impl StateSpace for StateGraph {
    fn num_states(&self) -> usize {
        StateGraph::num_states(self)
    }

    fn num_signals(&self) -> usize {
        StateGraph::num_signals(self)
    }

    fn code(&self, i: usize) -> &[bool] {
        &self.state(i).code
    }

    fn marking(&self, i: usize) -> &Marking {
        &self.state(i).marking
    }

    fn ts(&self) -> &TransitionSystem<TransitionId> {
        StateGraph::ts(self)
    }

    fn initial_values(&self) -> &[bool] {
        StateGraph::initial_values(self)
    }

    fn backend(&self) -> Backend {
        Backend::Explicit
    }

    fn states_with_code(&self, code: &[bool]) -> Vec<usize> {
        // Indexed override: one lazily built code → states map instead of
        // a linear scan per call (hot in CSC conflict detection).
        self.code_index().get(code).cloned().unwrap_or_default()
    }

    fn duplicate_code_classes(&self) -> Vec<(Vec<bool>, Vec<usize>)> {
        let mut out: Vec<(Vec<bool>, Vec<usize>)> = self
            .code_index()
            .iter()
            .filter(|(_, states)| states.len() > 1)
            .map(|(code, states)| (code.clone(), states.clone()))
            .collect();
        out.sort();
        out
    }

    fn distinct_code_count(&self) -> u128 {
        self.code_index().len() as u128
    }
}

/// Selects the engine used to build [`StateSpace`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Explicit breadth-first reachability ([`StateGraph`], §1.4).
    #[default]
    Explicit,
    /// BDD-based symbolic traversal with post-hoc decoding
    /// ([`SymbolicStateSpace`], §2.2).
    Symbolic,
    /// Resident-BDD symbolic state space answering set-level queries
    /// without enumeration ([`SymbolicSetSpace`]).
    SymbolicSet,
}

impl Backend {
    /// The backend's canonical lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Explicit => "explicit",
            Backend::Symbolic => "symbolic",
            Backend::SymbolicSet => "symbolic-set",
        }
    }

    /// Builds the state space of `stg` with this backend, bounded by
    /// [`DEFAULT_STATE_BOUND`].
    ///
    /// # Errors
    ///
    /// Returns [`StgError`] exactly as the explicit builder does: unsafe
    /// nets report boundedness failures, inconsistent specifications
    /// report the offending edge or state.
    pub fn build(self, stg: &Stg) -> Result<Box<dyn StateSpace>, StgError> {
        self.build_bounded(stg, DEFAULT_STATE_BOUND)
    }

    /// Like [`Backend::build`] with an explicit state limit.
    ///
    /// # Errors
    ///
    /// See [`Backend::build`].
    pub fn build_bounded(
        self,
        stg: &Stg,
        max_states: usize,
    ) -> Result<Box<dyn StateSpace>, StgError> {
        self.build_bounded_in(stg, max_states, &mut BuildContext::default())
    }

    /// Like [`Backend::build_bounded`] with reusable cross-build scratch.
    ///
    /// Repeated builds of structurally similar STGs (the CSC candidate
    /// sweep: every candidate shares the base net's place layout) pass
    /// the same [`BuildContext`] so the symbolic backends keep one BDD
    /// manager — unique table and operation caches included — across
    /// the whole sweep. The produced space is identical to a
    /// fresh-context build; the explicit backend has no scratch and
    /// ignores the context.
    ///
    /// # Errors
    ///
    /// See [`Backend::build`].
    pub fn build_bounded_in(
        self,
        stg: &Stg,
        max_states: usize,
        ctx: &mut BuildContext,
    ) -> Result<Box<dyn StateSpace>, StgError> {
        match self {
            Backend::Explicit => Ok(Box::new(StateGraph::build_bounded(stg, max_states)?)),
            Backend::Symbolic => {
                let shared = ctx.manager_for(stg.net().num_places());
                let mut manager = shared.lock().expect("BDD manager poisoned");
                Ok(Box::new(SymbolicStateSpace::build_bounded_in(
                    stg,
                    max_states,
                    &mut manager,
                )?))
            }
            Backend::SymbolicSet => {
                // The resident backend's counting is robust to leftover
                // variables from other shapes, so one manager serves the
                // whole sweep regardless of candidate shape.
                let shared = ctx.any_manager();
                Ok(Box::new(SymbolicSetSpace::build_bounded_in(
                    stg, max_states, shared,
                )?))
            }
        }
    }
}

/// Reusable scratch for repeated [`Backend::build_bounded_in`] calls.
///
/// Today this is the symbolic backends' shared BDD manager. The
/// `petri::symbolic` encoding counts markings by dividing out the whole
/// variable universe, so [`Backend::Symbolic`] reuse is only sound across
/// nets with the same place count — the context checks and transparently
/// starts a fresh manager when the shape changes, and a manager the
/// resident backend has used (which adds signal variables to the
/// universe) is never handed back to the decoding backend. The
/// resident-BDD backend brings its own per-build variable map and
/// shape-robust counting, so it shares one manager unconditionally.
#[derive(Debug, Default)]
pub struct BuildContext {
    /// The key the held manager is reusable under: `Some(num_places)`
    /// for the decoding backend's shape-keyed reuse, `None` once the
    /// resident backend has grown the variable universe beyond what
    /// `petri::symbolic`'s counting tolerates.
    key: Option<usize>,
    manager: Option<Arc<Mutex<bdd::Manager>>>,
    /// Largest node count observed across every manager this context
    /// has held, including ones already retired by the reset policy.
    peak_nodes: usize,
}

impl BuildContext {
    /// The shared manager for nets with `num_places` places, creating or
    /// replacing it when the held one was built for a different shape
    /// (or was contaminated by the resident backend's variable map).
    fn manager_for(&mut self, num_places: usize) -> Arc<Mutex<bdd::Manager>> {
        if self.key != Some(num_places) || self.manager.is_none() {
            self.note_peak();
            self.manager = Some(Arc::new(Mutex::new(bdd::Manager::new())));
        }
        self.key = Some(num_places);
        Arc::clone(self.manager.as_ref().expect("manager just ensured"))
    }

    /// The held manager regardless of shape, creating one if necessary
    /// (the resident-BDD backend's entry point). Marks the manager as
    /// unusable for the shape-keyed decoding backend, and starts fresh
    /// once the table has grown past [`MANAGER_RESET_NODES`] — the node
    /// store never garbage-collects, so a long sweep of rejected
    /// candidates would otherwise accumulate dead nodes without bound.
    /// (Spaces already built keep their own `Arc` to the old manager,
    /// so their handles stay valid.)
    fn any_manager(&mut self) -> Arc<Mutex<bdd::Manager>> {
        let oversized = self.manager.as_ref().is_some_and(|m| {
            m.lock().expect("BDD manager poisoned").node_count() > MANAGER_RESET_NODES
        });
        if self.manager.is_none() || oversized {
            self.note_peak();
            self.manager = Some(Arc::new(Mutex::new(bdd::Manager::new())));
        }
        self.key = None;
        Arc::clone(self.manager.as_ref().expect("manager just ensured"))
    }

    /// Fold the held manager's current size into the peak.
    fn note_peak(&mut self) {
        if let Some(m) = &self.manager {
            let n = m.lock().expect("BDD manager poisoned").node_count();
            self.peak_nodes = self.peak_nodes.max(n);
        }
    }

    /// Node count of the currently held shared manager (0 when the
    /// context holds none, e.g. pure explicit-backend use).
    #[must_use]
    pub fn bdd_nodes(&self) -> usize {
        self.manager
            .as_ref()
            .map_or(0, |m| m.lock().expect("BDD manager poisoned").node_count())
    }

    /// Peak node count over every manager this context has held —
    /// retired managers included — so resident-backend memory growth is
    /// visible per stage even across the reset policy. Advisory
    /// telemetry: depends on backend and sweep partitioning.
    #[must_use]
    pub fn peak_bdd_nodes(&mut self) -> usize {
        self.note_peak();
        self.peak_nodes
    }
}

/// Node count past which [`BuildContext`] retires a shared resident-BDD
/// manager instead of handing it to the next build (~tens of MB of
/// never-collected nodes; memoisation across candidates is a win well
/// below this).
const MANAGER_RESET_NODES: usize = 4_000_000;

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "explicit" => Ok(Backend::Explicit),
            "symbolic" => Ok(Backend::Symbolic),
            "symbolic-set" | "symbolic_set" => Ok(Backend::SymbolicSet),
            other => Err(format!(
                "unknown backend {other:?} (expected \"explicit\", \"symbolic\" or \"symbolic-set\")"
            )),
        }
    }
}
