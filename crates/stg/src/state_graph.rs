//! Binary-encoded state graphs (§1.4: *"A TS with states labeled with
//! binary codes of signals is called a state graph of an STG. State graphs
//! are of primary importance since they form the basis of logic
//! synthesis."*).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::OnceLock;

use petri::reach::{ReachError, ReachabilityGraph};
use petri::{Marking, TransitionId, TransitionSystem};

use crate::model::{SignalEdge, SignalId, Stg};
use crate::state_space::StateSpace;

/// Errors raised while building a state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StgError {
    /// The underlying net is not safe / exceeded the state limit.
    Reach(ReachError),
    /// A signal edge fired from the wrong value (e.g. `a+` while `a = 1`):
    /// the STG is not *consistent* (§2.1).
    InconsistentEdge {
        /// The offending transition's label text.
        transition: String,
        /// Index of the state graph state where it fired.
        state: usize,
    },
    /// Two paths assign different binary codes to the same marking — also a
    /// consistency violation.
    InconsistentCode {
        /// Index of the state that was re-reached with a different code.
        state: usize,
    },
    /// A signal never settles: different first-edge polarities on
    /// different paths made initial-value inference contradictory.
    AmbiguousInitialValue {
        /// The signal name.
        signal: String,
    },
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::Reach(e) => write!(f, "reachability failure: {e}"),
            StgError::InconsistentEdge { transition, state } => {
                write!(f, "inconsistent edge {transition} fired in state s{state}")
            }
            StgError::InconsistentCode { state } => {
                write!(f, "state s{state} reached with two different binary codes")
            }
            StgError::AmbiguousInitialValue { signal } => {
                write!(f, "cannot infer a unique initial value for signal {signal}")
            }
        }
    }
}

impl std::error::Error for StgError {}

impl From<ReachError> for StgError {
    fn from(e: ReachError) -> Self {
        StgError::Reach(e)
    }
}

/// One state of a [`StateGraph`]: a marking plus the binary code of all
/// signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgState {
    /// The marking of the underlying net.
    pub marking: Marking,
    /// Signal values, indexed by [`SignalId`].
    pub code: Vec<bool>,
}

/// The state graph of an STG: reachable markings with binary signal codes,
/// as produced by the token game of Fig. 4.
#[derive(Debug, Clone)]
pub struct StateGraph {
    states: Vec<SgState>,
    ts: TransitionSystem<TransitionId>,
    initial_values: Vec<bool>,
    num_signals: usize,
    /// Lazily built code → states index (see [`StateGraph::code_index`]).
    code_index: OnceLock<HashMap<Vec<bool>, Vec<usize>>>,
}

impl StateGraph {
    /// Builds the state graph, inferring initial signal values when the STG
    /// does not fix them, and checking consistency along the way.
    ///
    /// # Errors
    ///
    /// Returns [`StgError`] if the net is unsafe, a rising edge fires at
    /// value 1 (or falling at 0), or a marking is re-reached with a
    /// different code.
    pub fn build(stg: &Stg) -> Result<Self, StgError> {
        Self::build_bounded(stg, crate::state_space::DEFAULT_STATE_BOUND)
    }

    /// Like [`StateGraph::build`] with an explicit state limit.
    ///
    /// # Errors
    ///
    /// See [`StateGraph::build`].
    pub fn build_bounded(stg: &Stg, max_states: usize) -> Result<Self, StgError> {
        let rg = ReachabilityGraph::build_bounded(stg.net(), 1, max_states)?;
        let initial_values = match stg.initial_values() {
            Some(v) => v.to_vec(),
            None => infer_initial_values(stg, rg.ts()),
        };
        let n = stg.num_signals();
        let codes = propagate_codes(stg, rg.ts(), &initial_values)?;
        let states: Vec<SgState> = rg
            .markings()
            .iter()
            .cloned()
            .zip(codes)
            .map(|(marking, code)| SgState { marking, code })
            .collect();
        Ok(StateGraph {
            states,
            ts: rg.ts().clone(),
            initial_values,
            num_signals: n,
            code_index: OnceLock::new(),
        })
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of signals in the code.
    #[must_use]
    pub fn num_signals(&self) -> usize {
        self.num_signals
    }

    /// A state by index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn state(&self, i: usize) -> &SgState {
        &self.states[i]
    }

    /// All states.
    #[must_use]
    pub fn states(&self) -> &[SgState] {
        &self.states
    }

    /// The transition system over net-transition labels (state 0 initial).
    #[must_use]
    pub fn ts(&self) -> &TransitionSystem<TransitionId> {
        &self.ts
    }

    /// The (possibly inferred) initial signal values.
    #[must_use]
    pub fn initial_values(&self) -> &[bool] {
        &self.initial_values
    }

    // The query helpers below delegate to the `StateSpace` defaults so
    // the logic exists exactly once and every backend renders/answers
    // identically; the inherent copies survive only so callers need not
    // import the trait.

    /// Value of signal `sig` in state `i`.
    #[must_use]
    pub fn value(&self, i: usize, sig: SignalId) -> bool {
        StateSpace::value(self, i, sig)
    }

    /// The signal edges enabled (excited) in state `i`, as
    /// `(transition, signal, edge)` triples; dummies are skipped.
    #[must_use]
    pub fn excitations(&self, stg: &Stg, i: usize) -> Vec<(TransitionId, SignalId, SignalEdge)> {
        StateSpace::excitations(self, stg, i)
    }

    /// `true` if signal `sig` is excited (has an enabled edge) in state `i`.
    #[must_use]
    pub fn is_excited(&self, stg: &Stg, i: usize, sig: SignalId) -> bool {
        StateSpace::is_excited(self, stg, i, sig)
    }

    /// The paper's state rendering: binary code with `*` after each excited
    /// signal, e.g. `10.11*.0` — here without grouping dots: `1011*0`.
    #[must_use]
    pub fn code_string(&self, stg: &Stg, i: usize) -> String {
        StateSpace::code_string(self, stg, i)
    }

    /// The plain binary code of state `i` as a `0`/`1` string.
    #[must_use]
    pub fn plain_code_string(&self, i: usize) -> String {
        StateSpace::plain_code_string(self, i)
    }

    /// Successor state along a given transition, if enabled.
    #[must_use]
    pub fn successor(&self, state: usize, t: TransitionId) -> Option<usize> {
        StateSpace::successor(self, state, t)
    }

    /// States whose code equals `code`.
    #[must_use]
    pub fn states_with_code(&self, code: &[bool]) -> Vec<usize> {
        StateSpace::states_with_code(self, code)
    }

    /// Materialises any state space as an explicit `StateGraph` by
    /// copying its states and transition structure — no reachability
    /// re-exploration (used by the legacy `run_flow` shim).
    #[must_use]
    pub fn from_space(space: &dyn StateSpace) -> StateGraph {
        StateGraph {
            states: (0..space.num_states())
                .map(|i| SgState {
                    marking: space.marking(i).clone(),
                    code: space.code(i).to_vec(),
                })
                .collect(),
            ts: space.ts().clone(),
            initial_values: space.initial_values().to_vec(),
            num_signals: space.num_signals(),
            code_index: OnceLock::new(),
        }
    }

    /// The code → states index, built on first use. One hash map build
    /// replaces the linear scans that used to serve every
    /// `states_with_code` call (hot in CSC conflict detection).
    pub(crate) fn code_index(&self) -> &HashMap<Vec<bool>, Vec<usize>> {
        self.code_index
            .get_or_init(|| build_code_index(&self.states))
    }
}

/// Infers initial signal values from first-edge polarities (a signal whose
/// first reachable edge is rising starts at 0; falling starts at 1;
/// never-switching signals default to 0). Shared by every state-space
/// backend.
pub(crate) fn infer_initial_values(stg: &Stg, ts: &TransitionSystem<TransitionId>) -> Vec<bool> {
    let n = stg.num_signals();
    let mut first_edge: Vec<Option<SignalEdge>> = vec![None; n];
    // BFS over the transition structure; the first edge of each signal
    // seen in BFS order decides. A genuinely contradictory STG will then
    // fail the consistency propagation in `propagate_codes`, which
    // re-validates everything, so BFS order cannot smuggle in a wrong
    // answer silently.
    let mut visited = vec![false; ts.num_states()];
    let mut queue = VecDeque::new();
    visited[0] = true;
    queue.push_back(0usize);
    while let Some(s) = queue.pop_front() {
        for (&t, to) in ts.successors(s) {
            if let Some(l) = stg.label(t) {
                let slot = &mut first_edge[l.signal.index()];
                if slot.is_none() {
                    *slot = Some(l.edge);
                }
            }
            if !visited[to] {
                visited[to] = true;
                queue.push_back(to);
            }
        }
    }
    first_edge
        .into_iter()
        .map(|e| match e {
            Some(SignalEdge::Rise) | None => false,
            Some(SignalEdge::Fall) => true,
        })
        .collect()
}

/// Propagates binary codes from state `0` over the transition structure,
/// validating consistency (§2.1) along the way. Shared by every
/// state-space backend: each backend supplies its own reachable-state
/// structure; the signal interpretation is identical.
pub(crate) fn propagate_codes(
    stg: &Stg,
    ts: &TransitionSystem<TransitionId>,
    initial_values: &[bool],
) -> Result<Vec<Vec<bool>>, StgError> {
    let mut codes: Vec<Option<Vec<bool>>> = vec![None; ts.num_states()];
    codes[0] = Some(initial_values.to_vec());
    let mut queue = VecDeque::new();
    queue.push_back(0usize);
    while let Some(s) = queue.pop_front() {
        let code = codes[s].clone().expect("queued states are coded");
        for (&t, to) in ts.successors(s) {
            let mut next = code.clone();
            if let Some(label) = stg.label(t) {
                let idx = label.signal.index();
                let expected_before = !label.edge.value_after();
                if next[idx] != expected_before {
                    return Err(StgError::InconsistentEdge {
                        transition: stg.label_string(t),
                        state: s,
                    });
                }
                next[idx] = label.edge.value_after();
            }
            match &codes[to] {
                Some(existing) => {
                    if *existing != next {
                        return Err(StgError::InconsistentCode { state: to });
                    }
                }
                None => {
                    codes[to] = Some(next);
                    queue.push_back(to);
                }
            }
        }
    }
    Ok(codes
        .into_iter()
        .map(|c| c.expect("state spaces are connected from state 0"))
        .collect())
}

/// Builds the code → states index every enumerating backend shares
/// (state indices per code, in ascending order).
pub(crate) fn build_code_index(states: &[SgState]) -> HashMap<Vec<bool>, Vec<usize>> {
    let mut map: HashMap<Vec<bool>, Vec<usize>> = HashMap::new();
    for (i, s) in states.iter().enumerate() {
        map.entry(s.code.clone()).or_default().push(i);
    }
    map
}

/// Result alias used throughout the crate.
pub type Result<T, E = StgError> = std::result::Result<T, E>;
