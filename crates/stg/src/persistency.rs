//! Persistency analysis (§2.1).
//!
//! *"Persistency of the STG [verifies] that (a) no non-input signal
//! transition can be disabled by another signal transition and (b) no
//! input signal transition can be disabled by a non-input signal
//! transition. The former ensures that no short glitches, known as hazards,
//! can appear at the gate outputs, while the latter ensures that no hazards
//! can occur at inputs of the device."*

use petri::TransitionId;

use crate::model::{SignalKind, Stg};
use crate::state_space::StateSpace;

/// Classification of a disabling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A non-input transition was disabled — a potential output hazard.
    NonInputDisabled,
    /// An input transition was disabled by a non-input one — a potential
    /// hazard at the device inputs.
    InputDisabledByNonInput,
    /// An input disabled another input: allowed (environment choice /
    /// arbitration, §1.5), reported for information only.
    InputChoice,
}

/// One disabling occurrence in the state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistencyViolation {
    /// State where both transitions were enabled.
    pub state: usize,
    /// The transition that got disabled.
    pub disabled: TransitionId,
    /// The transition whose firing disabled it.
    pub by: TransitionId,
    /// Severity classification.
    pub kind: ViolationKind,
}

/// Scans the state graph for all disabling situations.
///
/// Dummy (unlabelled) transitions are treated as non-input: disabling
/// internal sequencing is just as hazardous as disabling an output.
#[must_use]
pub fn persistency_violations<S: StateSpace + ?Sized>(
    stg: &Stg,
    sg: &S,
) -> Vec<PersistencyViolation> {
    let mut out = Vec::new();
    for s in 0..sg.num_states() {
        let enabled: Vec<TransitionId> = sg.ts().enabled_labels(s);
        for &t in &enabled {
            for &u in &enabled {
                if t == u {
                    continue;
                }
                let Some(next) = sg.successor(s, u) else {
                    continue;
                };
                if sg.successor(next, t).is_some() {
                    continue; // t still enabled: persistent w.r.t. u
                }
                let kind = classify(stg, t, u);
                out.push(PersistencyViolation {
                    state: s,
                    disabled: t,
                    by: u,
                    kind,
                });
            }
        }
    }
    out
}

fn classify(stg: &Stg, disabled: TransitionId, by: TransitionId) -> ViolationKind {
    let disabled_kind = stg.label(disabled).map(|l| stg.signal_kind(l.signal));
    let by_kind = stg.label(by).map(|l| stg.signal_kind(l.signal));
    let disabled_is_input = disabled_kind == Some(SignalKind::Input);
    let by_is_input = by_kind == Some(SignalKind::Input);
    if !disabled_is_input {
        ViolationKind::NonInputDisabled
    } else if by_is_input {
        ViolationKind::InputChoice
    } else {
        ViolationKind::InputDisabledByNonInput
    }
}

/// `true` if the STG is persistent in the paper's sense: the only
/// disabling events are input-versus-input choices.
///
/// On set-level-native backends this never enumerates states: each
/// blocking-classified transition pair is refuted by one symbolic
/// disabling query, with an early exit on the first violation.
#[must_use]
pub fn is_persistent<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> bool {
    if sg.set_level_native() {
        for (t, u) in blocking_pairs(stg) {
            if sg.disabling_count(t, u) > 0 {
                return false;
            }
        }
        return true;
    }
    persistency_violations(stg, sg)
        .iter()
        .all(|v| v.kind == ViolationKind::InputChoice)
}

/// Number of blocking disabling occurrences (`(state, disabled, by)`
/// triples), the count [`blocking_violations`] would enumerate — but
/// phrased per transition pair so set-level backends answer it by
/// counting, never by materialising states.
#[must_use]
pub fn blocking_violation_count<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> usize {
    if sg.set_level_native() {
        let total: u128 = blocking_pairs(stg)
            .map(|(t, u)| sg.disabling_count(t, u))
            .sum();
        usize::try_from(total).expect("violation count fits usize")
    } else {
        blocking_violations(stg, sg).len()
    }
}

/// The ordered transition pairs whose disabling would block
/// implementability (everything but input-disables-input).
fn blocking_pairs(stg: &Stg) -> impl Iterator<Item = (TransitionId, TransitionId)> + '_ {
    let transitions: Vec<TransitionId> = stg.net().transitions().collect();
    let pairs: Vec<(TransitionId, TransitionId)> = transitions
        .iter()
        .flat_map(|&t| transitions.iter().map(move |&u| (t, u)))
        .filter(|&(t, u)| t != u && classify(stg, t, u) != ViolationKind::InputChoice)
        .collect();
    pairs.into_iter()
}

/// The subset of violations that block implementability (everything except
/// input choices).
#[must_use]
pub fn blocking_violations<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> Vec<PersistencyViolation> {
    persistency_violations(stg, sg)
        .into_iter()
        .filter(|v| v.kind != ViolationKind::InputChoice)
        .collect()
}
